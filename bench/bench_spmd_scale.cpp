// SPMD scaling — the superstep engine vs thread-per-rank, quantified.
//
// Runs the Distributed MWU driver (one logical rank per population member,
// fixed work: plurality_threshold > 1 so no run converges early) across
// populations 2^6..2^13 on the bounded-worker superstep engine, and up to
// 2^10 on the historical one-OS-thread-per-rank substrate (beyond that,
// thread-per-rank is the thing being replaced: thousands of kernel threads
// on a handful of cores).  For every population the bench reports
// rank-cycles per second and the process peak RSS; for the crossover
// population 2^10 it reports the engine/thread-per-rank throughput ratio.
//
// Correctness rides along with the timing:
//  - bit_identical: at population 2^8 the full result trajectory
//    (iterations, best option, popularity vector, oracle evaluations,
//    congestion mean/max, total messages) is compared across
//    thread-per-rank and the engine at 1 and 2 workers — any divergence
//    fails the run before timing is trusted;
//  - payload counters: the small-buffer message statistics
//    (mailbox.payload_inline_msgs / payload_spilled_msgs) across one
//    engine run, i.e. how many per-message heap allocations the inline
//    representation removed vs how many still spill.
//
// Results are emitted as a table and as JSON (--json, default
// BENCH_spmd_scale.json) with schema "mwr-bench-spmd-scale-v1"; CI's
// bench-smoke job gates on the file via .github/check_bench.py.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_driver.hpp"
#include "datasets/distributions.hpp"
#include "obs/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

// Fixed-work driver configuration: every run executes exactly `cycles`
// update cycles (the plurality test can never pass at threshold 1.1).
core::MwuConfig bench_config(std::size_t cycles) {
  core::MwuConfig config;
  config.num_options = 8;
  config.max_iterations = cycles;
  config.plurality_threshold = 1.1;
  return config;
}

struct ScalePoint {
  std::size_t population = 0;
  double engine_ranks_per_sec = 0.0;
  double tpr_ranks_per_sec = 0.0;  ///< 0 when thread-per-rank was skipped.
  double peak_rss_kb = 0.0;        ///< process high-water mark after the run.
};

/// VmHWM from /proc/self/status, in kB (0 if unavailable).  A high-water
/// mark: monotone over the run, so later points subsume earlier ones.
double peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      double kb = 0.0;
      fields >> kb;
      return kb;
    }
  }
  return 0.0;
}

double time_run(const core::CostOracle& oracle, const core::MwuConfig& config,
                std::size_t population, std::uint64_t seed,
                parallel::RunPolicy policy, std::size_t cycles) {
  const util::WallTimer timer;
  const auto run =
      core::run_distributed_spmd(oracle, config, seed, population, policy);
  const double elapsed = timer.elapsed_seconds();
  if (run.result.iterations != cycles) {
    std::cerr << "FATAL: expected exactly " << cycles << " cycles, got "
              << run.result.iterations << "\n";
    std::exit(1);
  }
  return static_cast<double>(population * cycles) / elapsed;
}

bool same_trajectory(const core::ParallelMwuResult& a,
                     const core::ParallelMwuResult& b) {
  return a.result.iterations == b.result.iterations &&
         a.result.best_option == b.result.best_option &&
         a.result.probabilities == b.result.probabilities &&
         a.result.evaluations == b.result.evaluations &&
         a.max_congestion_per_cycle.mean() ==
             b.max_congestion_per_cycle.mean() &&
         a.max_congestion_per_cycle.max() ==
             b.max_congestion_per_cycle.max() &&
         a.total_messages == b.total_messages;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "bench_spmd_scale — Distributed-SPMD throughput and memory, superstep "
      "engine vs one OS thread per rank, with bit-identity verification");
  util::add_standard_bench_flags(cli);
  cli.add_int("min-exp", 6, "smallest population exponent (2^e ranks)");
  cli.add_int("max-exp", 13, "largest population exponent for the engine");
  cli.add_int("tpr-max-exp", 10,
              "largest population exponent for thread-per-rank");
  cli.add_int("cycles", 3, "update cycles per run (fixed work)");
  cli.add_int("workers", 0, "engine worker threads (0 = hardware)");
  cli.add_string("json", "BENCH_spmd_scale.json",
                 "machine-readable output path (gated by check_bench.py)");
  if (!cli.parse(argc, argv)) return 0;

  const auto min_exp = static_cast<std::size_t>(cli.get_int("min-exp"));
  const auto max_exp = static_cast<std::size_t>(cli.get_int("max-exp"));
  const auto tpr_max_exp = static_cast<std::size_t>(cli.get_int("tpr-max-exp"));
  const auto cycles = static_cast<std::size_t>(cli.get_int("cycles"));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const core::OptionSet options("flat", std::vector<double>(8, 0.5));
  const core::BernoulliOracle oracle(options);
  const core::MwuConfig config = bench_config(cycles);

  // --- bit identity: same trajectory on every substrate -------------------
  bool bit_identical = true;
  {
    constexpr std::size_t kPopulation = 256;
    const auto reference = core::run_distributed_spmd(
        oracle, config, seed, kPopulation, parallel::RunPolicy::thread_per_rank());
    for (const std::size_t w : {std::size_t{1}, std::size_t{2}}) {
      const auto engine = core::run_distributed_spmd(
          oracle, config, seed, kPopulation, parallel::RunPolicy::superstep(w));
      if (!same_trajectory(reference, engine)) {
        std::cerr << "FATAL: engine trajectory (workers=" << w
                  << ") diverged from thread-per-rank\n";
        bit_identical = false;
      }
    }
  }
  if (!bit_identical) return 1;

  // --- payload representation: allocations removed by the inline buffer --
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  std::uint64_t payload_inline = 0;
  std::uint64_t payload_spilled = 0;
  {
    const std::uint64_t inline_before =
        registry.counter("mailbox.payload_inline_msgs").value();
    const std::uint64_t spilled_before =
        registry.counter("mailbox.payload_spilled_msgs").value();
    (void)core::run_distributed_spmd(oracle, config, seed, 256,
                                     parallel::RunPolicy::superstep(workers));
    payload_inline =
        registry.counter("mailbox.payload_inline_msgs").value() - inline_before;
    payload_spilled = registry.counter("mailbox.payload_spilled_msgs").value() -
                      spilled_before;
  }

  // --- throughput scaling -------------------------------------------------
  std::vector<ScalePoint> points;
  for (std::size_t e = min_exp; e <= max_exp; ++e) {
    ScalePoint point;
    point.population = std::size_t{1} << e;
    point.engine_ranks_per_sec =
        time_run(oracle, config, point.population, seed,
                 parallel::RunPolicy::superstep(workers), cycles);
    if (e <= tpr_max_exp) {
      point.tpr_ranks_per_sec =
          time_run(oracle, config, point.population, seed,
                   parallel::RunPolicy::thread_per_rank(), cycles);
    }
    point.peak_rss_kb = peak_rss_kb();
    points.push_back(point);
  }

  double speedup_at_crossover = 0.0;
  for (const auto& point : points) {
    if (point.population == (std::size_t{1} << tpr_max_exp) &&
        point.tpr_ranks_per_sec > 0.0) {
      speedup_at_crossover =
          point.engine_ranks_per_sec / point.tpr_ranks_per_sec;
    }
  }

  // --- report -------------------------------------------------------------
  util::Table table("Distributed SPMD scaling (" + std::to_string(cycles) +
                    " cycles per run, engine workers=" +
                    std::to_string(workers) + ")");
  table.set_header({"population", "engine ranks/s", "threads ranks/s",
                    "speedup", "peak RSS MB"});
  for (const auto& point : points) {
    table.add_row(
        {std::to_string(point.population),
         util::fmt_fixed(point.engine_ranks_per_sec, 0),
         point.tpr_ranks_per_sec > 0.0
             ? util::fmt_fixed(point.tpr_ranks_per_sec, 0)
             : std::string("—"),
         point.tpr_ranks_per_sec > 0.0
             ? util::fmt_fixed(
                   point.engine_ranks_per_sec / point.tpr_ranks_per_sec, 2) +
                   "x"
             : std::string("—"),
         util::fmt_fixed(point.peak_rss_kb / 1024.0, 1)});
  }
  table.emit(std::cout, cli.get_string("csv"));
  std::cout << "bit-identical across substrates: yes\n"
            << "inline payload messages (alloc avoided): " << payload_inline
            << ", spilled (alloc kept): " << payload_spilled << "\n";

  // --- JSON artifact ------------------------------------------------------
  std::ofstream os(cli.get_string("json"));
  os << "{\n"
     << "  \"schema\": \"mwr-bench-spmd-scale-v1\",\n"
     << "  \"params\": {\"cycles\": " << cycles << ", \"workers\": " << workers
     << ", \"min_population\": " << (std::size_t{1} << min_exp)
     << ", \"max_population\": " << (std::size_t{1} << max_exp)
     << ", \"crossover_population\": " << (std::size_t{1} << tpr_max_exp)
     << "},\n"
     << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << ",\n"
     << "  \"speedup_at_crossover\": ";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", speedup_at_crossover);
  os << buf << ",\n"
     << "  \"payload\": {\"inline_msgs\": " << payload_inline
     << ", \"spilled_msgs\": " << payload_spilled << "},\n"
     << "  \"scale\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& point = points[i];
    std::snprintf(buf, sizeof buf, "%.0f", point.engine_ranks_per_sec);
    os << "    {\"population\": " << point.population
       << ", \"engine_ranks_per_sec\": " << buf;
    std::snprintf(buf, sizeof buf, "%.0f", point.tpr_ranks_per_sec);
    os << ", \"tpr_ranks_per_sec\": " << buf;
    std::snprintf(buf, sizeof buf, "%.0f", point.peak_rss_kb);
    os << ", \"peak_rss_kb\": " << buf << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << cli.get_string("json") << "\n";
  return 0;
}
