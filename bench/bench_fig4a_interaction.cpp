// Reproduces Fig 4a: the fraction of mutated programs that still pass the
// regression suite as a function of how many mutations are applied
// together, on the gzip scenario — for precomputed *safe* mutations and,
// for contrast, for untested random mutations.
//
// Paper shape to check (§III-B):
//   - the safe curve decays but stays above 50% even at 80 combined safe
//     mutations;
//   - the untested curve collapses immediately: by two random mutations,
//     more than half of the mutated programs already fail the suite.
//
// Each point averages `trials` independent draws (paper: 1000).
#include <iostream>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_fig4a_interaction — Fig 4a, suite pass rate vs "
                "combined mutation count");
  util::add_standard_bench_flags(cli);
  cli.add_int("trials", 200, "random draws per point (paper: 1000)");
  cli.add_string("scenario", "gzip-2009-08-16", "bug scenario to profile");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto trials = static_cast<std::size_t>(
      cli.get_flag("full") ? 1000 : cli.get_int("trials"));
  const auto spec = datasets::scenario_by_name(cli.get_string("scenario"));
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);

  apr::PoolConfig pool_config;
  pool_config.target_size = 4000;
  pool_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto pool = apr::MutationPool::precompute(oracle, pool_config);

  util::RngStream rng(pool_config.seed ^ 0x4A);
  util::Table table("Fig 4a: fraction passing the suite vs mutations applied "
                    "(" + spec.name + ", " + std::to_string(trials) +
                    " trials/point)");
  table.set_header({"mutations", "safe (pooled)", "untested (random)",
                    "model (1-q)^C(x,2)"});

  const double q = spec.interference();
  for (const std::size_t x : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}, std::size_t{16}, std::size_t{24},
                              std::size_t{32}, std::size_t{48}, std::size_t{64},
                              std::size_t{80}, std::size_t{100},
                              std::size_t{120}}) {
    std::size_t safe_pass = 0;
    std::size_t untested_pass = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto pooled = apr::sample_from_pool(pool.mutations(), x, rng);
      const auto safe_eval = oracle.evaluate(pooled);
      if (safe_eval.required_passed == safe_eval.required_total) ++safe_pass;
      const auto random = apr::random_patch(program, x, rng);
      const auto random_eval = oracle.evaluate(random);
      if (random_eval.required_passed == random_eval.required_total)
        ++untested_pass;
    }
    table.add_row(
        {std::to_string(x),
         util::fmt_fixed(100.0 * static_cast<double>(safe_pass) /
                             static_cast<double>(trials),
                         1) + "%",
         util::fmt_fixed(100.0 * static_cast<double>(untested_pass) /
                             static_cast<double>(trials),
                         1) + "%",
         util::fmt_fixed(
             100.0 * datasets::pass_probability(static_cast<double>(x), q),
             1) + "%"});
  }
  table.emit(std::cout, cli.get_string("csv"));
  std::cout << "pool: " << pool.size() << " safe mutations from "
            << pool.attempts() << " candidates; interference q = " << q
            << "\n(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
