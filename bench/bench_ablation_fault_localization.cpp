// Ablation D5: spectrum-based fault localization as a phase-1 front-end.
//
// The paper (like GenProg) restricts mutations to statements the suite
// executes but samples them uniformly.  When repair-relevant edits cluster
// in the failing test's region — the realistic case — Ochiai-weighted
// targeting concentrates the safe-mutation pool where repairs live, so the
// same pool size carries far more relevant mutations and the online phase
// repairs with fewer probes.
//
// Measured on localized-relevance variants of three scenarios: pool
// relevance density and end-to-end online probes, uniform vs FL-weighted
// candidate generation (identical pool sizes and budgets).
#include <iostream>
#include <unordered_set>

#include "apr/fault_localization.hpp"
#include "apr/mwrepair.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

// A mutation pool built from FL-weighted candidates: same safety
// validation as MutationPool::precompute, with the Ochiai targeter as the
// candidate generator.
apr::MutationPool precompute_with_fl(const apr::TestOracle& oracle,
                                     const apr::MutationTargeter& targeter,
                                     std::size_t target_size,
                                     std::uint64_t seed) {
  util::RngStream rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<apr::Mutation> safe;
  while (safe.size() < target_size) {
    const apr::Mutation m = targeter.sample(rng);
    if (!seen.insert(m.key()).second) continue;
    const apr::Patch single{m};
    const auto e = oracle.evaluate(single);
    if (e.required_passed == e.required_total) safe.push_back(m);
  }
  return apr::MutationPool::from_mutations(std::move(safe));
}

std::size_t relevant_in_pool(const apr::TestOracle& oracle,
                             const apr::MutationPool& pool) {
  std::size_t count = 0;
  for (const auto& m : pool.mutations()) {
    if (oracle.is_repair_relevant(m)) ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_ablation_fault_localization — D5: FL-weighted vs "
                "uniform mutation targeting");
  util::add_standard_bench_flags(cli);
  cli.add_int("pool", 2000, "safe-mutation pool size per mode");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto pool_size = static_cast<std::size_t>(cli.get_int("pool"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  util::Table table("Ablation D5: fault localization (localized-relevance "
                    "scenario variants, pool " +
                    std::to_string(pool_size) + ")");
  table.set_header({"Scenario", "Targeting", "relevant in pool",
                    "repaired", "online probes"});

  for (const auto& name : {"units", "gzip-2009-09-26", "Math8"}) {
    auto spec = datasets::scenario_by_name(name);
    spec.relevance_localized = true;
    const apr::ProgramModel program(spec);

    // --- Uniform targeting (the paper's convention).
    {
      const apr::TestOracle oracle(program);
      apr::PoolConfig pool_config;
      pool_config.target_size = pool_size;
      pool_config.seed = seed;
      const auto pool = apr::MutationPool::precompute(oracle, pool_config);
      apr::MwRepairConfig repair_config;
      repair_config.agents = 32;
      repair_config.max_iterations = 300;
      repair_config.seed = seed ^ 5;
      const apr::MwRepair repair(repair_config);
      const auto outcome = repair.run(oracle, pool);
      table.add_row({name, "uniform over covered",
                     std::to_string(relevant_in_pool(oracle, pool)),
                     outcome.repaired ? "yes" : "no",
                     std::to_string(outcome.probes)});
    }

    // --- FL-weighted targeting.
    {
      const apr::TestOracle oracle(program);
      const apr::CoverageSpectrum spectrum(program);
      const apr::MutationTargeter targeter(spectrum);
      const auto pool =
          precompute_with_fl(oracle, targeter, pool_size, seed);
      apr::MwRepairConfig repair_config;
      repair_config.agents = 32;
      repair_config.max_iterations = 300;
      repair_config.seed = seed ^ 5;
      const apr::MwRepair repair(repair_config);
      const auto outcome = repair.run(oracle, pool);
      table.add_row({name, "Ochiai-weighted (FL)",
                     std::to_string(relevant_in_pool(oracle, pool)),
                     outcome.repaired ? "yes" : "no",
                     std::to_string(outcome.probes)});
    }
    table.add_separator();
  }
  table.emit(std::cout, cli.get_string("csv"));
  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
