// Shared scaffolding for the table benches: flag handling and the
// family-grouped rendering the paper's tables use.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "costmodel/evaluation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace mwr::bench {

/// Builds the EvalConfig from the standard bench flags; --full overrides
/// the reduced defaults with the paper-scale configuration.
inline costmodel::EvalConfig eval_config_from(const util::Cli& cli) {
  costmodel::EvalConfig config;
  config.seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  config.max_size = static_cast<std::size_t>(cli.get_int("max-size"));
  config.master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  if (const auto cap = cli.get_int("max-population"); cap > 0) {
    // Opt-in: the paper default keeps Table II's two k=16384 Distributed
    // cells intractable (population ≈ 1.2M > 1M); raising the cap lets the
    // superstep engine actually run them on a bounded thread pool.
    config.mwu.max_population = static_cast<std::size_t>(cap);
  }
  if (cli.get_flag("full")) {
    config.seeds = 100;
    config.max_size = 16384;
  }
  return config;
}

/// Emits one paper-style table from the evaluation cells: one row per
/// dataset, one column per algorithm, family separators between groups.
/// `cell_text` renders one EvalCell into its cell string.
template <typename CellText>
void emit_grouped_table(const std::vector<costmodel::EvalCell>& cells,
                        const std::string& title, CellText&& cell_text,
                        const std::string& csv_path) {
  util::Table table(title);
  table.set_header({"Scenario", "Size", "Standard", "Distributed", "Slate"});
  std::string family;
  // Cells arrive dataset-major in column order Standard, Distributed, Slate.
  for (std::size_t i = 0; i + 2 < cells.size(); i += 3) {
    if (!family.empty() && cells[i].family != family) table.add_separator();
    family = cells[i].family;
    table.add_row({cells[i].dataset, std::to_string(cells[i].size),
                   cell_text(cells[i]), cell_text(cells[i + 1]),
                   cell_text(cells[i + 2])});
  }
  table.emit(std::cout, csv_path);
}

}  // namespace mwr::bench
