// Parameter-sensitivity sweep — the paper's stated future work (§VI):
// "Future research could characterize the interaction between parameters
// more carefully."
//
// Sweeps the learning rate (eta, Standard/Slate), the exploration
// probability (mu/gamma), and the Distributed attention parameter (beta)
// over grids on a fixed unimodal instance, reporting cycles-to-convergence
// and accuracy per setting.
//
// Shapes worth knowing: larger eta converges faster but less accurately
// (lock-in); gamma trades Slate's cycle count against its accuracy floor;
// beta accelerates Distributed until noise adoption (relative to alpha)
// erodes the plurality.
#include <iostream>

#include "core/mwu.hpp"
#include "core/slate_mwu.hpp"
#include "datasets/distributions.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

struct Cell {
  double cycles = 0.0;
  double accuracy = 0.0;
  std::size_t converged = 0;
};

Cell measure(core::MwuKind kind, const core::MwuConfig& config,
             const core::OptionSet& options, std::size_t seeds,
             std::uint64_t master_seed) {
  const core::BernoulliOracle oracle(options);
  util::RunningStats cycles;
  util::RunningStats accuracy;
  Cell cell;
  for (std::size_t s = 0; s < seeds; ++s) {
    const auto result = core::run_mwu(
        kind, oracle, config, util::RngStream(master_seed + 977 * s));
    cycles.add(static_cast<double>(result.iterations));
    accuracy.add(options.accuracy_percent(result.best_option));
    if (result.converged) ++cell.converged;
  }
  cell.cycles = cycles.mean();
  cell.accuracy = accuracy.mean();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_sensitivity — parameter sweeps (Section VI future "
                "work)");
  util::add_standard_bench_flags(cli);
  cli.add_int("options", 128, "option-set size k");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto k = static_cast<std::size_t>(cli.get_int("options"));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  const auto master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto options = datasets::make_unimodal(k, 23);

  // --- eta sweep (Standard and Slate).
  util::Table eta_table("Sensitivity: learning rate eta (k=" +
                        std::to_string(k) + ", " + std::to_string(seeds) +
                        " seeds)");
  eta_table.set_header({"eta", "Standard cycles", "Standard acc%",
                        "Slate cycles", "Slate acc%"});
  for (const double eta : {0.01, 0.025, 0.05, 0.1, 0.25, 0.5}) {
    core::MwuConfig config;
    config.num_options = k;
    config.learning_rate = eta;
    const auto standard =
        measure(core::MwuKind::kStandard, config, options, seeds, master_seed);
    const auto slate =
        measure(core::MwuKind::kSlate, config, options, seeds, master_seed);
    eta_table.add_row({util::fmt_fixed(eta, 3),
                       util::fmt_fixed(standard.cycles, 0),
                       util::fmt_fixed(standard.accuracy, 1),
                       util::fmt_fixed(slate.cycles, 0),
                       util::fmt_fixed(slate.accuracy, 1)});
  }
  eta_table.emit(std::cout, cli.get_string("csv"));

  // --- exploration sweep (mu for Distributed, gamma for Slate).
  util::Table explore_table("Sensitivity: exploration mu/gamma");
  explore_table.set_header({"mu=gamma", "Distributed cycles",
                            "Distributed acc%", "Slate cycles", "Slate acc%",
                            "Slate CPUs"});
  for (const double explore : {0.01, 0.02, 0.05, 0.1, 0.2}) {
    core::MwuConfig config;
    config.num_options = k;
    config.exploration = explore;
    const auto distributed = measure(core::MwuKind::kDistributed, config,
                                     options, seeds, master_seed);
    const auto slate =
        measure(core::MwuKind::kSlate, config, options, seeds, master_seed);
    core::MwuConfig slate_config = config;
    explore_table.add_row(
        {util::fmt_fixed(explore, 2), util::fmt_fixed(distributed.cycles, 0),
         util::fmt_fixed(distributed.accuracy, 1),
         util::fmt_fixed(slate.cycles, 0), util::fmt_fixed(slate.accuracy, 1),
         std::to_string(
             core::SlateMwu::slate_size_for(k, slate_config.exploration))});
  }
  explore_table.emit(std::cout);

  // --- beta sweep (Distributed's attention to the latest observation).
  util::Table beta_table("Sensitivity: Distributed beta (adopt-on-success)");
  beta_table.set_header({"beta", "cycles", "acc%", "converged"});
  for (const double beta : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    core::MwuConfig config;
    config.num_options = k;
    config.adopt_success = beta;
    const auto cell = measure(core::MwuKind::kDistributed, config, options,
                              seeds, master_seed);
    beta_table.add_row({util::fmt_fixed(beta, 2),
                        util::fmt_fixed(cell.cycles, 0),
                        util::fmt_fixed(cell.accuracy, 1),
                        std::to_string(cell.converged) + "/" +
                            std::to_string(seeds)});
  }
  beta_table.emit(std::cout);
  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
