// Microbenchmarks (google-benchmark): per-cycle kernel cost of each MWU
// realization and of the slate-projection machinery, across option-set
// sizes.  These quantify the constant factors behind Table I's asymptotic
// columns on this hardware.
#include <benchmark/benchmark.h>

#include "core/mwu.hpp"
#include "core/slate_projection.hpp"
#include "datasets/distributions.hpp"

namespace {

using namespace mwr;

void run_cycles(core::MwuKind kind, benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto options = datasets::make_random(k, 42);
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = k;
  config.max_population = 1u << 24;  // keep Distributed constructible
  config.pop_scale = 2.0;
  config.pop_exponent = 1.0;  // linear population for the microbench
  const auto strategy = core::make_mwu(kind, config);
  util::RngStream rng(7);
  std::vector<double> rewards;
  for (auto _ : state) {
    const auto probes = strategy->sample(rng);
    rewards.resize(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = oracle.sample(probes[j], rng);
    }
    strategy->update(probes, rewards, rng);
    benchmark::DoNotOptimize(strategy->converged());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(strategy->cpus_per_cycle()));
}

void BM_StandardCycle(benchmark::State& state) {
  run_cycles(core::MwuKind::kStandard, state);
}
void BM_SlateCycle(benchmark::State& state) {
  run_cycles(core::MwuKind::kSlate, state);
}
void BM_DistributedCycle(benchmark::State& state) {
  run_cycles(core::MwuKind::kDistributed, state);
}

void BM_SlateCapAndSample(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t slate = std::max<std::size_t>(1, k / 20);
  util::RngStream rng(3);
  std::vector<double> p(k);
  double total = 0.0;
  for (auto& v : p) total += (v = rng.uniform());
  for (auto& v : p) v /= total;
  for (auto _ : state) {
    const auto q = core::cap_to_slate_marginals(p, slate);
    benchmark::DoNotOptimize(core::systematic_sample(q, slate, rng));
  }
}

void BM_SlateDecomposition(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t slate = std::max<std::size_t>(1, k / 20);
  util::RngStream rng(3);
  std::vector<double> p(k);
  double total = 0.0;
  for (auto& v : p) total += (v = rng.uniform());
  for (auto& v : p) v /= total;
  const auto q = core::cap_to_slate_marginals(p, slate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decompose_into_slates(q, slate));
  }
}

}  // namespace

BENCHMARK(BM_StandardCycle)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_SlateCycle)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_DistributedCycle)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_SlateCapAndSample)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_SlateDecomposition)->Arg(64)->Arg(256)->Arg(1024);

BENCHMARK_MAIN();
