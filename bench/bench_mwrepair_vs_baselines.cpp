// Reproduces §IV-G: MWRepair against GenProg / RSRepair / AE (and jGenProg
// on the Java scenarios) over the ten bug scenarios.
//
// Paper shape to check:
//   - MWRepair repairs every C and Java scenario, including multi-edit
//     defects (libtiff, Closure13) that single-edit tools cannot reach;
//   - each baseline misses some scenarios (paper: GenProg 4/5, RSRepair
//     3/5, AE 4/5 on C);
//   - including the online-learning overhead, MWRepair consumes roughly
//     half the fitness evaluations of GenProg+jGenProg;
//   - MWRepair's parallel evaluation gives a ~40x latency reduction.
//
// MWRepair's phase-1 precompute is reported separately: it is a one-time
// per-program cost amortized over every bug repaired in that program
// (§III-C), not a per-bug search cost.
#include <iostream>

#include "baselines/comparison.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_mwrepair_vs_baselines — Section IV-G repair "
                "comparison");
  util::add_standard_bench_flags(cli);
  cli.add_int("budget", 10000, "per-tool online suite-run budget");
  cli.add_int("pool", 12000,
              "precomputed safe-mutation pool size (one-time, amortized)");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  baselines::ComparisonConfig config;
  config.budget = static_cast<std::uint64_t>(cli.get_int("budget"));
  config.pool_target = static_cast<std::size_t>(cli.get_int("pool"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::vector<baselines::ScenarioComparison> comparisons;
  for (const auto& spec : datasets::c_scenarios()) {
    comparisons.push_back(baselines::compare_on_scenario(spec, config));
  }
  for (const auto& spec : datasets::java_scenarios()) {
    comparisons.push_back(baselines::compare_on_scenario(spec, config));
  }

  util::Table per_scenario("Section IV-G: per-scenario repair outcomes");
  per_scenario.set_header({"Scenario", "Lang", "Tool", "Repaired",
                           "Fitness evals", "Latency (suite-run units)",
                           "Patch edits"});
  for (const auto& comparison : comparisons) {
    for (const auto& tool : comparison.tools) {
      per_scenario.add_row(
          {comparison.scenario, comparison.language, tool.tool,
           tool.repaired ? "yes" : "no", std::to_string(tool.suite_runs),
           util::fmt_fixed(tool.latency_units, 1),
           std::to_string(tool.patch_edits)});
    }
    per_scenario.add_separator();
  }
  per_scenario.emit(std::cout, cli.get_string("csv"));

  util::Table summary("Section IV-G: tool summary");
  summary.set_header(
      {"Tool", "Repaired", "Total fitness evals", "Total latency"});
  const auto tallies = baselines::tally(comparisons);
  for (const auto& t : tallies) {
    summary.add_row({t.tool,
                     std::to_string(t.repaired) + "/" +
                         std::to_string(t.attempted),
                     std::to_string(t.total_suite_runs),
                     util::fmt_fixed(t.total_latency, 0)});
  }
  summary.emit(std::cout);

  // The paper's two headline ratios, computed from the measured totals.
  std::uint64_t mwrepair_evals = 0;
  std::uint64_t genprog_evals = 0;
  double mwrepair_latency = 0.0;
  double genprog_latency = 0.0;
  for (const auto& t : tallies) {
    if (t.tool == "MWRepair") {
      mwrepair_evals = t.total_suite_runs;
      mwrepair_latency = t.total_latency;
    }
    if (t.tool == "GenProg" || t.tool == "jGenProg") {
      genprog_evals += t.total_suite_runs;
      genprog_latency += t.total_latency;
    }
  }
  std::uint64_t precompute = 0;
  for (const auto& comparison : comparisons)
    precompute += comparison.precompute_runs;
  if (genprog_evals > 0) {
    std::cout << "MWRepair online fitness evals vs GenProg+jGenProg: "
              << util::fmt_fixed(100.0 * static_cast<double>(mwrepair_evals) /
                                     static_cast<double>(genprog_evals),
                                 1)
              << "% (paper: ~52%)\n";
    std::cout << "MWRepair latency reduction vs GenProg+jGenProg: "
              << util::fmt_fixed(genprog_latency /
                                     std::max(mwrepair_latency, 1e-9),
                                 1)
              << "x (paper: ~40x)\n";
    std::cout << "amortized precompute (one-time, per program): " << precompute
              << " suite runs across all scenarios\n";
  }
  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
