// Reproduces Fig 4b: the density of repairs as a function of how many safe
// mutations are combined — the unimodal curve whose mode MWRepair's bandit
// hunts.
//
// Paper shape to check (§III-B):
//   - the curve is unimodal: repair probability rises while combining more
//     mutations buys more chances, then falls as pairwise interference
//     outweighs the gain;
//   - the gzip optimum sits near 48 combined mutations;
//   - across programs the optimum ranges roughly 11..271 (we sweep all ten
//     scenarios' calibrated optima).
#include <iostream>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_fig4b_repair_density — Fig 4b, repair density vs "
                "combined safe mutations");
  util::add_standard_bench_flags(cli);
  cli.add_int("trials", 400, "random draws per point (paper: 1000)");
  cli.add_string("scenario", "gzip-2009-08-16", "bug scenario to profile");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto trials = static_cast<std::size_t>(
      cli.get_flag("full") ? 1000 : cli.get_int("trials"));
  const auto spec = datasets::scenario_by_name(cli.get_string("scenario"));
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);

  apr::PoolConfig pool_config;
  pool_config.target_size = 4000;
  pool_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto pool = apr::MutationPool::precompute(oracle, pool_config);

  util::RngStream rng(pool_config.seed ^ 0x4B);
  const double q = spec.interference();

  util::Table curve("Fig 4b: repair density vs combined safe mutations (" +
                    spec.name + ", " + std::to_string(trials) +
                    " trials/point)");
  curve.set_header({"mutations", "measured repairs/probe",
                    "model (1-(1-p)^x)(1-q)^C(x,2)"});
  std::size_t best_x = 1;
  double best_density = -1.0;
  for (std::size_t x = 4; x <= 3 * spec.optimum + 16; x += 4) {
    std::size_t repairs = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto patch = apr::sample_from_pool(pool.mutations(), x, rng);
      if (oracle.evaluate(patch).is_repair()) ++repairs;
    }
    const double density =
        static_cast<double>(repairs) / static_cast<double>(trials);
    if (density > best_density) {
      best_density = density;
      best_x = x;
    }
    curve.add_row({std::to_string(x), util::fmt_fixed(100.0 * density, 2) + "%",
                   util::fmt_fixed(
                       100.0 * datasets::repair_density(
                                   static_cast<double>(x), spec.repair_rate, q),
                       2) + "%"});
  }
  curve.emit(std::cout, cli.get_string("csv"));
  std::cout << "measured optimum ~ " << best_x << " mutations (calibrated "
            << spec.optimum << ", paper gzip: 48)\n\n";

  // The cross-program sweep: every scenario's analytic optimum.
  util::Table optima("Fig 4b inset: repair-density optimum per scenario "
                     "(paper range: 11..271)");
  optima.set_header({"Scenario", "Lang", "analytic optimum", "interference q"});
  for (const auto& scenarios :
       {datasets::c_scenarios(), datasets::java_scenarios()}) {
    for (const auto& s : scenarios) {
      optima.add_row({s.name, s.language,
                      std::to_string(datasets::repair_optimum(
                          s.repair_rate, s.interference())),
                      util::fmt_fixed(s.interference(), 6)});
    }
  }
  optima.emit(std::cout);
  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
