// Reproduces Table III: accuracy of each algorithm's converged choice —
// 100 minus the absolute percent error between the best option in
// hindsight and the converged option's value, mean (sd) over replications.
// Runs that hit the iteration cap report the highest-weight option at the
// limit, as in the paper.
//
// Paper shape to check (§IV-D): every algorithm averages above 90%;
// Standard is consistently the least accurate of the three; Distributed
// and Slate sit in the high 90s.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_table3_accuracy — Table III, percent accuracy vs "
                "best-in-hindsight");
  util::add_standard_bench_flags(cli);
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto config = bench::eval_config_from(cli);
  const auto cells = costmodel::run_evaluation(config);

  bench::emit_grouped_table(
      cells, "Table III: accuracy percent (mean (sd))",
      [](const costmodel::EvalCell& cell) -> std::string {
        if (cell.intractable) return "-";
        return util::fmt_mean_sd(cell.accuracy.mean(), cell.accuracy.stddev(),
                                 1);
      },
      cli.get_string("csv"));

  // The headline claim: all three algorithms average above 90%.
  util::RunningStats per_kind[3];
  for (const auto& cell : cells) {
    if (!cell.intractable)
      per_kind[static_cast<int>(cell.kind)].add(cell.accuracy.mean());
  }
  std::cout << "overall means: Standard "
            << util::fmt_fixed(per_kind[0].mean(), 1) << "%, Slate "
            << util::fmt_fixed(per_kind[1].mean(), 1) << "%, Distributed "
            << util::fmt_fixed(per_kind[2].mean(), 1) << "%\n";
  std::cout << "(" << config.seeds << " seeds/cell, max size "
            << config.max_size << ", " << timer.elapsed_seconds() << "s)\n";
  return 0;
}
