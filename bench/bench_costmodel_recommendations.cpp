// Reproduces §IV-E: the weighted cost model and its concrete
// recommendations, including the crossover between Standard and Distributed
// as the relative weight of communication vs convergence shifts.
//
// Paper shape to check:
//   - when communication dominates (alpha >> beta), the model prefers
//     Distributed;
//   - when evaluating options is expensive and messages are tiny — APR's
//     regime, alpha << beta — the global-memory, high-communication
//     Standard algorithm wins, the paper's "surprising result";
//   - weighting the CPUs used per iteration flips the preference away from
//     Distributed even in communication-heavy regimes.
#include <iostream>

#include "costmodel/cost_model.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_costmodel_recommendations — Section IV-E weighted "
                "cost model");
  util::add_standard_bench_flags(cli);
  cli.add_int("options", 1000, "k for the operating point");
  cli.add_int("agents", 64, "n for the operating point");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  costmodel::OperatingPoint point;
  point.options = static_cast<std::size_t>(cli.get_int("options"));
  point.agents = static_cast<std::size_t>(cli.get_int("agents"));

  const std::vector<double> ratios = {0.001, 0.01, 0.1, 0.5, 1,
                                      5,     10,   50,  100, 1000};

  util::Table sweep("Section IV-E: preferred algorithm vs communication/"
                    "convergence weight ratio (k=" +
                    std::to_string(point.options) +
                    ", n=" + std::to_string(point.agents) + ")");
  sweep.set_header({"w_comm/w_conv", "Standard cost", "Distributed cost",
                    "Slate cost", "preferred"});
  for (const auto& row : costmodel::crossover_sweep(point, ratios)) {
    sweep.add_row({util::fmt_fixed(row.comm_weight_ratio, 3),
                   util::fmt_fixed(row.standard_cost, 1),
                   util::fmt_fixed(row.distributed_cost, 1),
                   util::fmt_fixed(row.slate_cost, 1),
                   core::to_string(row.preferred)});
  }
  sweep.emit(std::cout, cli.get_string("csv"));

  util::Table cpu_sweep("Same sweep with CPU count weighted (w_cpu = 1): "
                        "constrained parallel resources");
  cpu_sweep.set_header({"w_comm/w_conv", "Standard cost", "Distributed cost",
                        "Slate cost", "preferred"});
  for (const auto& row :
       costmodel::crossover_sweep(point, ratios, /*cpu_weight=*/1.0)) {
    cpu_sweep.add_row({util::fmt_fixed(row.comm_weight_ratio, 3),
                       util::fmt_fixed(row.standard_cost, 1),
                       util::fmt_fixed(row.distributed_cost, 1),
                       util::fmt_fixed(row.slate_cost, 1),
                       core::to_string(row.preferred)});
  }
  cpu_sweep.emit(std::cout);

  // --- The empirically-grounded model (§IV-E: asymptotics alone favor
  // Distributed; the measured cycle counts and CPU usage flip the APR
  // recommendation to Standard).  Measure the three algorithms on the units
  // scenario (k = 1000, the paper's smallest C program) and apply the model
  // under both regimes.
  const auto spec = datasets::scenario_by_name("units");
  const auto options = spec.option_set();
  const core::BernoulliOracle oracle(options);
  core::MwuConfig mwu;
  mwu.num_options = options.size();
  std::vector<costmodel::EmpiricalObservation> observations;
  for (const auto kind :
       {core::MwuKind::kStandard, core::MwuKind::kDistributed,
        core::MwuKind::kSlate}) {
    util::RunningStats cycles;
    std::size_t cpus = 0;
    for (std::size_t s = 0; s < 3; ++s) {
      const auto result =
          core::run_mwu(kind, oracle, mwu, util::RngStream(900 + s));
      cycles.add(static_cast<double>(result.iterations));
      cpus = result.cpus_per_cycle;
    }
    observations.push_back(
        {kind, cycles.mean(), static_cast<double>(cpus)});
  }

  util::Table empirical("Section IV-E empirical model on the units scenario "
                        "(k=1000): total modeled cost per regime");
  empirical.set_header({"Algorithm", "cycles", "cpus/cycle",
                        "APR regime (evals dominate)",
                        "network regime (comm dominates)"});
  costmodel::EmpiricalWeights apr_regime;     // expensive probes, cheap msgs
  apr_regime.communication = 0.001;
  apr_regime.latency = 1.0;
  apr_regime.evaluations = 1.0;
  costmodel::EmpiricalWeights network_regime; // cheap probes, costly msgs
  network_regime.communication = 100.0;
  network_regime.latency = 1.0;
  network_regime.evaluations = 0.001;
  for (const auto& observation : observations) {
    empirical.add_row(
        {core::to_string(observation.kind),
         util::fmt_fixed(observation.cycles, 0),
         util::fmt_fixed(observation.cpus_per_cycle, 0),
         util::fmt_fixed(costmodel::empirical_cost(observation, apr_regime), 0),
         util::fmt_fixed(
             costmodel::empirical_cost(observation, network_regime), 0)});
  }
  empirical.emit(std::cout);
  std::cout << "APR regime recommendation: "
            << core::to_string(
                   costmodel::recommend_empirical(observations, apr_regime))
            << " (the paper's 'surprising result': global memory + high "
               "communication wins when probes are expensive)\n"
            << "network regime recommendation: "
            << core::to_string(costmodel::recommend_empirical(observations,
                                                              network_regime))
            << "\n(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
