// Ablation D1 (DESIGN.md §5): arms = mutation counts vs arms = individual
// mutations.
//
// MWRepair's bandit has one arm per candidate combination *size*; the naive
// encoding — one arm per pooled mutation — blows the option set up to the
// pool size, destroying convergence within any realistic probe budget and
// discarding the efficiency of testing many mutations per suite run.  This
// bench runs both encodings on the same scenario with the same probe
// budget and reports repairs found and MWU convergence.
#include <iostream>

#include "apr/mwrepair.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

// The naive encoding: each arm is one pooled mutation; a probe applies just
// that mutation and rewards fitness non-decrease.  Repair only happens if a
// single mutation fixes the bug, and learning must resolve pool-size arms.
mwr::apr::RepairOutcome run_naive_encoding(const mwr::apr::TestOracle& oracle,
                                           const mwr::apr::MutationPool& pool,
                                           std::size_t agents,
                                           std::size_t max_iterations,
                                           std::uint64_t seed) {
  using namespace mwr;
  core::MwuConfig config;
  config.num_options = pool.size();
  config.num_agents = agents;
  config.max_iterations = max_iterations;
  const auto strategy = core::make_mwu(core::MwuKind::kStandard, config);
  util::RngStream rng(seed);
  const std::uint32_t baseline = oracle.baseline_fitness();

  apr::RepairOutcome outcome;
  std::vector<double> rewards;
  for (std::size_t t = 0; t < max_iterations; ++t) {
    const auto probes = strategy->sample(rng);
    rewards.assign(probes.size(), 0.0);
    for (std::size_t j = 0; j < probes.size(); ++j) {
      const apr::Mutation m = pool.mutations()[probes[j]];
      const apr::Patch patch{m};
      const auto e = oracle.evaluate(patch);
      ++outcome.probes;
      if (e.is_repair()) {
        outcome.repaired = true;
        outcome.patch = patch;
        outcome.iterations = t + 1;
        return outcome;
      }
      rewards[j] = e.fitness() >= baseline ? 1.0 : 0.0;
    }
    strategy->update(probes, rewards, rng);
    ++outcome.iterations;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_ablation_arm_encoding — D1: count-arms vs "
                "one-arm-per-mutation");
  util::add_standard_bench_flags(cli);
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  util::Table table("Ablation D1: bandit arm encoding (same probe budget)");
  table.set_header({"Scenario", "Encoding", "k (arms)", "Repaired", "Probes",
                    "Cycles"});

  for (const auto& name : {"gzip-2009-08-16", "libtiff-2005-12-14",
                           "Closure13"}) {
    const auto spec = datasets::scenario_by_name(name);
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    apr::PoolConfig pool_config;
    pool_config.target_size = 2000;
    pool_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto pool = apr::MutationPool::precompute(oracle, pool_config);

    apr::MwRepairConfig config;
    config.agents = 16;
    config.max_iterations = 150;
    config.seed = pool_config.seed ^ 1;
    const apr::MwRepair repair(config);
    const auto counts = repair.run(oracle, pool);
    table.add_row({name, "counts (MWRepair)", std::to_string(config.arms),
                   counts.repaired ? "yes" : "no",
                   std::to_string(counts.probes),
                   std::to_string(counts.iterations)});

    const auto naive = run_naive_encoding(oracle, pool, config.agents,
                                          config.max_iterations,
                                          config.seed ^ 2);
    table.add_row({name, "one arm per mutation", std::to_string(pool.size()),
                   naive.repaired ? "yes" : "no", std::to_string(naive.probes),
                   std::to_string(naive.iterations)});
    table.add_separator();
  }
  table.emit(std::cout, cli.get_string("csv"));
  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
