// Ablation D2 (DESIGN.md §5): precomputed safe-mutation pool vs on-the-fly
// safe-mutation discovery inside the synchronized loop.
//
// The paper's §III-C argument: when each of n threads must *find* its own
// x_j safe mutations before the end-of-cycle barrier, every cycle waits for
// the slowest thread — the maximum order statistic — so with 64 threads
// drawing targets from 1..100 almost every cycle pays near-worst-decile
// cost, roughly halving efficiency; duplicates are also re-tested.  With a
// precomputed pool each probe costs exactly one suite run regardless of x.
//
// We measure both modes on the same scenario: suite runs consumed per probe
// and the modeled synchronized-cycle cost (max across threads).
#include <algorithm>
#include <iostream>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_ablation_precompute — D2: pool precompute vs "
                "on-the-fly safe-mutation discovery");
  util::add_standard_bench_flags(cli);
  cli.add_int("cycles", 40, "synchronized cycles to simulate");
  cli.add_int("agents", 64, "threads per cycle");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto spec = datasets::scenario_by_name("gzip-2009-08-16");
  const apr::ProgramModel program(spec);
  const auto cycles = static_cast<std::size_t>(cli.get_int("cycles"));
  const auto agents = static_cast<std::size_t>(cli.get_int("agents"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  util::RngStream rng(seed);

  // Each cycle, every agent needs x_j safe mutations, x_j uniform on
  // [1, 100] (the paper's example), then runs one combined-suite probe.
  const auto draw_target = [&] {
    return 1 + static_cast<std::size_t>(rng.uniform_index(100));
  };

  // --- With precompute: pool filled once; per-cycle critical path = 1
  // combined probe (drawing from the pool is free).
  const apr::TestOracle pooled_oracle(program);
  apr::PoolConfig pool_config;
  pool_config.target_size = 2000;
  pool_config.seed = seed;
  const auto pool = apr::MutationPool::precompute(pooled_oracle, pool_config);
  const std::uint64_t precompute_runs = pooled_oracle.suite_runs();
  std::uint64_t pooled_probe_runs = 0;
  util::RunningStats pooled_critical_path;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::size_t a = 0; a < agents; ++a) {
      const auto patch =
          apr::sample_from_pool(pool.mutations(), draw_target(), rng);
      (void)pooled_oracle.evaluate(patch);
      ++pooled_probe_runs;
    }
    pooled_critical_path.add(1.0);  // all agents: exactly one suite run
  }

  // --- Without precompute: each agent validates candidates one by one
  // until it has x_j safe ones (expected x_j / safe_rate suite runs), then
  // probes; the cycle's critical path is the slowest agent.
  const apr::TestOracle otf_oracle(program);
  std::uint64_t otf_runs = 0;
  util::RunningStats otf_critical_path;
  for (std::size_t c = 0; c < cycles; ++c) {
    std::uint64_t slowest = 0;
    for (std::size_t a = 0; a < agents; ++a) {
      const std::size_t target = draw_target();
      apr::Patch safe;
      std::uint64_t agent_runs = 0;
      while (safe.size() < target) {
        const apr::Mutation m = apr::random_mutation(program, rng);
        const apr::Patch single{m};
        const auto e = otf_oracle.evaluate(single);
        ++agent_runs;
        if (e.required_passed == e.required_total) safe.push_back(m);
      }
      (void)otf_oracle.evaluate(safe);
      ++agent_runs;
      otf_runs += agent_runs;
      slowest = std::max(slowest, agent_runs);
    }
    otf_critical_path.add(static_cast<double>(slowest));
  }

  util::Table table("Ablation D2: precompute vs on-the-fly (gzip, " +
                    std::to_string(agents) + " threads, " +
                    std::to_string(cycles) + " cycles)");
  table.set_header({"Mode", "Suite runs", "of which one-time precompute",
                    "critical path / cycle (mean)",
                    "critical path / cycle (max)"});
  table.add_row({"precomputed pool",
                 std::to_string(precompute_runs + pooled_probe_runs),
                 std::to_string(precompute_runs),
                 util::fmt_fixed(pooled_critical_path.mean(), 1),
                 util::fmt_fixed(pooled_critical_path.max(), 0)});
  table.add_row({"on-the-fly discovery", std::to_string(otf_runs), "0",
                 util::fmt_fixed(otf_critical_path.mean(), 1),
                 util::fmt_fixed(otf_critical_path.max(), 0)});
  table.emit(std::cout, cli.get_string("csv"));

  // The paper's ~2x claim is the *synchronization* penalty of on-the-fly
  // discovery: the barrier makes every agent wait for the slowest one, so
  // the cycle costs the max over agents instead of the mean.
  const double otf_mean_agent_work =
      static_cast<double>(otf_runs) /
      static_cast<double>(cycles * agents);
  std::cout << "on-the-fly synchronization penalty (critical path / mean "
               "agent work): "
            << util::fmt_fixed(otf_critical_path.mean() / otf_mean_agent_work,
                               1)
            << "x (paper: ~2x at 64 threads)\n"
            << "pooled critical path vs on-the-fly critical path: "
            << util::fmt_fixed(
                   otf_critical_path.mean() / pooled_critical_path.mean(), 1)
            << "x fewer synchronized suite runs per cycle\n"
            << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
