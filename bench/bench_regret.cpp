// Regret curves: the theoretical lens (§II-C) made measurable.
//
// Runs each realization (the paper's three + the Exp3 extension) on a
// random instance with convergence disabled, recording cumulative expected
// regret per probe, and compares the growth against the adversarial
// envelope c * sqrt(t k ln k).
//
// Shape to check: every realization's cumulative regret is concave in t
// (per-probe regret falls as the weights learn) and stays under the
// envelope; Standard and Exp3 flatten fastest per probe, Distributed pays
// a large constant for its population.
#include <iostream>

#include "core/regret.hpp"
#include "datasets/distributions.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_regret — cumulative expected regret per realization");
  util::add_standard_bench_flags(cli);
  cli.add_int("options", 64, "option-set size k");
  cli.add_int("cycles", 400, "update cycles to trace");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto k = static_cast<std::size_t>(cli.get_int("options"));
  const auto options = datasets::make_random(k, 31);

  core::MwuConfig config;
  config.num_options = k;
  config.max_iterations = static_cast<std::size_t>(cli.get_int("cycles"));
  config.convergence_tol = 0.0;  // trace the full horizon

  const core::MwuKind kinds[] = {core::MwuKind::kStandard,
                                 core::MwuKind::kExp3, core::MwuKind::kSlate,
                                 core::MwuKind::kDistributed};
  std::vector<core::RegretTrace> traces;
  for (const auto kind : kinds) {
    traces.push_back(core::run_mwu_with_regret(
        kind, options, config,
        util::RngStream(static_cast<std::uint64_t>(cli.get_int("seed")))));
  }

  util::Table table("Cumulative expected regret on random" +
                    std::to_string(k) + " (per cycle checkpoints)");
  table.set_header({"cycles", "Standard", "Exp3", "Slate", "Distributed",
                    "envelope 2*sqrt(t k ln k) @ Standard's t"});
  for (std::size_t cycle : {std::size_t{10}, std::size_t{25}, std::size_t{50},
                            std::size_t{100}, std::size_t{200},
                            std::size_t{400}}) {
    if (cycle > config.max_iterations) break;
    std::vector<std::string> row{std::to_string(cycle)};
    for (const auto& trace : traces) {
      row.push_back(util::fmt_fixed(trace.at_cycle(cycle), 1));
    }
    const double probes =
        static_cast<double>(cycle) *
        static_cast<double>(traces[0].probes_per_cycle);
    row.push_back(
        util::fmt_fixed(core::adversarial_regret_bound(probes, k), 1));
    table.add_row(std::move(row));
  }
  table.emit(std::cout, cli.get_string("csv"));

  std::cout << "probes per cycle: Standard/Exp3 "
            << traces[0].probes_per_cycle << ", Slate "
            << traces[2].probes_per_cycle << ", Distributed "
            << traces[3].probes_per_cycle << "\n"
            << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
