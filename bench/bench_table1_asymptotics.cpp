// Reproduces Table I: the asymptotic properties of the three MWU
// realizations, expressed uniformly in k, n, eps, delta — plus an
// *empirical validation* of the communication column against the real
// message-passing substrate:
//
//   - Standard's centralized reduction congests its root with n-1 messages
//     per cycle (O(n));
//   - Distributed's uniform neighbor observation is balls-into-bins, so the
//     heaviest-hit agent receives O(ln n / ln ln n) requests per cycle with
//     high probability.
//
// The empirical section runs both SPMD drivers over the in-process
// communicator and compares measured per-cycle maximum congestion with the
// bound.
#include <cmath>
#include <iostream>

#include "core/parallel_driver.hpp"
#include "costmodel/asymptotics.hpp"
#include "datasets/distributions.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_table1_asymptotics — Table I + empirical congestion "
                "validation");
  util::add_standard_bench_flags(cli);
  cli.add_int("agents", 64, "SPMD agents for the empirical validation");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;

  // --- The symbolic table, as published.
  util::Table table(
      "Table I: asymptotic properties (k options, n nodes, eps error "
      "tolerance, delta = ln(beta/(1-beta)); * holds w.p. >= 1 - 1/n)");
  table.set_header({"Property", "Standard", "Distributed", "Slate"});
  for (const auto property :
       {costmodel::Property::kCommunication, costmodel::Property::kMemory,
        costmodel::Property::kConvergence, costmodel::Property::kMinAgents}) {
    table.add_row({costmodel::to_string(property),
                   costmodel::symbolic(core::MwuKind::kStandard, property),
                   costmodel::symbolic(core::MwuKind::kDistributed, property),
                   costmodel::symbolic(core::MwuKind::kSlate, property)});
  }
  table.emit(std::cout, cli.get_string("csv"));

  // --- Numeric evaluation at a concrete operating point.
  costmodel::OperatingPoint point;
  point.agents = static_cast<std::size_t>(cli.get_int("agents"));
  util::Table numeric("Table I evaluated at k=100, n=" +
                      std::to_string(point.agents) +
                      ", eps=0.05, beta=0.75 (constants = 1)");
  numeric.set_header({"Property", "Standard", "Distributed", "Slate"});
  for (const auto property :
       {costmodel::Property::kCommunication, costmodel::Property::kMemory,
        costmodel::Property::kConvergence, costmodel::Property::kMinAgents}) {
    numeric.add_row(
        {costmodel::to_string(property),
         util::fmt_fixed(
             costmodel::evaluate(core::MwuKind::kStandard, property, point), 1),
         util::fmt_fixed(costmodel::evaluate(core::MwuKind::kDistributed,
                                             property, point),
                         1),
         util::fmt_fixed(
             costmodel::evaluate(core::MwuKind::kSlate, property, point), 1)});
  }
  numeric.emit(std::cout);

  // --- Empirical congestion over the message-passing substrate.
  const std::size_t n = point.agents;
  const auto options = datasets::make_unimodal(32, 7);
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = options.size();
  config.num_agents = n;
  config.max_iterations = 60;

  const auto standard = core::run_standard_spmd(oracle, config, 99);
  const auto distributed =
      core::run_distributed_spmd(oracle, config, 99, /*population=*/n);

  util::Table empirical("Empirical per-cycle max congestion, n=" +
                        std::to_string(n) + " agents (message-passing "
                        "substrate)");
  empirical.set_header(
      {"Algorithm", "mean max/cycle", "worst cycle", "bound", "cycles"});
  empirical.add_row(
      {"Standard (centralized reduce)",
       util::fmt_fixed(standard.max_congestion_per_cycle.mean(), 1),
       util::fmt_fixed(standard.max_congestion_per_cycle.max(), 0),
       "O(n) = " + std::to_string(n),
       std::to_string(standard.max_congestion_per_cycle.count())});
  empirical.add_row(
      {"Distributed (neighbor observation)",
       util::fmt_fixed(distributed.max_congestion_per_cycle.mean(), 1),
       util::fmt_fixed(distributed.max_congestion_per_cycle.max(), 0),
       "O(ln n/ln ln n) = " +
           util::fmt_fixed(parallel::balls_into_bins_bound(n), 1),
       std::to_string(distributed.max_congestion_per_cycle.count())});

  // Engineering ablation: Standard's O(n) congestion is a property of the
  // centralized reduction, not of the algorithm — a binomial-tree
  // allreduce caps any node at ceil(log2 n) messages per cycle (paying
  // 2 log n sequential rounds instead).
  parallel::CommWorld tree_world(n);
  tree_world.run([&](parallel::Comm& comm) {
    for (int cycle = 0; cycle < 10; ++cycle) {
      (void)comm.allreduce_sum_tree({1.0});
      comm.barrier();
      if (comm.rank() == 0) comm.close_congestion_cycle();
      comm.barrier();
    }
  });
  empirical.add_row(
      {"Standard w/ tree reduction (ablation)",
       util::fmt_fixed(tree_world.congestion().max_per_cycle().mean(), 1),
       util::fmt_fixed(tree_world.congestion().max_per_cycle().max(), 0),
       "O(log n) = " + util::fmt_fixed(std::ceil(std::log2(n)), 0),
       std::to_string(tree_world.congestion().max_per_cycle().count())});
  empirical.emit(std::cout);

  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
