// Hot-path acceleration, quantified — before/after ns-per-op for the three
// optimizations this repository layers onto the paper's algorithms:
//
//   sampler       — one weighted draw from k = 2^14 options: the linear
//                   RngStream::weighted_choice scan vs the Fenwick-tree
//                   binary descent (util::FenwickSampler).
//   oracle        — one MWRepair phase-2 probe (evaluate() of a pooled
//                   32-edit patch): uncached re-hashing vs the primed
//                   OracleCache (flat semantics + pair-interference cache).
//   table2_cycle  — one full Standard-MWU bandit cycle at Table II scale
//                   (k = 2^14, n = 64 agents): per-agent linear scans vs
//                   the sampler-backed StandardMwu::sample.
//
// Plus one row per SoA weight kernel (DESIGN.md §12), measuring the scalar
// implementation against the runtime-dispatched one over the same k-element
// arrays — on a non-AVX2 machine the two coincide and the row reports ~1x:
//
//   kernel_update       — pow_update: the sparse bandit reward pass.
//   kernel_normalize    — fenwick_rebuild: the fused renormalize + tree
//                         reconstruction + total fold.
//   kernel_materialize  — materialize_affine: probabilities from weights.
//
// Results are emitted both as a human-readable table and as machine-
// readable JSON (--json, default BENCH_hot_paths.json) with the fixed
// schema "mwr-bench-hot-paths-v2"; CI's bench-smoke job gates on that
// file via .github/check_bench.py (speedup floors + absolute-regression
// bound against the committed baseline).  --repeat N runs every section N
// times and reports the median of each timing, squeezing scheduler noise
// out of the committed baselines.
//
// Both sides of every comparison compute the same values — each section
// asserts result equivalence before timing is trusted, and accumulator
// sums are folded into the JSON so the optimizer cannot delete the loops.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "core/standard_mwu.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/fenwick_sampler.hpp"
#include "util/simd/weight_kernels.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

struct Section {
  double before_ns = 0.0;
  double after_ns = 0.0;
  std::uint64_t checksum = 0;  ///< anti-DCE accumulator, recorded in JSON.

  [[nodiscard]] double speedup() const {
    return after_ns > 0.0 ? before_ns / after_ns : 0.0;
  }
};

/// Runs `body` `repeat` times and reports the median of each timing.  The
/// checksum must agree across repeats (same seeds, same arithmetic) — any
/// disagreement means a section is nondeterministic and its numbers are
/// meaningless, so that is fatal.
template <typename F>
Section median_of(std::size_t repeat, F&& body) {
  std::vector<Section> runs;
  runs.reserve(repeat);
  for (std::size_t i = 0; i < repeat; ++i) runs.push_back(body());
  for (const Section& s : runs) {
    if (s.checksum != runs.front().checksum) {
      std::cerr << "FATAL: checksum varies across --repeat runs\n";
      std::exit(1);
    }
  }
  const auto median = [&](auto field) {
    std::vector<double> v;
    v.reserve(repeat);
    for (const Section& s : runs) v.push_back(field(s));
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  Section out;
  out.before_ns = median([](const Section& s) { return s.before_ns; });
  out.after_ns = median([](const Section& s) { return s.after_ns; });
  out.checksum = runs.front().checksum;
  return out;
}

std::uint64_t double_bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// --- sampler: one weighted draw from k options --------------------------

Section bench_sampler(std::size_t k, std::size_t draws, std::uint64_t seed) {
  util::RngStream init(seed);
  std::vector<double> weights(k);
  for (auto& w : weights) w = 0.25 + init.uniform();

  Section out;
  {
    util::RngStream rng(seed ^ 0x1111);
    const double total =
        [&] {
          double t = 0.0;
          for (const double w : weights) t += w;
          return t;
        }();
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < draws; ++i) {
      acc += rng.weighted_choice(weights, total);
    }
    out.before_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(draws);
    out.checksum += acc;
  }
  {
    const util::FenwickSampler sampler(weights);
    util::RngStream rng(seed ^ 0x2222);
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < draws; ++i) {
      acc += sampler.sample(rng);
    }
    out.after_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(draws);
    out.checksum += acc;
  }
  return out;
}

// --- oracle: repeated phase-2 probes over a precomputed pool ------------

Section bench_oracle(std::size_t pool_size, std::size_t patch_size,
                     std::size_t probes, std::uint64_t seed) {
  auto spec = datasets::scenario_by_name("gzip-2009-08-16");
  spec.seed = seed;
  const apr::ProgramModel program(spec);
  const apr::TestOracle uncached(program, /*enable_cache=*/false);
  const apr::TestOracle cached(program, /*enable_cache=*/true);

  apr::PoolConfig pool_config;
  pool_config.target_size = pool_size;
  pool_config.seed = seed;
  const auto pool = apr::MutationPool::precompute(uncached, pool_config);
  cached.prime_cache(pool.mutations());

  // One shared probe schedule (the same patches, in the same order, for
  // both oracles) drawn the way MWRepair phase 2 draws them.
  std::vector<apr::Patch> patches(probes);
  util::RngStream draw(seed ^ 0x3333);
  for (auto& patch : patches) {
    patch = apr::sample_from_pool(pool.mutations(), patch_size, draw);
  }

  // Equivalence first: cached and uncached evaluation must be
  // bit-identical on every probe or the timing below is meaningless.
  for (const auto& patch : patches) {
    if (!(uncached.evaluate(patch) == cached.evaluate(patch))) {
      std::cerr << "FATAL: cached evaluate() diverged from uncached\n";
      std::exit(1);
    }
  }

  Section out;
  {
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (const auto& patch : patches) {
      acc += uncached.evaluate(patch).fitness();
    }
    out.before_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(probes);
    out.checksum += acc;
  }
  {
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (const auto& patch : patches) {
      acc += cached.evaluate(patch).fitness();
    }
    out.after_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(probes);
    out.checksum += acc;
  }
  return out;
}

// --- table2_cycle: full Standard-MWU bandit cycle at k = 2^14 -----------

Section bench_table2_cycle(std::size_t k, std::size_t agents,
                           std::size_t cycles, std::uint64_t seed) {
  core::MwuConfig config;
  config.num_options = k;
  config.num_agents = agents;

  // A fixed synthetic reward rule keeps both runs on identical updates.
  const auto reward = [k](std::size_t option) {
    return option * 2 < k ? 1.0 : 0.0;
  };

  Section out;
  {
    // Before: the historical cycle — per-agent linear scans over the
    // shared weight vector.
    core::StandardMwu mwu(config);
    util::RngStream rng(seed ^ 0x4444);
    std::vector<std::size_t> probes(agents);
    std::vector<double> rewards(agents);
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      const auto& weights = mwu.weights();
      double total = 0.0;
      for (const double w : weights) total += w;
      for (std::size_t j = 0; j < agents; ++j) {
        probes[j] = rng.weighted_choice(weights, total);
        rewards[j] = reward(probes[j]);
      }
      mwu.update(probes, rewards, rng);
      acc += mwu.best_option();
    }
    out.before_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(cycles);
    out.checksum += acc;
  }
  {
    // After: StandardMwu::sample — Fenwick descent per agent, tree rebuilt
    // alongside the per-cycle renormalization.
    core::StandardMwu mwu(config);
    util::RngStream rng(seed ^ 0x4444);
    std::vector<double> rewards(agents);
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      const auto probes = mwu.sample(rng);
      for (std::size_t j = 0; j < agents; ++j) rewards[j] = reward(probes[j]);
      mwu.update(probes, rewards, rng);
      acc += mwu.best_option();
    }
    out.after_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(cycles);
    out.checksum += acc;
  }
  return out;
}

// --- per-kernel rows: scalar implementation vs runtime dispatch ---------

namespace simd = util::simd;

struct KernelTables {
  simd::WeightKernels scalar;
  simd::WeightKernels dispatched;
};

KernelTables kernel_tables() {
  // Restore the environment-selected mode afterwards, so running the bench
  // under MWR_FORCE_SCALAR=1 really measures scalar-vs-scalar (~1x rows).
  const char* env = std::getenv("MWR_FORCE_SCALAR");
  const bool env_forced = env != nullptr && env[0] != '\0' &&
                          !(env[0] == '0' && env[1] == '\0');
  simd::force_scalar_for_testing(true);
  const simd::WeightKernels scalar = simd::active();
  simd::force_scalar_for_testing(env_forced);
  const simd::WeightKernels dispatched = simd::active();
  return {scalar, dispatched};
}

std::vector<double> kernel_weights(std::size_t k, std::uint64_t seed) {
  util::RngStream init(seed);
  std::vector<double> weights(k);
  for (auto& w : weights) w = 0.25 + init.uniform();
  return weights;
}

// pow_update over k weights with the bandit's sparse exponent shape
// (~64 touched arms).  Alternating base g and 1/g keeps magnitudes bounded
// across iterations without a per-iteration reset copy.
Section bench_kernel_update(std::size_t k, std::size_t iters,
                            std::uint64_t seed) {
  std::vector<double> exps(k, 0.0);
  util::RngStream pick(seed ^ 0x5555);
  for (int j = 0; j < 64; ++j) {
    exps[static_cast<std::size_t>(pick.uniform() * static_cast<double>(k))] =
        1.0 + static_cast<double>(j % 3);
  }
  const KernelTables tables = kernel_tables();
  const double growth = 1.05;
  const double shrink = 1.0 / growth;
  const auto side = [&](const simd::WeightKernels& kernels, double& timing) {
    std::vector<double> w = kernel_weights(k, seed);
    util::WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      kernels.pow_update(w.data(), exps.data(), k, i % 2 ? shrink : growth);
    }
    timing = timer.elapsed_seconds() * 1e9 / static_cast<double>(iters);
    return double_bits(simd::sum_seq(w.data(), k));
  };
  Section out;
  const std::uint64_t before = side(tables.scalar, out.before_ns);
  const std::uint64_t after = side(tables.dispatched, out.after_ns);
  if (before != after) {
    std::cerr << "FATAL: kernel_update diverged across dispatch\n";
    std::exit(1);
  }
  out.checksum = before;
  return out;
}

// fenwick_rebuild: the fused divide + tree build + total fold.  Divisors
// alternate 2.0 / 0.5 — exact in binary floating point, so the weights
// return to their initial values every other iteration.
Section bench_kernel_normalize(std::size_t k, std::size_t iters,
                               std::uint64_t seed) {
  const KernelTables tables = kernel_tables();
  const auto side = [&](const simd::WeightKernels& kernels, double& timing) {
    std::vector<double> w = kernel_weights(k, seed);
    std::vector<double> tree(k + 1, 0.0);
    double acc = 0.0;
    util::WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      acc += kernels.fenwick_rebuild(w.data(), tree.data(), k,
                                     i % 2 ? 0.5 : 2.0);
    }
    timing = timer.elapsed_seconds() * 1e9 / static_cast<double>(iters);
    return double_bits(acc) ^ double_bits(tree[k]);
  };
  Section out;
  const std::uint64_t before = side(tables.scalar, out.before_ns);
  const std::uint64_t after = side(tables.dispatched, out.after_ns);
  if (before != after) {
    std::cerr << "FATAL: kernel_normalize diverged across dispatch\n";
    std::exit(1);
  }
  out.checksum = before;
  return out;
}

// materialize_affine: the probabilities() pass (dst = w / total).
Section bench_kernel_materialize(std::size_t k, std::size_t iters,
                                 std::uint64_t seed) {
  const KernelTables tables = kernel_tables();
  const auto side = [&](const simd::WeightKernels& kernels, double& timing) {
    const std::vector<double> w = kernel_weights(k, seed);
    const double total = simd::sum_seq(w.data(), k);
    std::vector<double> dst(k, 0.0);
    double acc = 0.0;
    util::WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      kernels.materialize_affine(dst.data(), w.data(), k, 1.0, total, 0.0);
      acc += dst[i % k];
    }
    timing = timer.elapsed_seconds() * 1e9 / static_cast<double>(iters);
    return double_bits(acc);
  };
  Section out;
  const std::uint64_t before = side(tables.scalar, out.before_ns);
  const std::uint64_t after = side(tables.dispatched, out.after_ns);
  if (before != after) {
    std::cerr << "FATAL: kernel_materialize diverged across dispatch\n";
    std::exit(1);
  }
  out.checksum = before;
  return out;
}

void emit_json(const std::string& path, std::size_t k, std::size_t agents,
               std::size_t pool_size, std::size_t patch_size,
               std::size_t repeat, const Section& sampler,
               const Section& oracle, const Section& cycle,
               const Section& kernel_update, const Section& kernel_normalize,
               const Section& kernel_materialize) {
  const auto section = [](std::ostream& os, const char* name,
                          const Section& s, bool last) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"%s\": {\"before_ns_per_op\": %.1f, "
                  "\"after_ns_per_op\": %.1f, \"speedup\": %.2f, "
                  "\"checksum\": %llu}%s\n",
                  name, s.before_ns, s.after_ns, s.speedup(),
                  static_cast<unsigned long long>(s.checksum),
                  last ? "" : ",");
    os << buf;
  };
  std::ofstream os(path);
  os << "{\n"
     << "  \"schema\": \"mwr-bench-hot-paths-v2\",\n"
     << "  \"params\": {\"options\": " << k << ", \"agents\": " << agents
     << ", \"pool\": " << pool_size << ", \"patch\": " << patch_size
     << ", \"repeat\": " << repeat << "},\n";
  section(os, "sampler", sampler, false);
  section(os, "oracle", oracle, false);
  section(os, "table2_cycle", cycle, false);
  section(os, "kernel_update", kernel_update, false);
  section(os, "kernel_normalize", kernel_normalize, false);
  section(os, "kernel_materialize", kernel_materialize, true);
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_hot_paths — before/after ns-per-op for the Fenwick "
                "sampler, the oracle cache, and the full Table-II cycle");
  util::add_standard_bench_flags(cli);
  cli.add_int("options", 1 << 14, "weighted-draw options (k)");
  cli.add_int("agents", 64, "agents per cycle (n)");
  cli.add_int("draws", 200000, "sampler draws to time");
  cli.add_int("cycles", 200, "full MWU cycles to time");
  cli.add_int("pool", 512, "precomputed pool size for the oracle bench");
  cli.add_int("patch", 32, "mutations per probed patch");
  cli.add_int("probes", 2000, "oracle probes to time");
  cli.add_int("kernel-iters", 2000, "iterations per weight-kernel row");
  cli.add_int("repeat", 1, "section repetitions; the median is reported");
  cli.add_string("json", "BENCH_hot_paths.json",
                 "machine-readable output path (gated by check_bench.py)");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::size_t>(cli.get_int("options"));
  const auto agents = static_cast<std::size_t>(cli.get_int("agents"));
  const auto pool_size = static_cast<std::size_t>(cli.get_int("pool"));
  const auto patch_size = static_cast<std::size_t>(cli.get_int("patch"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto kernel_iters =
      static_cast<std::size_t>(cli.get_int("kernel-iters"));
  const auto repeat =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("repeat")));

  const Section sampler = median_of(repeat, [&] {
    return bench_sampler(k, static_cast<std::size_t>(cli.get_int("draws")),
                         seed);
  });
  const Section oracle = median_of(repeat, [&] {
    return bench_oracle(pool_size, patch_size,
                        static_cast<std::size_t>(cli.get_int("probes")), seed);
  });
  const Section cycle = median_of(repeat, [&] {
    return bench_table2_cycle(
        k, agents, static_cast<std::size_t>(cli.get_int("cycles")), seed);
  });
  const Section kernel_update = median_of(
      repeat, [&] { return bench_kernel_update(k, kernel_iters, seed); });
  const Section kernel_normalize = median_of(
      repeat, [&] { return bench_kernel_normalize(k, kernel_iters, seed); });
  const Section kernel_materialize = median_of(
      repeat, [&] { return bench_kernel_materialize(k, kernel_iters, seed); });

  util::Table table("Hot-path before/after (k=" + std::to_string(k) +
                    ", n=" + std::to_string(agents) + ", dispatch=" +
                    util::simd::dispatch_name() + ")");
  table.set_header({"path", "before ns/op", "after ns/op", "speedup"});
  const auto row = [&](const char* name, const Section& s) {
    table.add_row({name, util::fmt_fixed(s.before_ns, 1),
                   util::fmt_fixed(s.after_ns, 1),
                   util::fmt_fixed(s.speedup(), 2) + "x"});
  };
  row("weighted draw (linear -> Fenwick)", sampler);
  row("phase-2 probe (uncached -> cached)", oracle);
  row("Standard-MWU cycle", cycle);
  row("kernel pow_update (scalar -> simd)", kernel_update);
  row("kernel fenwick_rebuild (scalar -> simd)", kernel_normalize);
  row("kernel materialize (scalar -> simd)", kernel_materialize);
  table.emit(std::cout, cli.get_string("csv"));

  emit_json(cli.get_string("json"), k, agents, pool_size, patch_size, repeat,
            sampler, oracle, cycle, kernel_update, kernel_normalize,
            kernel_materialize);
  std::cout << "wrote " << cli.get_string("json") << "\n";
  return 0;
}
