// Hot-path acceleration, quantified — before/after ns-per-op for the three
// optimizations this repository layers onto the paper's algorithms:
//
//   sampler       — one weighted draw from k = 2^14 options: the linear
//                   RngStream::weighted_choice scan vs the Fenwick-tree
//                   binary descent (util::FenwickSampler).
//   oracle        — one MWRepair phase-2 probe (evaluate() of a pooled
//                   32-edit patch): uncached re-hashing vs the primed
//                   OracleCache (flat semantics + pair-interference cache).
//   table2_cycle  — one full Standard-MWU bandit cycle at Table II scale
//                   (k = 2^14, n = 64 agents): per-agent linear scans vs
//                   the sampler-backed StandardMwu::sample.
//
// Results are emitted both as a human-readable table and as machine-
// readable JSON (--json, default BENCH_hot_paths.json) with the fixed
// schema "mwr-bench-hot-paths-v1"; CI's bench-smoke job gates on that
// file via .github/check_bench.py (speedup floors + absolute-regression
// bound against the committed baseline).
//
// Both sides of every comparison compute the same values — each section
// asserts result equivalence before timing is trusted, and accumulator
// sums are folded into the JSON so the optimizer cannot delete the loops.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "core/standard_mwu.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/fenwick_sampler.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

struct Section {
  double before_ns = 0.0;
  double after_ns = 0.0;
  std::uint64_t checksum = 0;  ///< anti-DCE accumulator, recorded in JSON.

  [[nodiscard]] double speedup() const {
    return after_ns > 0.0 ? before_ns / after_ns : 0.0;
  }
};

// --- sampler: one weighted draw from k options --------------------------

Section bench_sampler(std::size_t k, std::size_t draws, std::uint64_t seed) {
  util::RngStream init(seed);
  std::vector<double> weights(k);
  for (auto& w : weights) w = 0.25 + init.uniform();

  Section out;
  {
    util::RngStream rng(seed ^ 0x1111);
    const double total =
        [&] {
          double t = 0.0;
          for (const double w : weights) t += w;
          return t;
        }();
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < draws; ++i) {
      acc += rng.weighted_choice(weights, total);
    }
    out.before_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(draws);
    out.checksum += acc;
  }
  {
    const util::FenwickSampler sampler(weights);
    util::RngStream rng(seed ^ 0x2222);
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < draws; ++i) {
      acc += sampler.sample(rng);
    }
    out.after_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(draws);
    out.checksum += acc;
  }
  return out;
}

// --- oracle: repeated phase-2 probes over a precomputed pool ------------

Section bench_oracle(std::size_t pool_size, std::size_t patch_size,
                     std::size_t probes, std::uint64_t seed) {
  auto spec = datasets::scenario_by_name("gzip-2009-08-16");
  spec.seed = seed;
  const apr::ProgramModel program(spec);
  const apr::TestOracle uncached(program, /*enable_cache=*/false);
  const apr::TestOracle cached(program, /*enable_cache=*/true);

  apr::PoolConfig pool_config;
  pool_config.target_size = pool_size;
  pool_config.seed = seed;
  const auto pool = apr::MutationPool::precompute(uncached, pool_config);
  cached.prime_cache(pool.mutations());

  // One shared probe schedule (the same patches, in the same order, for
  // both oracles) drawn the way MWRepair phase 2 draws them.
  std::vector<apr::Patch> patches(probes);
  util::RngStream draw(seed ^ 0x3333);
  for (auto& patch : patches) {
    patch = apr::sample_from_pool(pool.mutations(), patch_size, draw);
  }

  // Equivalence first: cached and uncached evaluation must be
  // bit-identical on every probe or the timing below is meaningless.
  for (const auto& patch : patches) {
    if (!(uncached.evaluate(patch) == cached.evaluate(patch))) {
      std::cerr << "FATAL: cached evaluate() diverged from uncached\n";
      std::exit(1);
    }
  }

  Section out;
  {
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (const auto& patch : patches) {
      acc += uncached.evaluate(patch).fitness();
    }
    out.before_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(probes);
    out.checksum += acc;
  }
  {
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (const auto& patch : patches) {
      acc += cached.evaluate(patch).fitness();
    }
    out.after_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(probes);
    out.checksum += acc;
  }
  return out;
}

// --- table2_cycle: full Standard-MWU bandit cycle at k = 2^14 -----------

Section bench_table2_cycle(std::size_t k, std::size_t agents,
                           std::size_t cycles, std::uint64_t seed) {
  core::MwuConfig config;
  config.num_options = k;
  config.num_agents = agents;

  // A fixed synthetic reward rule keeps both runs on identical updates.
  const auto reward = [k](std::size_t option) {
    return option * 2 < k ? 1.0 : 0.0;
  };

  Section out;
  {
    // Before: the historical cycle — per-agent linear scans over the
    // shared weight vector.
    core::StandardMwu mwu(config);
    util::RngStream rng(seed ^ 0x4444);
    std::vector<std::size_t> probes(agents);
    std::vector<double> rewards(agents);
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      const auto& weights = mwu.weights();
      double total = 0.0;
      for (const double w : weights) total += w;
      for (std::size_t j = 0; j < agents; ++j) {
        probes[j] = rng.weighted_choice(weights, total);
        rewards[j] = reward(probes[j]);
      }
      mwu.update(probes, rewards, rng);
      acc += mwu.best_option();
    }
    out.before_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(cycles);
    out.checksum += acc;
  }
  {
    // After: StandardMwu::sample — Fenwick descent per agent, tree rebuilt
    // alongside the per-cycle renormalization.
    core::StandardMwu mwu(config);
    util::RngStream rng(seed ^ 0x4444);
    std::vector<double> rewards(agents);
    util::WallTimer timer;
    std::uint64_t acc = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      const auto probes = mwu.sample(rng);
      for (std::size_t j = 0; j < agents; ++j) rewards[j] = reward(probes[j]);
      mwu.update(probes, rewards, rng);
      acc += mwu.best_option();
    }
    out.after_ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(cycles);
    out.checksum += acc;
  }
  return out;
}

void emit_json(const std::string& path, std::size_t k, std::size_t agents,
               std::size_t pool_size, std::size_t patch_size,
               const Section& sampler, const Section& oracle,
               const Section& cycle) {
  const auto section = [](std::ostream& os, const char* name,
                          const Section& s, bool last) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"%s\": {\"before_ns_per_op\": %.1f, "
                  "\"after_ns_per_op\": %.1f, \"speedup\": %.2f, "
                  "\"checksum\": %llu}%s\n",
                  name, s.before_ns, s.after_ns, s.speedup(),
                  static_cast<unsigned long long>(s.checksum),
                  last ? "" : ",");
    os << buf;
  };
  std::ofstream os(path);
  os << "{\n"
     << "  \"schema\": \"mwr-bench-hot-paths-v1\",\n"
     << "  \"params\": {\"options\": " << k << ", \"agents\": " << agents
     << ", \"pool\": " << pool_size << ", \"patch\": " << patch_size
     << "},\n";
  section(os, "sampler", sampler, false);
  section(os, "oracle", oracle, false);
  section(os, "table2_cycle", cycle, true);
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_hot_paths — before/after ns-per-op for the Fenwick "
                "sampler, the oracle cache, and the full Table-II cycle");
  util::add_standard_bench_flags(cli);
  cli.add_int("options", 1 << 14, "weighted-draw options (k)");
  cli.add_int("agents", 64, "agents per cycle (n)");
  cli.add_int("draws", 200000, "sampler draws to time");
  cli.add_int("cycles", 200, "full MWU cycles to time");
  cli.add_int("pool", 512, "precomputed pool size for the oracle bench");
  cli.add_int("patch", 32, "mutations per probed patch");
  cli.add_int("probes", 2000, "oracle probes to time");
  cli.add_string("json", "BENCH_hot_paths.json",
                 "machine-readable output path (gated by check_bench.py)");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::size_t>(cli.get_int("options"));
  const auto agents = static_cast<std::size_t>(cli.get_int("agents"));
  const auto pool_size = static_cast<std::size_t>(cli.get_int("pool"));
  const auto patch_size = static_cast<std::size_t>(cli.get_int("patch"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const Section sampler = bench_sampler(
      k, static_cast<std::size_t>(cli.get_int("draws")), seed);
  const Section oracle = bench_oracle(
      pool_size, patch_size, static_cast<std::size_t>(cli.get_int("probes")),
      seed);
  const Section cycle = bench_table2_cycle(
      k, agents, static_cast<std::size_t>(cli.get_int("cycles")), seed);

  util::Table table("Hot-path before/after (k=" + std::to_string(k) +
                    ", n=" + std::to_string(agents) + ")");
  table.set_header({"path", "before ns/op", "after ns/op", "speedup"});
  const auto row = [&](const char* name, const Section& s) {
    table.add_row({name, util::fmt_fixed(s.before_ns, 1),
                   util::fmt_fixed(s.after_ns, 1),
                   util::fmt_fixed(s.speedup(), 2) + "x"});
  };
  row("weighted draw (linear -> Fenwick)", sampler);
  row("phase-2 probe (uncached -> cached)", oracle);
  row("Standard-MWU cycle", cycle);
  table.emit(std::cout, cli.get_string("csv"));

  emit_json(cli.get_string("json"), k, agents, pool_size, patch_size,
            sampler, oracle, cycle);
  std::cout << "wrote " << cli.get_string("json") << "\n";
  return 0;
}
