// Serve-path load generator — drives the repair-as-a-service campaign
// server with a mixed-family fleet of concurrent campaigns and measures
// the serving metrics the paper's deployment story rests on:
//
//   load       — campaigns/sec through submit -> DRR epochs -> retire,
//                plus admission-control rejects from a deliberate
//                overflow beyond the resident cap;
//   probes     — p50/p99 per-probe latency (wave wall seconds over
//                probes issued, sampled every campaign-epoch);
//   checkpoint — bytes written by a mid-flight checkpoint_all(), the
//                critical-path vs async-writer wall-time split, and
//                resume_ok: a kill/restore cycle must reproduce the
//                uninterrupted trajectory hash and outcome JSON for
//                every campaign (the bit-identity pin);
//   fairness   — epochs run, p50/p99 wall time per epoch, and starved
//                campaign-epochs (must be 0 under deficit round robin).
//
// Two modes:
//   default    — self-hosted: an in-process CampaignServer, so every
//                section above is observable.  Emits BENCH_serve.json
//                (schema "mwr-bench-serve-v2"); CI's bench-smoke job
//                gates it against bench/BENCH_serve.baseline.json via
//                .github/check_bench.py.
//   --connect PATH
//                drives an external mwr_served daemon over its UDS
//                control socket instead: submits the fleet, polls every
//                campaign to completion, prints a per-campaign ledger
//                (id, scenario, cycles, probes, repaired, hash) for the
//                CI serve lane's artifact.  Daemon-internal sections
//                (probes, fairness, checkpoint) are not client-visible,
//                so connect mode does not write the gated JSON.
//                --poll-only skips submission and polls ids 1..N — the
//                post-kill --resume half of the CI durability exercise.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/control.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

// One scenario per paper family flavor: tiny C, the two gzip defects,
// a web server, and two Defects4J programs.
const std::vector<std::string> kFamilies = {
    "units",   "gzip-2009-08-16", "gzip-2009-09-26",
    "Chart26", "Math8",           "lighttpd-1806-1807",
};

// Campaign sizing, overridable from the CLI: the CI durability exercise
// submits deliberately long campaigns so a kill -9 lands mid-flight.
std::uint32_t g_bugs = 2;
std::uint32_t g_iterations = 60;

/// The serving-sized campaign the fleet is built from; the per-campaign
/// seed keeps trajectories distinct within a family.
serve::SubmitRequest fleet_request(std::size_t index) {
  serve::SubmitRequest request;
  request.scenario = kFamilies[index % kFamilies.size()];
  request.bugs = g_bugs;
  request.pool_target = 150;
  request.pool_attempts = 10000;
  request.pool_seed = 11;
  request.arms = 16;
  request.agents = 4;
  request.max_count = 128;
  request.max_iterations = g_iterations;
  request.repair_seed = 100 + static_cast<std::uint64_t>(index);
  return request;
}

struct LoadResult {
  std::size_t campaigns = 0;       // accepted into the fleet
  std::size_t completed = 0;
  std::size_t rejects = 0;         // admission-control rejections
  double campaigns_per_sec = 0.0;
  std::uint64_t epochs = 0;
  std::uint64_t starved = 0;
  std::vector<double> probe_latency_us;
  std::vector<double> epoch_us;    // wall time of every scheduling epoch
};

struct CheckpointResult {
  std::uint64_t total_bytes = 0;
  double critical_path_us = 0.0;   // serialize + queue, on the epoch path
  double writer_us = 0.0;          // tmp + fsync + rename, off-path
  bool resume_ok = false;
};

constexpr std::size_t kOverflowSubmissions = 8;

/// Self-hosted load phase: N campaigns + a deliberate overflow past the
/// admission cap, drained to completion on an in-process server.
LoadResult run_load(std::size_t campaigns, std::size_t quantum,
                    std::size_t workers) {
  serve::ServerConfig config;
  config.max_resident = campaigns;
  config.quantum = quantum;
  config.workers = workers;
  serve::CampaignServer server(config);

  LoadResult result;
  const util::WallTimer timer;
  for (std::size_t i = 0; i < campaigns; ++i) {
    if (server.submit(fleet_request(i)).has_value()) ++result.campaigns;
  }
  for (std::size_t i = 0; i < kOverflowSubmissions; ++i) {
    if (!server.submit(fleet_request(campaigns + i)).has_value())
      ++result.rejects;
  }
  // Drain epoch by epoch so every scheduling epoch's wall time lands in
  // the p50/p99 distribution (the pipeline's headline latency).
  while (server.resident() > 0) {
    const util::WallTimer epoch_timer;
    if (!server.run_epoch()) break;
    result.epoch_us.push_back(epoch_timer.elapsed_seconds() * 1e6);
  }
  const double seconds = timer.elapsed_seconds();

  result.completed = server.completed();
  result.campaigns_per_sec =
      seconds > 0.0 ? static_cast<double>(result.completed) / seconds : 0.0;
  result.epochs = server.epochs();
  result.starved = server.starved_epochs();
  result.probe_latency_us.reserve(server.probe_latency_seconds().size());
  for (const double s : server.probe_latency_seconds())
    result.probe_latency_us.push_back(s * 1e6);
  return result;
}

/// The durability pin, measured in-run: checkpoint a mid-flight fleet,
/// destroy the server (kill -9 equivalent), restore into a fresh one,
/// and demand the uninterrupted trajectories back bit-for-bit.
CheckpointResult run_checkpoint_cycle(std::size_t workers) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mwr-bench-serve-ckpt";
  std::filesystem::remove_all(dir);

  const std::size_t fleet = kFamilies.size();
  std::vector<std::uint64_t> reference_hashes;
  std::vector<std::string> reference_json;
  {
    serve::ServerConfig config;
    config.workers = workers;
    serve::CampaignServer reference(config);
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < fleet; ++i)
      ids.push_back(*reference.submit(fleet_request(i)));
    reference.drain();
    for (const std::uint64_t id : ids) {
      reference_hashes.push_back(reference.status(id).trajectory_hash);
      reference_json.push_back(reference.result(id).outcome_json);
    }
  }

  CheckpointResult result;
  {
    serve::ServerConfig config;
    config.workers = workers;
    config.quantum = 1;  // keep every campaign mid-flight at the snapshot
    config.checkpoint_dir = dir.string();
    serve::CampaignServer first_life(config);
    for (std::size_t i = 0; i < fleet; ++i)
      (void)first_life.submit(fleet_request(i));
    for (int epoch = 0; epoch < 3; ++epoch) (void)first_life.run_epoch();
    result.total_bytes = first_life.checkpoint_all().bytes;
    // The async split: what serializing cost the control loop vs what
    // the writer thread spent on file I/O off the critical path.
    result.critical_path_us = first_life.checkpoint_critical_seconds() * 1e6;
    result.writer_us = first_life.checkpoint_writer_seconds() * 1e6;
    // Destructor without drain: the abrupt-death half of the cycle.
  }
  {
    serve::ServerConfig config;
    config.workers = workers;
    config.checkpoint_dir = dir.string();
    serve::CampaignServer second_life(config);
    result.resume_ok = second_life.restore_from_dir() == fleet;
    second_life.drain();
    for (std::size_t i = 0; i < fleet && result.resume_ok; ++i) {
      const std::uint64_t id = i + 1;  // ids are stable across lives
      result.resume_ok =
          second_life.status(id).trajectory_hash == reference_hashes[i] &&
          second_life.result(id).outcome_json == reference_json[i];
    }
    result.resume_ok = result.resume_ok && second_life.starved_epochs() == 0;
  }
  std::filesystem::remove_all(dir);
  return result;
}

/// Connect mode: the same fleet through a live mwr_served daemon.
/// Prints the per-campaign ledger the CI serve lane archives.
int run_connect(const std::string& socket_path, std::size_t campaigns,
                bool poll_only, bool checkpoint_request, bool shutdown_after) {
  serve::ServeClient client(socket_path);
  if (checkpoint_request) {
    const serve::CheckpointReply reply = client.checkpoint();
    std::printf("checkpoint: %llu bytes across %llu campaign(s)\n",
                static_cast<unsigned long long>(reply.bytes),
                static_cast<unsigned long long>(reply.campaigns));
    return reply.campaigns > 0 ? 0 : 1;
  }
  std::vector<std::uint64_t> ids;
  std::size_t rejects = 0;
  const util::WallTimer timer;

  if (poll_only) {
    for (std::size_t i = 0; i < campaigns; ++i) ids.push_back(i + 1);
  } else {
    for (std::size_t i = 0; i < campaigns; ++i) {
      const serve::SubmitReply reply = client.submit(fleet_request(i));
      if (reply.accepted) {
        ids.push_back(reply.campaign_id);
      } else {
        ++rejects;
      }
    }
  }

  std::vector<std::uint64_t> pending = ids;
  while (!pending.empty()) {
    std::vector<std::uint64_t> still;
    for (const std::uint64_t id : pending) {
      if (!client.status(id).done) still.push_back(id);
    }
    pending = std::move(still);
    if (pending.empty()) break;
    if (timer.elapsed_seconds() > 600.0) {
      std::cerr << "FATAL: " << pending.size()
                << " campaign(s) still unfinished after 600s (first id "
                << pending.front() << ")\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double seconds = timer.elapsed_seconds();

  std::size_t repaired_campaigns = 0;
  std::cout << "campaign scenario cycles probes repaired hash\n";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::StatusReply status = client.status(ids[i]);
    const std::string scenario =
        poll_only ? "?" : fleet_request(i).scenario;  // daemon-side ids align
    repaired_campaigns += status.repaired > 0 ? 1u : 0u;
    std::printf("%llu %s %llu %llu %llu %016llx\n",
                static_cast<unsigned long long>(ids[i]), scenario.c_str(),
                static_cast<unsigned long long>(status.online_cycles),
                static_cast<unsigned long long>(status.online_probes),
                static_cast<unsigned long long>(status.repaired),
                static_cast<unsigned long long>(status.trajectory_hash));
    const serve::ResultReply result = client.result(ids[i]);
    if (!result.ready ||
        result.outcome_json.find("mwr-campaign-outcome-v1") ==
            std::string::npos) {
      std::cerr << "FATAL: campaign " << ids[i]
                << " finished without a well-formed outcome document\n";
      return 1;
    }
  }
  std::printf(
      "connect: %zu campaigns done in %.2fs (%.1f campaigns/s), "
      "%zu rejects, %zu with repairs\n",
      ids.size(), seconds,
      seconds > 0.0 ? static_cast<double>(ids.size()) / seconds : 0.0, rejects,
      repaired_campaigns);
  if (shutdown_after) (void)client.shutdown();
  return 0;
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_serve: fatal: " << error.what() << "\n";
    return 1;
  }
}

int run(int argc, char** argv) {
  util::Cli cli(
      "bench_serve — mixed-family campaign fleet through the campaign "
      "server: throughput, probe latency, checkpoint durability, DRR "
      "fairness");
  cli.add_int("campaigns", 96, "fleet size (cycled across 6 families)");
  cli.add_int("bugs", 2, "bugs per campaign (CI durability uses more)");
  cli.add_int("iterations", 60, "online iteration cap per bug");
  cli.add_int("quantum", 8, "DRR work units per campaign-epoch");
  cli.add_int("workers", 0, "engine worker threads (0 = hardware)");
  cli.add_flag("full", "paper-scale fleet (1000 campaigns)");
  cli.add_string("connect", "",
                 "drive a live mwr_served daemon at this socket instead "
                 "of self-hosting (no gated JSON in this mode)");
  cli.add_flag("poll-only",
               "with --connect: poll ids 1..campaigns instead of "
               "submitting (post-resume CI phase)");
  cli.add_flag("checkpoint-request",
               "with --connect: ask the daemon to checkpoint every "
               "resident campaign, print the reply, exit");
  cli.add_flag("shutdown", "with --connect: drain-shutdown the daemon after");
  cli.add_string("json", "BENCH_serve.json",
                 "machine-readable output path (gated by check_bench.py)");
  cli.add_string("csv", "", "also write the table as CSV");
  if (!cli.parse(argc, argv)) return 0;

  std::size_t campaigns = static_cast<std::size_t>(cli.get_int("campaigns"));
  if (cli.get_flag("full")) campaigns = 1000;
  g_bugs = static_cast<std::uint32_t>(cli.get_int("bugs"));
  g_iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));

  if (!cli.get_string("connect").empty()) {
    return run_connect(cli.get_string("connect"), campaigns,
                       cli.get_flag("poll-only"),
                       cli.get_flag("checkpoint-request"),
                       cli.get_flag("shutdown"));
  }

  const std::size_t quantum = static_cast<std::size_t>(cli.get_int("quantum"));
  const std::size_t workers = static_cast<std::size_t>(cli.get_int("workers"));
  const LoadResult load = run_load(campaigns, quantum, workers);
  const CheckpointResult checkpoint = run_checkpoint_cycle(workers);

  const double p50_us = util::percentile(load.probe_latency_us, 0.50);
  const double p99_us = util::percentile(load.probe_latency_us, 0.99);
  const double epoch_p50_us = util::percentile(load.epoch_us, 0.50);
  const double epoch_p99_us = util::percentile(load.epoch_us, 0.99);

  util::Table table("Campaign server (" + std::to_string(load.campaigns) +
                    " campaigns, " + std::to_string(kFamilies.size()) +
                    " families, quantum " + std::to_string(quantum) + ")");
  table.set_header({"metric", "value"});
  table.add_row({"campaigns/s", util::fmt_fixed(load.campaigns_per_sec, 1)});
  table.add_row({"completed", std::to_string(load.completed)});
  table.add_row({"admission rejects", std::to_string(load.rejects)});
  table.add_row({"probe p50 us", util::fmt_fixed(p50_us, 2)});
  table.add_row({"probe p99 us", util::fmt_fixed(p99_us, 2)});
  table.add_row({"epochs", std::to_string(load.epochs)});
  table.add_row({"epoch p50 us", util::fmt_fixed(epoch_p50_us, 1)});
  table.add_row({"epoch p99 us", util::fmt_fixed(epoch_p99_us, 1)});
  table.add_row({"starved epochs", std::to_string(load.starved)});
  table.add_row(
      {"checkpoint bytes", std::to_string(checkpoint.total_bytes)});
  table.add_row({"checkpoint critical-path us",
                 util::fmt_fixed(checkpoint.critical_path_us, 1)});
  table.add_row(
      {"checkpoint writer us", util::fmt_fixed(checkpoint.writer_us, 1)});
  table.add_row({"resume bit-identical", checkpoint.resume_ok ? "yes" : "NO"});
  table.emit(std::cout, cli.get_string("csv"));

  std::ofstream os(cli.get_string("json"));
  char buf[64];
  os << "{\n  \"schema\": \"mwr-bench-serve-v2\",\n"
     << "  \"params\": {\"campaigns\": " << load.campaigns
     << ", \"families\": " << kFamilies.size() << ", \"quantum\": " << quantum
     << ", \"workers\": " << workers << "},\n";
  std::snprintf(buf, sizeof buf, "%.2f", load.campaigns_per_sec);
  os << "  \"load\": {\"campaigns\": " << load.campaigns
     << ", \"completed\": " << load.completed
     << ", \"families\": " << kFamilies.size()
     << ", \"campaigns_per_sec\": " << buf
     << ", \"admission_rejects\": " << load.rejects << "},\n";
  std::snprintf(buf, sizeof buf, "%.3f", p50_us);
  os << "  \"probes\": {\"count\": " << load.probe_latency_us.size()
     << ", \"p50_us\": " << buf;
  std::snprintf(buf, sizeof buf, "%.3f", p99_us);
  os << ", \"p99_us\": " << buf << "},\n"
     << "  \"checkpoint\": {\"total_bytes\": " << checkpoint.total_bytes;
  std::snprintf(buf, sizeof buf, "%.1f", checkpoint.critical_path_us);
  os << ", \"critical_path_us\": " << buf;
  std::snprintf(buf, sizeof buf, "%.1f", checkpoint.writer_us);
  os << ", \"writer_us\": " << buf
     << ", \"resume_ok\": " << (checkpoint.resume_ok ? "true" : "false")
     << "},\n"
     << "  \"fairness\": {\"epochs\": " << load.epochs;
  std::snprintf(buf, sizeof buf, "%.1f", epoch_p50_us);
  os << ", \"epoch_p50_us\": " << buf;
  std::snprintf(buf, sizeof buf, "%.1f", epoch_p99_us);
  os << ", \"epoch_p99_us\": " << buf
     << ", \"starved_epochs\": " << load.starved << "}\n}\n";
  std::cout << "wrote " << cli.get_string("json") << "\n";
  return checkpoint.resume_ok && load.starved == 0 ? 0 : 1;
}
