// Reproduces Table II: mean (sd) update cycles until convergence for each
// MWU algorithm on each dataset of the standard suite.
//
// Paper shape to check (§IV-C):
//   - Standard's cycle count tracks instance size and is consistent across
//     the five Java datasets (same k=100, different value distributions);
//   - Distributed neither dominates nor is dominated by Standard, and its
//     super-linear population renders the largest instances intractable
//     ("—" cells);
//   - Slate is always the most expensive in iterations and does not always
//     converge within the 10000-iteration budget (">= 10000" cells).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_table2_convergence — Table II, update cycles to "
                "convergence");
  util::add_standard_bench_flags(cli);
  util::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto config = bench::eval_config_from(cli);
  const auto cells = costmodel::run_evaluation(config);

  const auto cap = static_cast<double>(config.max_iterations);
  bench::emit_grouped_table(
      cells, "Table II: update cycles until convergence (mean (sd))",
      [cap](const costmodel::EvalCell& cell) -> std::string {
        if (cell.intractable) return "-";
        if (cell.converged_runs == 0) return ">= " + util::fmt_fixed(cap, 0);
        return util::fmt_mean_sd(cell.iterations.mean(),
                                 cell.iterations.stddev(), 1);
      },
      cli.get_string("csv"));
  std::cout << "(" << config.seeds << " seeds/cell, max size "
            << config.max_size << ", " << timer.elapsed_seconds() << "s)\n";
  util::write_metrics_if_requested(cli);
  return 0;
}
