// Ablation D3 (DESIGN.md §5): the reward signal of MWRepair's online phase.
//
// Fig 6 literally rewards fitness non-decrease, but P(pass | x) is monotone
// decreasing in the combination size x, so the literal reward drives MWU to
// the smallest arm — abandoning the batch-efficiency that motivates the
// whole design.  The safe-density proxy (§III-B) rewards in proportion to
// x * P(pass | x) — the expected number of safe mutations a probe
// validates — whose mode tracks the repair-density optimum of Fig 4b.
//
// This bench runs MWRepair under both rewards with early termination
// disabled (so we can see where the bandit actually converges) and reports
// the preferred combination size against the scenario's calibrated optimum,
// plus repairs found per probe under normal (early-terminating) operation.
#include <iostream>

#include "apr/mwrepair.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_ablation_reward_proxy — D3: literal Fig 6 reward vs "
                "safe-density proxy");
  util::add_standard_bench_flags(cli);
  cli.add_int("trials", 5, "repair trials per configuration");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  util::Table table("Ablation D3: reward signal (arm the bandit prefers, and "
                    "repair cost)");
  table.set_header({"Scenario", "Reward", "preferred count",
                    "calibrated optimum", "repairs", "mean probes to repair"});

  const auto trials = static_cast<std::size_t>(cli.get_int("trials"));
  for (const auto& name :
       {"gzip-2009-08-16", "units", "Closure22"}) {
    const auto spec = datasets::scenario_by_name(name);
    // Learning dynamics are probed on a no-repair variant of the scenario
    // (the bug is made unreachable), so runs are never cut short by early
    // termination and the bandit's converged preference is visible.
    auto no_repair_spec = spec;
    no_repair_spec.min_repair_edits = 100000;
    const apr::ProgramModel learn_program(no_repair_spec);
    const apr::TestOracle learn_oracle(learn_program);
    const apr::ProgramModel repair_program(spec);
    const apr::TestOracle repair_oracle(repair_program);
    apr::PoolConfig pool_config;
    pool_config.target_size = 2000;
    pool_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto learn_pool =
        apr::MutationPool::precompute(learn_oracle, pool_config);
    const auto repair_pool =
        apr::MutationPool::precompute(repair_oracle, pool_config);

    for (const auto reward : {apr::RewardMode::kSafeDensityProxy,
                              apr::RewardMode::kFitnessNonDecrease}) {
      std::size_t repaired = 0;
      util::RunningStats probes;
      util::RunningStats preferred;
      for (std::size_t t = 0; t < trials; ++t) {
        apr::MwRepairConfig config;
        config.reward = reward;
        config.agents = 16;
        config.max_iterations = 400;
        config.seed = pool_config.seed ^ (t * 0x2545F4914F6CDD1DULL);
        const apr::MwRepair repair(config);
        const auto learned = repair.run(learn_oracle, learn_pool);
        preferred.add(static_cast<double>(learned.preferred_count));
        const auto outcome = repair.run(repair_oracle, repair_pool);
        if (outcome.repaired) {
          ++repaired;
          probes.add(static_cast<double>(outcome.probes));
        }
      }
      table.add_row(
          {name,
           reward == apr::RewardMode::kSafeDensityProxy ? "density proxy"
                                                        : "literal Fig 6",
           util::fmt_fixed(preferred.mean(), 0), std::to_string(spec.optimum),
           std::to_string(repaired) + "/" + std::to_string(trials),
           probes.count() ? util::fmt_fixed(probes.mean(), 0) : "-"});
    }
    table.add_separator();
  }
  table.emit(std::cout, cli.get_string("csv"));
  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
