// The §III-C amortization claim, quantified: repairing a *sequence* of
// bugs in one program with a single precomputed pool vs paying phase 1
// again for every bug.
//
// Shape to check: with the shared pool, per-bug cost collapses to
// (incremental maintenance + online search); the one-time precompute is
// spread across the campaign, so the amortized per-bug cost falls as the
// bug count grows, while the rebuild-every-time strategy pays the full
// phase-1 price per bug.
#include <iostream>

#include "apr/campaign.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_amortization — Section III-C: pool reuse across a "
                "program's bug sequence");
  util::add_standard_bench_flags(cli);
  cli.add_int("bugs", 6, "defects to repair in sequence");
  cli.add_string("scenario", "gzip-2009-08-16", "program to run the campaign on");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto spec = datasets::scenario_by_name(cli.get_string("scenario"));
  apr::CampaignConfig config;
  config.bugs = static_cast<std::size_t>(cli.get_int("bugs"));
  config.pool.target_size = 4000;
  config.pool.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.repair.agents = 64;
  config.repair.max_iterations = 150;
  config.repair.seed = config.pool.seed ^ 0xCAFE;

  const auto campaign = apr::run_campaign(spec, config);

  util::Table per_bug("Campaign on " + spec.name + ": per-bug ledger "
                      "(pool precomputed once: " +
                      std::to_string(campaign.precompute_runs) +
                      " suite runs, " +
                      std::to_string(campaign.initial_pool_size) +
                      " safe mutations)");
  per_bug.set_header({"bug", "repaired", "maintenance runs", "pool dropped",
                      "pool size", "online probes", "per-bug total"});
  for (const auto& bug : campaign.bugs) {
    per_bug.add_row({std::to_string(bug.bug_id),
                     bug.repaired ? "yes" : "no",
                     std::to_string(bug.maintenance_runs),
                     std::to_string(bug.pool_dropped),
                     std::to_string(bug.pool_size),
                     std::to_string(bug.online_probes),
                     std::to_string(bug.suite_runs())});
  }
  per_bug.emit(std::cout, cli.get_string("csv"));

  // The rebuild-every-time strategy pays phase 1 per bug.
  const double rebuild_per_bug =
      static_cast<double>(campaign.precompute_runs) +
      campaign.mean_bug_cost();
  std::cout << "repaired " << campaign.repaired() << "/"
            << campaign.bugs.size() << " bugs\n"
            << "amortized per-bug cost (shared pool): "
            << util::fmt_fixed(campaign.amortized_bug_cost(), 0)
            << " suite runs\n"
            << "per-bug cost rebuilding the pool for every bug: "
            << util::fmt_fixed(rebuild_per_bug, 0) << " suite runs ("
            << util::fmt_fixed(rebuild_per_bug /
                                   std::max(campaign.amortized_bug_cost(), 1.0),
                               1)
            << "x more)\n"
            << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
