// Transport microbench — message throughput and round-trip latency for the
// three Comm substrates: the in-process mailbox path, the shared-memory
// ring, and the Unix-domain-socket fabric.
//
// Two ranks, two measurements per backend:
//   burst      — rank 0 streams `burst` one-double messages to rank 1 and
//                waits for a single ack; msgs/sec over the whole exchange.
//   ping-pong  — `pingpong` request/reply round trips; per-trip wall
//                latencies, reported at p99.
// The multi-process backends place one rank per process, so every message
// actually crosses the fabric (encode → ring/socket → drain thread →
// mailbox); the in-process numbers are the mailbox-only reference the
// transports are compared against.
//
// Emits a table and JSON (--json, default BENCH_transport.json) with
// schema "mwr-bench-transport-v1"; CI's bench-smoke job gates the file
// against bench/BENCH_transport.baseline.json via .github/check_bench.py.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "parallel/comm.hpp"
#include "parallel/transport/process_world.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

constexpr int kTagBurst = 1;
constexpr int kTagAck = 2;
constexpr int kTagPing = 3;
constexpr int kTagPong = 4;

struct BackendResult {
  std::string name;
  double msgs_per_sec = 0.0;
  double p99_latency_us = 0.0;
};

// The two-rank benchmark body; identical for every backend.  Returns
// {msgs_per_sec, p99_latency_us} from rank 0, zeros from rank 1.
std::vector<double> bench_body(parallel::Comm& comm, std::size_t burst,
                               std::size_t pingpong) {
  if (comm.rank() == 0) {
    // --- burst throughput ---
    const util::WallTimer burst_timer;
    for (std::size_t i = 0; i < burst; ++i) {
      comm.send_untracked(1, kTagBurst, {static_cast<double>(i)});
    }
    (void)comm.recv(1, kTagAck);  // recv flushes, then blocks for the ack
    const double burst_seconds = burst_timer.elapsed_seconds();

    // --- ping-pong latency ---
    std::vector<double> latencies_us;
    latencies_us.reserve(pingpong);
    for (std::size_t i = 0; i < pingpong; ++i) {
      const util::WallTimer trip;
      comm.send_untracked(1, kTagPing, {});
      (void)comm.recv(1, kTagPong);
      latencies_us.push_back(trip.elapsed_seconds() * 1e6);
    }
    return {static_cast<double>(burst) / burst_seconds,
            util::percentile(latencies_us, 0.99)};
  }
  for (std::size_t i = 0; i < burst; ++i) (void)comm.recv(0, kTagBurst);
  comm.send_untracked(0, kTagAck, {});
  for (std::size_t i = 0; i < pingpong; ++i) {
    (void)comm.recv(0, kTagPing);
    comm.send_untracked(0, kTagPong, {});
  }
  return {0.0, 0.0};
}

BackendResult bench_in_process(std::size_t burst, std::size_t pingpong) {
  BackendResult result;
  result.name = "in_process";
  parallel::CommWorld world(2, parallel::RunPolicy::thread_per_rank());
  std::vector<double> rank0;
  world.run([&](parallel::Comm& comm) {
    auto r = bench_body(comm, burst, pingpong);
    if (comm.rank() == 0) rank0 = std::move(r);
  });
  result.msgs_per_sec = rank0.at(0);
  result.p99_latency_us = rank0.at(1);
  return result;
}

BackendResult bench_transport(parallel::transport::TransportKind kind,
                              std::size_t burst, std::size_t pingpong) {
  BackendResult result;
  result.name = to_string(kind);
  parallel::transport::ProcessWorldConfig config;
  config.global_ranks = 2;
  config.processes = 2;
  config.kind = kind;
  const auto outcome = parallel::transport::run_process_world(
      config, [burst, pingpong](parallel::CommWorld& world,
                                const parallel::WorldLayout& /*layout*/,
                                std::uint32_t* /*rank_state*/) {
        std::vector<double> rank0{0.0, 0.0};
        world.run([&](parallel::Comm& comm) {
          auto r = bench_body(comm, burst, pingpong);
          if (comm.rank() == 0) rank0 = std::move(r);
        });
        return rank0;
      });
  if (!outcome.ok) {
    std::cerr << "FATAL: " << result.name << " world failed: " << outcome.error
              << "\n";
    std::exit(1);
  }
  result.msgs_per_sec = outcome.values.at(0).at(0);
  result.p99_latency_us = outcome.values.at(0).at(1);
  return result;
}

void emit_json_section(std::ofstream& os, const BackendResult& result,
                       bool last) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f", result.msgs_per_sec);
  os << "  \"" << result.name << "\": {\"msgs_per_sec\": " << buf;
  std::snprintf(buf, sizeof buf, "%.2f", result.p99_latency_us);
  os << ", \"p99_latency_us\": " << buf << "}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "bench_transport — message throughput and round-trip latency across "
      "the in-process, shm-ring, and UDS Comm backends");
  cli.add_int("burst", 20000, "messages in the one-way throughput burst");
  cli.add_int("pingpong", 2000, "request/reply round trips for latency");
  cli.add_string("json", "BENCH_transport.json",
                 "machine-readable output path (gated by check_bench.py)");
  cli.add_string("csv", "", "also write the table as CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto burst = static_cast<std::size_t>(cli.get_int("burst"));
  const auto pingpong = static_cast<std::size_t>(cli.get_int("pingpong"));

  const std::vector<BackendResult> results = {
      bench_in_process(burst, pingpong),
      bench_transport(parallel::transport::TransportKind::kShmRing, burst,
                      pingpong),
      bench_transport(parallel::transport::TransportKind::kUds, burst,
                      pingpong),
  };

  util::Table table("Transport backends (" + std::to_string(burst) +
                    "-msg burst, " + std::to_string(pingpong) +
                    " round trips)");
  table.set_header({"backend", "msgs/s", "p99 RTT us"});
  for (const auto& result : results) {
    table.add_row({result.name, util::fmt_fixed(result.msgs_per_sec, 0),
                   util::fmt_fixed(result.p99_latency_us, 1)});
  }
  table.emit(std::cout, cli.get_string("csv"));

  std::ofstream os(cli.get_string("json"));
  os << "{\n  \"schema\": \"mwr-bench-transport-v1\",\n"
     << "  \"params\": {\"burst\": " << burst << ", \"pingpong\": " << pingpong
     << "},\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    emit_json_section(os, results[i], i + 1 == results.size());
  }
  os << "}\n";
  std::cout << "wrote " << cli.get_string("json") << "\n";
  return 0;
}
