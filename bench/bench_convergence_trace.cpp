// Convergence trajectories: the §IV-C convergence signal — the probability
// of the highest-weight option at each time step — traced per realization.
//
// Shape to check: Standard's p_max climbs monotonically toward 1 and
// crosses its 1 - 1e-5 criterion; Slate and Exp3 climb toward their gamma
// ceilings (1 - gamma + gamma/k) and can go no higher; Distributed's
// plurality share grows fast but stays noisy (finite population + random
// exploration), which is why the paper gives it the laxer 30% criterion.
#include <iostream>

#include "core/regret.hpp"
#include "core/slate_mwu.hpp"
#include "datasets/distributions.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_convergence_trace — Section IV-C: p_max per cycle");
  util::add_standard_bench_flags(cli);
  cli.add_int("options", 64, "option-set size k");
  cli.add_int("cycles", 2000, "horizon to trace");
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto k = static_cast<std::size_t>(cli.get_int("options"));
  const auto options = datasets::make_unimodal(k, 17);

  core::MwuConfig config;
  config.num_options = k;
  config.max_iterations = static_cast<std::size_t>(cli.get_int("cycles"));
  config.convergence_tol = 0.0;       // trace the full horizon...
  config.plurality_threshold = 1.1;   // ...for Distributed too

  const core::MwuKind kinds[] = {core::MwuKind::kStandard,
                                 core::MwuKind::kExp3, core::MwuKind::kSlate,
                                 core::MwuKind::kDistributed};
  std::vector<core::RegretTrace> traces;
  for (const auto kind : kinds) {
    traces.push_back(core::run_mwu_with_regret(
        kind, options, config,
        util::RngStream(static_cast<std::uint64_t>(cli.get_int("seed")))));
  }

  util::Table table("p_max trajectories on unimodal" + std::to_string(k) +
                    " (gamma ceiling for Slate/Exp3: " +
                    util::fmt_fixed(0.95 + 0.05 / static_cast<double>(k), 4) +
                    ")");
  table.set_header(
      {"cycle", "Standard", "Exp3", "Slate", "Distributed (plurality)"});
  for (const std::size_t cycle :
       {std::size_t{1}, std::size_t{5}, std::size_t{10}, std::size_t{25},
        std::size_t{50}, std::size_t{100}, std::size_t{250}, std::size_t{500},
        std::size_t{1000}, std::size_t{2000}}) {
    if (cycle > config.max_iterations) break;
    std::vector<std::string> row{std::to_string(cycle)};
    for (const auto& trace : traces) {
      const std::size_t index =
          std::min(cycle, trace.max_probability.size()) - 1;
      row.push_back(
          trace.max_probability.empty()
              ? "-"
              : util::fmt_fixed(trace.max_probability[index], 4));
    }
    table.add_row(std::move(row));
  }
  table.emit(std::cout, cli.get_string("csv"));

  std::cout << "criteria: Standard/Slate converge at p_max within 1e-5 of "
               "their maximum; Distributed at a 30% plurality (paper "
               "Section IV-C)\n"
            << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
