// Reproduces Table IV: cost in CPU-iterations — update cycles multiplied by
// the CPUs each cycle occupies (Standard: its n agents; Slate: the slate
// size, which gamma ties to k; Distributed: the whole population).
//
// Paper shape to check (§IV-F): Distributed often needs the fewest cycles
// but the most CPU-iterations (population grows super-linearly with k);
// Slate, prohibitive by cycle count, is sometimes more CPU-efficient than
// Distributed; the two largest Distributed cells are intractable.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_table4_cpu_cost — Table IV, CPU-iteration cost");
  util::add_standard_bench_flags(cli);
  util::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto config = bench::eval_config_from(cli);
  const auto cells = costmodel::run_evaluation(config);

  bench::emit_grouped_table(
      cells, "Table IV: CPU-iteration cost (mean)",
      [](const costmodel::EvalCell& cell) -> std::string {
        if (cell.intractable) return "-";
        return util::fmt_fixed(cell.cpu_iterations.mean(), 0) + " (n=" +
               std::to_string(cell.cpus_per_cycle) + ")";
      },
      cli.get_string("csv"));
  std::cout << "(" << config.seeds << " seeds/cell, max size "
            << config.max_size << ", " << timer.elapsed_seconds() << "s)\n";
  util::write_metrics_if_requested(cli);
  return 0;
}
