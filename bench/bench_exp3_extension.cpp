// The Exp3 extension variant vs the paper's three realizations, on the
// full standard suite layout (reduced sizes).
//
// Exp3 is the classic adversarial-bandit MWU (importance-weighted rewards,
// gamma-floored exploration).  Expectation: accuracy comparable to Slate
// (both keep the gamma floor), cycle counts between Standard and Slate —
// its importance weighting updates every sampled option like Standard, but
// the exploration floor caps the achievable concentration like Slate.
#include <iostream>

#include "costmodel/evaluation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("bench_exp3_extension — Exp3 vs the paper's three variants");
  util::add_standard_bench_flags(cli);
  if (!cli.parse(argc, argv)) return 0;

  util::WallTimer timer;
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  const auto max_size = static_cast<std::size_t>(cli.get_int("max-size"));
  const auto master_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto suite = datasets::standard_suite(master_seed, max_size);
  util::Table table("Exp3 extension vs the paper's variants: cycles | acc% "
                    "(" + std::to_string(seeds) + " seeds)");
  table.set_header({"Scenario", "Standard", "Exp3", "Slate", "Distributed"});

  std::string family;
  for (const auto& dataset : suite) {
    if (!family.empty() && dataset.family != family) table.add_separator();
    family = dataset.family;
    const core::BernoulliOracle oracle(dataset.options);
    core::MwuConfig config;
    config.num_options = dataset.options.size();

    std::vector<std::string> row{dataset.options.name()};
    for (const auto kind : {core::MwuKind::kStandard, core::MwuKind::kExp3,
                            core::MwuKind::kSlate,
                            core::MwuKind::kDistributed}) {
      if (kind == core::MwuKind::kDistributed &&
          core::distributed_population(config) > config.max_population) {
        row.push_back("-");
        continue;
      }
      util::RunningStats cycles;
      util::RunningStats accuracy;
      for (std::size_t s = 0; s < seeds; ++s) {
        const auto result = core::run_mwu(
            kind, oracle, config, util::RngStream(master_seed + 31 * s + 7));
        cycles.add(static_cast<double>(result.iterations));
        accuracy.add(dataset.options.accuracy_percent(result.best_option));
      }
      row.push_back(util::fmt_fixed(cycles.mean(), 0) + " | " +
                    util::fmt_fixed(accuracy.mean(), 1));
    }
    table.add_row(std::move(row));
  }
  table.emit(std::cout, cli.get_string("csv"));
  std::cout << "(" << timer.elapsed_seconds() << "s)\n";
  return 0;
}
