# Empty compiler generated dependencies file for mwr_util.
# This may be replaced when dependencies are built.
