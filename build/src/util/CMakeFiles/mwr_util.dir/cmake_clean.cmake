file(REMOVE_RECURSE
  "CMakeFiles/mwr_util.dir/cli.cpp.o"
  "CMakeFiles/mwr_util.dir/cli.cpp.o.d"
  "CMakeFiles/mwr_util.dir/log.cpp.o"
  "CMakeFiles/mwr_util.dir/log.cpp.o.d"
  "CMakeFiles/mwr_util.dir/rng.cpp.o"
  "CMakeFiles/mwr_util.dir/rng.cpp.o.d"
  "CMakeFiles/mwr_util.dir/stats.cpp.o"
  "CMakeFiles/mwr_util.dir/stats.cpp.o.d"
  "CMakeFiles/mwr_util.dir/table.cpp.o"
  "CMakeFiles/mwr_util.dir/table.cpp.o.d"
  "libmwr_util.a"
  "libmwr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
