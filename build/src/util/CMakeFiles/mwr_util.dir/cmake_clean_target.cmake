file(REMOVE_RECURSE
  "libmwr_util.a"
)
