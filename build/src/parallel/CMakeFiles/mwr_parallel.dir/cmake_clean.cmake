file(REMOVE_RECURSE
  "CMakeFiles/mwr_parallel.dir/barrier.cpp.o"
  "CMakeFiles/mwr_parallel.dir/barrier.cpp.o.d"
  "CMakeFiles/mwr_parallel.dir/comm.cpp.o"
  "CMakeFiles/mwr_parallel.dir/comm.cpp.o.d"
  "CMakeFiles/mwr_parallel.dir/congestion.cpp.o"
  "CMakeFiles/mwr_parallel.dir/congestion.cpp.o.d"
  "CMakeFiles/mwr_parallel.dir/mailbox.cpp.o"
  "CMakeFiles/mwr_parallel.dir/mailbox.cpp.o.d"
  "CMakeFiles/mwr_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/mwr_parallel.dir/thread_pool.cpp.o.d"
  "libmwr_parallel.a"
  "libmwr_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
