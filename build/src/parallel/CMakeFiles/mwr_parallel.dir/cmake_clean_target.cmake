file(REMOVE_RECURSE
  "libmwr_parallel.a"
)
