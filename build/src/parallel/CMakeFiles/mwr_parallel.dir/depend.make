# Empty dependencies file for mwr_parallel.
# This may be replaced when dependencies are built.
