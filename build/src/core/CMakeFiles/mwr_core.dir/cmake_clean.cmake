file(REMOVE_RECURSE
  "CMakeFiles/mwr_core.dir/distributed_mwu.cpp.o"
  "CMakeFiles/mwr_core.dir/distributed_mwu.cpp.o.d"
  "CMakeFiles/mwr_core.dir/exp3_mwu.cpp.o"
  "CMakeFiles/mwr_core.dir/exp3_mwu.cpp.o.d"
  "CMakeFiles/mwr_core.dir/mwu.cpp.o"
  "CMakeFiles/mwr_core.dir/mwu.cpp.o.d"
  "CMakeFiles/mwr_core.dir/option_set.cpp.o"
  "CMakeFiles/mwr_core.dir/option_set.cpp.o.d"
  "CMakeFiles/mwr_core.dir/parallel_driver.cpp.o"
  "CMakeFiles/mwr_core.dir/parallel_driver.cpp.o.d"
  "CMakeFiles/mwr_core.dir/regret.cpp.o"
  "CMakeFiles/mwr_core.dir/regret.cpp.o.d"
  "CMakeFiles/mwr_core.dir/serialization.cpp.o"
  "CMakeFiles/mwr_core.dir/serialization.cpp.o.d"
  "CMakeFiles/mwr_core.dir/slate_mwu.cpp.o"
  "CMakeFiles/mwr_core.dir/slate_mwu.cpp.o.d"
  "CMakeFiles/mwr_core.dir/slate_projection.cpp.o"
  "CMakeFiles/mwr_core.dir/slate_projection.cpp.o.d"
  "CMakeFiles/mwr_core.dir/standard_mwu.cpp.o"
  "CMakeFiles/mwr_core.dir/standard_mwu.cpp.o.d"
  "libmwr_core.a"
  "libmwr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
