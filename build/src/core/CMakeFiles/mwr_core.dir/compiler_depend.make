# Empty compiler generated dependencies file for mwr_core.
# This may be replaced when dependencies are built.
