file(REMOVE_RECURSE
  "libmwr_core.a"
)
