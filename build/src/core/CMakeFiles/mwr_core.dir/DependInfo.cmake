
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distributed_mwu.cpp" "src/core/CMakeFiles/mwr_core.dir/distributed_mwu.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/distributed_mwu.cpp.o.d"
  "/root/repo/src/core/exp3_mwu.cpp" "src/core/CMakeFiles/mwr_core.dir/exp3_mwu.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/exp3_mwu.cpp.o.d"
  "/root/repo/src/core/mwu.cpp" "src/core/CMakeFiles/mwr_core.dir/mwu.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/mwu.cpp.o.d"
  "/root/repo/src/core/option_set.cpp" "src/core/CMakeFiles/mwr_core.dir/option_set.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/option_set.cpp.o.d"
  "/root/repo/src/core/parallel_driver.cpp" "src/core/CMakeFiles/mwr_core.dir/parallel_driver.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/parallel_driver.cpp.o.d"
  "/root/repo/src/core/regret.cpp" "src/core/CMakeFiles/mwr_core.dir/regret.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/regret.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/mwr_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/serialization.cpp.o.d"
  "/root/repo/src/core/slate_mwu.cpp" "src/core/CMakeFiles/mwr_core.dir/slate_mwu.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/slate_mwu.cpp.o.d"
  "/root/repo/src/core/slate_projection.cpp" "src/core/CMakeFiles/mwr_core.dir/slate_projection.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/slate_projection.cpp.o.d"
  "/root/repo/src/core/standard_mwu.cpp" "src/core/CMakeFiles/mwr_core.dir/standard_mwu.cpp.o" "gcc" "src/core/CMakeFiles/mwr_core.dir/standard_mwu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mwr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mwr_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
