
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ae.cpp" "src/baselines/CMakeFiles/mwr_baselines.dir/ae.cpp.o" "gcc" "src/baselines/CMakeFiles/mwr_baselines.dir/ae.cpp.o.d"
  "/root/repo/src/baselines/comparison.cpp" "src/baselines/CMakeFiles/mwr_baselines.dir/comparison.cpp.o" "gcc" "src/baselines/CMakeFiles/mwr_baselines.dir/comparison.cpp.o.d"
  "/root/repo/src/baselines/genprog.cpp" "src/baselines/CMakeFiles/mwr_baselines.dir/genprog.cpp.o" "gcc" "src/baselines/CMakeFiles/mwr_baselines.dir/genprog.cpp.o.d"
  "/root/repo/src/baselines/island_ga.cpp" "src/baselines/CMakeFiles/mwr_baselines.dir/island_ga.cpp.o" "gcc" "src/baselines/CMakeFiles/mwr_baselines.dir/island_ga.cpp.o.d"
  "/root/repo/src/baselines/rsrepair.cpp" "src/baselines/CMakeFiles/mwr_baselines.dir/rsrepair.cpp.o" "gcc" "src/baselines/CMakeFiles/mwr_baselines.dir/rsrepair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apr/CMakeFiles/mwr_apr.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/mwr_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mwr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mwr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mwr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
