file(REMOVE_RECURSE
  "libmwr_baselines.a"
)
