file(REMOVE_RECURSE
  "CMakeFiles/mwr_baselines.dir/ae.cpp.o"
  "CMakeFiles/mwr_baselines.dir/ae.cpp.o.d"
  "CMakeFiles/mwr_baselines.dir/comparison.cpp.o"
  "CMakeFiles/mwr_baselines.dir/comparison.cpp.o.d"
  "CMakeFiles/mwr_baselines.dir/genprog.cpp.o"
  "CMakeFiles/mwr_baselines.dir/genprog.cpp.o.d"
  "CMakeFiles/mwr_baselines.dir/island_ga.cpp.o"
  "CMakeFiles/mwr_baselines.dir/island_ga.cpp.o.d"
  "CMakeFiles/mwr_baselines.dir/rsrepair.cpp.o"
  "CMakeFiles/mwr_baselines.dir/rsrepair.cpp.o.d"
  "libmwr_baselines.a"
  "libmwr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
