# Empty compiler generated dependencies file for mwr_baselines.
# This may be replaced when dependencies are built.
