file(REMOVE_RECURSE
  "CMakeFiles/mwr_costmodel.dir/asymptotics.cpp.o"
  "CMakeFiles/mwr_costmodel.dir/asymptotics.cpp.o.d"
  "CMakeFiles/mwr_costmodel.dir/cost_model.cpp.o"
  "CMakeFiles/mwr_costmodel.dir/cost_model.cpp.o.d"
  "CMakeFiles/mwr_costmodel.dir/evaluation.cpp.o"
  "CMakeFiles/mwr_costmodel.dir/evaluation.cpp.o.d"
  "libmwr_costmodel.a"
  "libmwr_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
