# Empty dependencies file for mwr_costmodel.
# This may be replaced when dependencies are built.
