file(REMOVE_RECURSE
  "libmwr_costmodel.a"
)
