file(REMOVE_RECURSE
  "CMakeFiles/mwr_datasets.dir/distributions.cpp.o"
  "CMakeFiles/mwr_datasets.dir/distributions.cpp.o.d"
  "CMakeFiles/mwr_datasets.dir/scenario.cpp.o"
  "CMakeFiles/mwr_datasets.dir/scenario.cpp.o.d"
  "CMakeFiles/mwr_datasets.dir/suite.cpp.o"
  "CMakeFiles/mwr_datasets.dir/suite.cpp.o.d"
  "libmwr_datasets.a"
  "libmwr_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
