# Empty compiler generated dependencies file for mwr_datasets.
# This may be replaced when dependencies are built.
