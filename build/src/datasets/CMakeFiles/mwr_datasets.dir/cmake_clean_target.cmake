file(REMOVE_RECURSE
  "libmwr_datasets.a"
)
