# Empty compiler generated dependencies file for mwr_apr.
# This may be replaced when dependencies are built.
