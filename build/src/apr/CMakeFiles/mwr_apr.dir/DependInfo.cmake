
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apr/campaign.cpp" "src/apr/CMakeFiles/mwr_apr.dir/campaign.cpp.o" "gcc" "src/apr/CMakeFiles/mwr_apr.dir/campaign.cpp.o.d"
  "/root/repo/src/apr/fault_localization.cpp" "src/apr/CMakeFiles/mwr_apr.dir/fault_localization.cpp.o" "gcc" "src/apr/CMakeFiles/mwr_apr.dir/fault_localization.cpp.o.d"
  "/root/repo/src/apr/mutation.cpp" "src/apr/CMakeFiles/mwr_apr.dir/mutation.cpp.o" "gcc" "src/apr/CMakeFiles/mwr_apr.dir/mutation.cpp.o.d"
  "/root/repo/src/apr/mutation_pool.cpp" "src/apr/CMakeFiles/mwr_apr.dir/mutation_pool.cpp.o" "gcc" "src/apr/CMakeFiles/mwr_apr.dir/mutation_pool.cpp.o.d"
  "/root/repo/src/apr/mwrepair.cpp" "src/apr/CMakeFiles/mwr_apr.dir/mwrepair.cpp.o" "gcc" "src/apr/CMakeFiles/mwr_apr.dir/mwrepair.cpp.o.d"
  "/root/repo/src/apr/program.cpp" "src/apr/CMakeFiles/mwr_apr.dir/program.cpp.o" "gcc" "src/apr/CMakeFiles/mwr_apr.dir/program.cpp.o.d"
  "/root/repo/src/apr/test_oracle.cpp" "src/apr/CMakeFiles/mwr_apr.dir/test_oracle.cpp.o" "gcc" "src/apr/CMakeFiles/mwr_apr.dir/test_oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mwr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/mwr_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mwr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mwr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
