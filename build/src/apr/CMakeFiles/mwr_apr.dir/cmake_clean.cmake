file(REMOVE_RECURSE
  "CMakeFiles/mwr_apr.dir/campaign.cpp.o"
  "CMakeFiles/mwr_apr.dir/campaign.cpp.o.d"
  "CMakeFiles/mwr_apr.dir/fault_localization.cpp.o"
  "CMakeFiles/mwr_apr.dir/fault_localization.cpp.o.d"
  "CMakeFiles/mwr_apr.dir/mutation.cpp.o"
  "CMakeFiles/mwr_apr.dir/mutation.cpp.o.d"
  "CMakeFiles/mwr_apr.dir/mutation_pool.cpp.o"
  "CMakeFiles/mwr_apr.dir/mutation_pool.cpp.o.d"
  "CMakeFiles/mwr_apr.dir/mwrepair.cpp.o"
  "CMakeFiles/mwr_apr.dir/mwrepair.cpp.o.d"
  "CMakeFiles/mwr_apr.dir/program.cpp.o"
  "CMakeFiles/mwr_apr.dir/program.cpp.o.d"
  "CMakeFiles/mwr_apr.dir/test_oracle.cpp.o"
  "CMakeFiles/mwr_apr.dir/test_oracle.cpp.o.d"
  "libmwr_apr.a"
  "libmwr_apr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_apr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
