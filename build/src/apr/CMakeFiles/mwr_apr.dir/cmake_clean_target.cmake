file(REMOVE_RECURSE
  "libmwr_apr.a"
)
