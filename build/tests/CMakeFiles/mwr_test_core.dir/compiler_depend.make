# Empty compiler generated dependencies file for mwr_test_core.
# This may be replaced when dependencies are built.
