
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_distributed_mwu.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_distributed_mwu.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_distributed_mwu.cpp.o.d"
  "/root/repo/tests/test_exp3.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_exp3.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_exp3.cpp.o.d"
  "/root/repo/tests/test_full_information.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_full_information.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_full_information.cpp.o.d"
  "/root/repo/tests/test_mwu_factory.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_mwu_factory.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_mwu_factory.cpp.o.d"
  "/root/repo/tests/test_mwu_properties.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_mwu_properties.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_mwu_properties.cpp.o.d"
  "/root/repo/tests/test_option_set.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_option_set.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_option_set.cpp.o.d"
  "/root/repo/tests/test_parallel_driver.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_parallel_driver.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_parallel_driver.cpp.o.d"
  "/root/repo/tests/test_regret.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_regret.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_regret.cpp.o.d"
  "/root/repo/tests/test_serialization.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_serialization.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_serialization.cpp.o.d"
  "/root/repo/tests/test_slate_mwu.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_slate_mwu.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_slate_mwu.cpp.o.d"
  "/root/repo/tests/test_slate_projection.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_slate_projection.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_slate_projection.cpp.o.d"
  "/root/repo/tests/test_standard_mwu.cpp" "tests/CMakeFiles/mwr_test_core.dir/test_standard_mwu.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_core.dir/test_standard_mwu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mwr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/mwr_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/apr/CMakeFiles/mwr_apr.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mwr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/mwr_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mwr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mwr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
