file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_core.dir/test_distributed_mwu.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_distributed_mwu.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_exp3.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_exp3.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_full_information.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_full_information.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_mwu_factory.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_mwu_factory.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_mwu_properties.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_mwu_properties.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_option_set.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_option_set.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_parallel_driver.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_parallel_driver.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_regret.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_regret.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_serialization.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_serialization.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_slate_mwu.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_slate_mwu.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_slate_projection.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_slate_projection.cpp.o.d"
  "CMakeFiles/mwr_test_core.dir/test_standard_mwu.cpp.o"
  "CMakeFiles/mwr_test_core.dir/test_standard_mwu.cpp.o.d"
  "mwr_test_core"
  "mwr_test_core.pdb"
  "mwr_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
