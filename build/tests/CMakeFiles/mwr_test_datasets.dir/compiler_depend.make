# Empty compiler generated dependencies file for mwr_test_datasets.
# This may be replaced when dependencies are built.
