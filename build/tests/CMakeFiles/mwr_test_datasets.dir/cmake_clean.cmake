file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_datasets.dir/test_distributions.cpp.o"
  "CMakeFiles/mwr_test_datasets.dir/test_distributions.cpp.o.d"
  "CMakeFiles/mwr_test_datasets.dir/test_scenario.cpp.o"
  "CMakeFiles/mwr_test_datasets.dir/test_scenario.cpp.o.d"
  "CMakeFiles/mwr_test_datasets.dir/test_suite_datasets.cpp.o"
  "CMakeFiles/mwr_test_datasets.dir/test_suite_datasets.cpp.o.d"
  "mwr_test_datasets"
  "mwr_test_datasets.pdb"
  "mwr_test_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
