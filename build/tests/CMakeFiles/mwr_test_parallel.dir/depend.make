# Empty dependencies file for mwr_test_parallel.
# This may be replaced when dependencies are built.
