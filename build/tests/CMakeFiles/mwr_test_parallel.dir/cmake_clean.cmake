file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_parallel.dir/test_barrier.cpp.o"
  "CMakeFiles/mwr_test_parallel.dir/test_barrier.cpp.o.d"
  "CMakeFiles/mwr_test_parallel.dir/test_comm.cpp.o"
  "CMakeFiles/mwr_test_parallel.dir/test_comm.cpp.o.d"
  "CMakeFiles/mwr_test_parallel.dir/test_comm_tree.cpp.o"
  "CMakeFiles/mwr_test_parallel.dir/test_comm_tree.cpp.o.d"
  "CMakeFiles/mwr_test_parallel.dir/test_congestion.cpp.o"
  "CMakeFiles/mwr_test_parallel.dir/test_congestion.cpp.o.d"
  "CMakeFiles/mwr_test_parallel.dir/test_mailbox.cpp.o"
  "CMakeFiles/mwr_test_parallel.dir/test_mailbox.cpp.o.d"
  "CMakeFiles/mwr_test_parallel.dir/test_thread_pool.cpp.o"
  "CMakeFiles/mwr_test_parallel.dir/test_thread_pool.cpp.o.d"
  "mwr_test_parallel"
  "mwr_test_parallel.pdb"
  "mwr_test_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
