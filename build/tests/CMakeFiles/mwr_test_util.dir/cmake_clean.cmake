file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_util.dir/test_cli.cpp.o"
  "CMakeFiles/mwr_test_util.dir/test_cli.cpp.o.d"
  "CMakeFiles/mwr_test_util.dir/test_log.cpp.o"
  "CMakeFiles/mwr_test_util.dir/test_log.cpp.o.d"
  "CMakeFiles/mwr_test_util.dir/test_rng.cpp.o"
  "CMakeFiles/mwr_test_util.dir/test_rng.cpp.o.d"
  "CMakeFiles/mwr_test_util.dir/test_stats.cpp.o"
  "CMakeFiles/mwr_test_util.dir/test_stats.cpp.o.d"
  "CMakeFiles/mwr_test_util.dir/test_table.cpp.o"
  "CMakeFiles/mwr_test_util.dir/test_table.cpp.o.d"
  "CMakeFiles/mwr_test_util.dir/test_timer.cpp.o"
  "CMakeFiles/mwr_test_util.dir/test_timer.cpp.o.d"
  "mwr_test_util"
  "mwr_test_util.pdb"
  "mwr_test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
