# Empty dependencies file for mwr_test_util.
# This may be replaced when dependencies are built.
