# Empty dependencies file for mwr_test_costmodel.
# This may be replaced when dependencies are built.
