file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_costmodel.dir/test_asymptotics.cpp.o"
  "CMakeFiles/mwr_test_costmodel.dir/test_asymptotics.cpp.o.d"
  "CMakeFiles/mwr_test_costmodel.dir/test_cost_model.cpp.o"
  "CMakeFiles/mwr_test_costmodel.dir/test_cost_model.cpp.o.d"
  "CMakeFiles/mwr_test_costmodel.dir/test_evaluation.cpp.o"
  "CMakeFiles/mwr_test_costmodel.dir/test_evaluation.cpp.o.d"
  "mwr_test_costmodel"
  "mwr_test_costmodel.pdb"
  "mwr_test_costmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
