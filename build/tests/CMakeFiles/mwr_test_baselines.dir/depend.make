# Empty dependencies file for mwr_test_baselines.
# This may be replaced when dependencies are built.
