file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_baselines.dir/test_baselines.cpp.o"
  "CMakeFiles/mwr_test_baselines.dir/test_baselines.cpp.o.d"
  "CMakeFiles/mwr_test_baselines.dir/test_comparison.cpp.o"
  "CMakeFiles/mwr_test_baselines.dir/test_comparison.cpp.o.d"
  "CMakeFiles/mwr_test_baselines.dir/test_island_ga.cpp.o"
  "CMakeFiles/mwr_test_baselines.dir/test_island_ga.cpp.o.d"
  "mwr_test_baselines"
  "mwr_test_baselines.pdb"
  "mwr_test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
