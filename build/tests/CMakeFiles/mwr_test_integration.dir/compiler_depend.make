# Empty compiler generated dependencies file for mwr_test_integration.
# This may be replaced when dependencies are built.
