file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_integration.dir/test_edge_cases.cpp.o"
  "CMakeFiles/mwr_test_integration.dir/test_edge_cases.cpp.o.d"
  "CMakeFiles/mwr_test_integration.dir/test_integration_repair.cpp.o"
  "CMakeFiles/mwr_test_integration.dir/test_integration_repair.cpp.o.d"
  "CMakeFiles/mwr_test_integration.dir/test_integration_tables.cpp.o"
  "CMakeFiles/mwr_test_integration.dir/test_integration_tables.cpp.o.d"
  "CMakeFiles/mwr_test_integration.dir/test_umbrella_and_parallel_eval.cpp.o"
  "CMakeFiles/mwr_test_integration.dir/test_umbrella_and_parallel_eval.cpp.o.d"
  "mwr_test_integration"
  "mwr_test_integration.pdb"
  "mwr_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
