
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_campaign.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_campaign.cpp.o.d"
  "/root/repo/tests/test_fault_localization.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_fault_localization.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_fault_localization.cpp.o.d"
  "/root/repo/tests/test_mutation.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_mutation.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_mutation.cpp.o.d"
  "/root/repo/tests/test_mutation_pool.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_mutation_pool.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_mutation_pool.cpp.o.d"
  "/root/repo/tests/test_mwrepair.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_mwrepair.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_mwrepair.cpp.o.d"
  "/root/repo/tests/test_oracle_properties.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_oracle_properties.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_oracle_properties.cpp.o.d"
  "/root/repo/tests/test_program_model.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_program_model.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_program_model.cpp.o.d"
  "/root/repo/tests/test_test_oracle.cpp" "tests/CMakeFiles/mwr_test_apr.dir/test_test_oracle.cpp.o" "gcc" "tests/CMakeFiles/mwr_test_apr.dir/test_test_oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mwr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/mwr_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/apr/CMakeFiles/mwr_apr.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mwr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/mwr_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mwr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mwr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
