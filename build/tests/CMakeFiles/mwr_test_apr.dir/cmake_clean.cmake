file(REMOVE_RECURSE
  "CMakeFiles/mwr_test_apr.dir/test_campaign.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_campaign.cpp.o.d"
  "CMakeFiles/mwr_test_apr.dir/test_fault_localization.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_fault_localization.cpp.o.d"
  "CMakeFiles/mwr_test_apr.dir/test_mutation.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_mutation.cpp.o.d"
  "CMakeFiles/mwr_test_apr.dir/test_mutation_pool.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_mutation_pool.cpp.o.d"
  "CMakeFiles/mwr_test_apr.dir/test_mwrepair.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_mwrepair.cpp.o.d"
  "CMakeFiles/mwr_test_apr.dir/test_oracle_properties.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_oracle_properties.cpp.o.d"
  "CMakeFiles/mwr_test_apr.dir/test_program_model.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_program_model.cpp.o.d"
  "CMakeFiles/mwr_test_apr.dir/test_test_oracle.cpp.o"
  "CMakeFiles/mwr_test_apr.dir/test_test_oracle.cpp.o.d"
  "mwr_test_apr"
  "mwr_test_apr.pdb"
  "mwr_test_apr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwr_test_apr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
