# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mwr_test_util[1]_include.cmake")
include("/root/repo/build/tests/mwr_test_parallel[1]_include.cmake")
include("/root/repo/build/tests/mwr_test_core[1]_include.cmake")
include("/root/repo/build/tests/mwr_test_datasets[1]_include.cmake")
include("/root/repo/build/tests/mwr_test_apr[1]_include.cmake")
include("/root/repo/build/tests/mwr_test_baselines[1]_include.cmake")
include("/root/repo/build/tests/mwr_test_costmodel[1]_include.cmake")
include("/root/repo/build/tests/mwr_test_integration[1]_include.cmake")
