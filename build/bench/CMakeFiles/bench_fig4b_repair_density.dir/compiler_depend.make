# Empty compiler generated dependencies file for bench_fig4b_repair_density.
# This may be replaced when dependencies are built.
