# Empty compiler generated dependencies file for bench_table4_cpu_cost.
# This may be replaced when dependencies are built.
