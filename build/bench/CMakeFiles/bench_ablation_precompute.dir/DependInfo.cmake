
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_precompute.cpp" "bench/CMakeFiles/bench_ablation_precompute.dir/bench_ablation_precompute.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_precompute.dir/bench_ablation_precompute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mwr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/mwr_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/apr/CMakeFiles/mwr_apr.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mwr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/mwr_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mwr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mwr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
