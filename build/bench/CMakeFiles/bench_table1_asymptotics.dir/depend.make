# Empty dependencies file for bench_table1_asymptotics.
# This may be replaced when dependencies are built.
