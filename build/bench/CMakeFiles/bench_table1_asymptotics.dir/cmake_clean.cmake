file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_asymptotics.dir/bench_table1_asymptotics.cpp.o"
  "CMakeFiles/bench_table1_asymptotics.dir/bench_table1_asymptotics.cpp.o.d"
  "bench_table1_asymptotics"
  "bench_table1_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
