file(REMOVE_RECURSE
  "CMakeFiles/bench_costmodel_recommendations.dir/bench_costmodel_recommendations.cpp.o"
  "CMakeFiles/bench_costmodel_recommendations.dir/bench_costmodel_recommendations.cpp.o.d"
  "bench_costmodel_recommendations"
  "bench_costmodel_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costmodel_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
