# Empty dependencies file for bench_costmodel_recommendations.
# This may be replaced when dependencies are built.
