# Empty dependencies file for bench_exp3_extension.
# This may be replaced when dependencies are built.
