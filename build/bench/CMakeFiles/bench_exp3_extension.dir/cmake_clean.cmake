file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_extension.dir/bench_exp3_extension.cpp.o"
  "CMakeFiles/bench_exp3_extension.dir/bench_exp3_extension.cpp.o.d"
  "bench_exp3_extension"
  "bench_exp3_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
