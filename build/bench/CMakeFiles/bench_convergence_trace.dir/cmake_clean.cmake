file(REMOVE_RECURSE
  "CMakeFiles/bench_convergence_trace.dir/bench_convergence_trace.cpp.o"
  "CMakeFiles/bench_convergence_trace.dir/bench_convergence_trace.cpp.o.d"
  "bench_convergence_trace"
  "bench_convergence_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
