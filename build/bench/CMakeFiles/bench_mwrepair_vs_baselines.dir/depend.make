# Empty dependencies file for bench_mwrepair_vs_baselines.
# This may be replaced when dependencies are built.
