file(REMOVE_RECURSE
  "CMakeFiles/bench_mwrepair_vs_baselines.dir/bench_mwrepair_vs_baselines.cpp.o"
  "CMakeFiles/bench_mwrepair_vs_baselines.dir/bench_mwrepair_vs_baselines.cpp.o.d"
  "bench_mwrepair_vs_baselines"
  "bench_mwrepair_vs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mwrepair_vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
