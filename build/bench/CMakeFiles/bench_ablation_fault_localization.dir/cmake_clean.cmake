file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fault_localization.dir/bench_ablation_fault_localization.cpp.o"
  "CMakeFiles/bench_ablation_fault_localization.dir/bench_ablation_fault_localization.cpp.o.d"
  "bench_ablation_fault_localization"
  "bench_ablation_fault_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fault_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
