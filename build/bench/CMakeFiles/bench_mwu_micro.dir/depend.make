# Empty dependencies file for bench_mwu_micro.
# This may be replaced when dependencies are built.
