file(REMOVE_RECURSE
  "CMakeFiles/bench_mwu_micro.dir/bench_mwu_micro.cpp.o"
  "CMakeFiles/bench_mwu_micro.dir/bench_mwu_micro.cpp.o.d"
  "bench_mwu_micro"
  "bench_mwu_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mwu_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
