# Empty compiler generated dependencies file for distributed_agents.
# This may be replaced when dependencies are built.
