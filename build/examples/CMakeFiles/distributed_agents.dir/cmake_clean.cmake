file(REMOVE_RECURSE
  "CMakeFiles/distributed_agents.dir/distributed_agents.cpp.o"
  "CMakeFiles/distributed_agents.dir/distributed_agents.cpp.o.d"
  "distributed_agents"
  "distributed_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
