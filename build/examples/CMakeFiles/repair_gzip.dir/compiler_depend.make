# Empty compiler generated dependencies file for repair_gzip.
# This may be replaced when dependencies are built.
