file(REMOVE_RECURSE
  "CMakeFiles/repair_gzip.dir/repair_gzip.cpp.o"
  "CMakeFiles/repair_gzip.dir/repair_gzip.cpp.o.d"
  "repair_gzip"
  "repair_gzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_gzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
