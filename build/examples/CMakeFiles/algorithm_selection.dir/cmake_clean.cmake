file(REMOVE_RECURSE
  "CMakeFiles/algorithm_selection.dir/algorithm_selection.cpp.o"
  "CMakeFiles/algorithm_selection.dir/algorithm_selection.cpp.o.d"
  "algorithm_selection"
  "algorithm_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
