# Empty compiler generated dependencies file for repair_tool.
# This may be replaced when dependencies are built.
