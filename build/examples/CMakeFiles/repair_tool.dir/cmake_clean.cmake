file(REMOVE_RECURSE
  "CMakeFiles/repair_tool.dir/repair_tool.cpp.o"
  "CMakeFiles/repair_tool.dir/repair_tool.cpp.o.d"
  "repair_tool"
  "repair_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
