// mwr_worldd — multi-process Distributed MWU world launcher.
//
// Forks N worker processes over the shm-ring or UDS transport and runs the
// Distributed MWU driver at population scales the CI machines cannot reach
// with OS threads (2^15 ranks and beyond: fibers inside each process,
// processes across the fabric).  The trajectory is bit-identical to the
// in-process reference at any process count, so this binary doubles as the
// congestion-bound validator: --check-congestion compares the measured
// per-cycle maximum load against the balls-into-bins O(ln n / ln ln n)
// bound (paper Table I) and exits nonzero on a violation.
//
// --repair swaps the synthetic Bernoulli options for the APR probe
// semantics (apr/arm_oracle.hpp): arms are mutation-combination sizes and
// each probe simulates one test-suite run against a precomputed
// safe-mutation pool — the repair search, distributed across processes.
//
// Exit codes: 0 success, 1 launch/worker failure, 2 congestion-bound
// violation.
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "apr/arm_oracle.hpp"
#include "apr/mutation_pool.hpp"
#include "apr/program.hpp"
#include "apr/test_oracle.hpp"
#include "core/option_set.hpp"
#include "core/parallel_driver.hpp"
#include "core/serialization.hpp"
#include "datasets/scenario.hpp"
#include "obs/registry.hpp"
#include "parallel/congestion.hpp"
#include "util/cli.hpp"

namespace {

// The measured per-cycle max is the balls-into-bins maximum over ~n
// requests into n bins; a generous constant keeps the gate meaningful
// (catching O(n)-style hotspots) without flaking on finite-n noise.
constexpr double kCongestionSlack = 4.0;

int run(int argc, char** argv) {
  using namespace mwr;

  util::Cli cli(
      "mwr_worldd: multi-process Distributed MWU world launcher "
      "(shm ring / UDS transports)");
  cli.add_int("ranks", 1 << 15, "global ranks (population size)");
  cli.add_int("processes", 2, "worker processes to fork");
  cli.add_string("backend", "shm", "transport: shm | uds");
  cli.add_int("options", 8, "options k (synthetic mode) / bandit arms cap");
  cli.add_int("max-iterations", 8, "MWU update cycles to run");
  cli.add_double("plurality", 0.95, "plurality stop threshold");
  cli.add_int("seed", 7, "master seed");
  cli.add_double("timeout", 600.0, "launcher watchdog seconds");
  cli.add_string("metrics-out", "", "write a JSON run/metrics snapshot here");
  cli.add_string("state-out", "",
                 "write the final popularity vector as one versioned wire "
                 "frame (core/serialization message codec)");
  cli.add_flag("check-congestion",
               "fail (exit 2) unless the mean per-cycle max load is within "
               "the balls-into-bins bound");
  cli.add_flag("repair",
               "APR mode: arms are mutation-combination sizes probed "
               "against a precomputed safe-mutation pool");
  if (!cli.parse(argc, argv)) return 0;

  const auto ranks = static_cast<std::size_t>(cli.get_int("ranks"));
  const auto processes = static_cast<std::size_t>(cli.get_int("processes"));
  const auto options = static_cast<std::size_t>(cli.get_int("options"));

  core::MultiprocessOptions mp;
  mp.processes = processes;
  mp.kind = parallel::transport::parse_transport_kind(
      cli.get_string("backend"));
  mp.timeout_seconds = cli.get_double("timeout");

  core::MwuConfig config;
  config.num_options = options;
  config.max_iterations =
      static_cast<std::size_t>(cli.get_int("max-iterations"));
  config.plurality_threshold = cli.get_double("plurality");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  core::ParallelMwuResult result;
  std::uint64_t suite_runs = 0;
  if (cli.get_flag("repair")) {
    datasets::ScenarioSpec spec;
    spec.name = "worldd-repair";
    spec.language = "C";
    spec.options = options;
    spec.seed = seed;
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    apr::PoolConfig pool_config;
    pool_config.target_size = 200;
    pool_config.seed = seed;
    const auto pool = apr::MutationPool::precompute(oracle, pool_config);
    apr::MwRepairConfig repair_config;
    repair_config.arms = options;
    repair_config.max_count = std::max<std::size_t>(options, 64);
    repair_config.seed = seed;
    // Priming happens here, pre-fork: workers inherit the warmed oracle
    // cache through copy-on-write instead of re-deriving semantics.
    const apr::ArmProbeOracle arm_oracle(oracle, pool, repair_config);
    config.num_options = arm_oracle.num_options();
    result = core::run_distributed_spmd_multiprocess(arm_oracle, config, seed,
                                                     ranks, mp);
    suite_runs = result.result.evaluations;
  } else {
    // Synthetic mode: one clearly-best option among near ties, so short
    // runs still exercise adoption dynamics without instant convergence.
    std::vector<double> values(options, 0.45);
    if (options > 1) values[options / 2] = 0.6;
    const core::OptionSet option_set("worldd", values);
    const core::BernoulliOracle oracle(option_set);
    result = core::run_distributed_spmd_multiprocess(oracle, config, seed,
                                                     ranks, mp);
  }

  const double bound = parallel::balls_into_bins_bound(ranks);
  const auto& congestion = result.max_congestion_per_cycle;
  std::printf("mwr_worldd: backend=%s ranks=%zu processes=%zu options=%zu\n",
              cli.get_string("backend").c_str(), ranks, processes,
              config.num_options);
  std::printf("  cycles=%zu converged=%d best=%zu evaluations=%llu\n",
              result.result.iterations,
              static_cast<int>(result.result.converged),
              result.result.best_option,
              static_cast<unsigned long long>(result.result.evaluations));
  std::printf("  tracked messages=%llu trajectory_hash=%.0f\n",
              static_cast<unsigned long long>(result.total_messages),
              result.trajectory_hash);
  std::printf(
      "  congestion per cycle: mean=%.3f max=%.0f cycles=%zu "
      "(ln n / ln ln n bound=%.3f)\n",
      congestion.mean(), congestion.max(), congestion.count(), bound);
  if (suite_runs != 0)
    std::printf("  suite runs (repair probes)=%llu\n",
                static_cast<unsigned long long>(suite_runs));

  if (!cli.get_string("metrics-out").empty()) {
    // Run summary first (the fields CI greps), then the parent process's
    // metrics registry snapshot.
    std::ofstream out(cli.get_string("metrics-out"));
    if (!out) throw std::runtime_error("cannot open --metrics-out path");
    out << "{\n  \"run\": {\n"
        << "    \"backend\": \"" << cli.get_string("backend") << "\",\n"
        << "    \"ranks\": " << ranks << ",\n"
        << "    \"processes\": " << processes << ",\n"
        << "    \"cycles\": " << result.result.iterations << ",\n"
        << "    \"converged\": " << (result.result.converged ? "true" : "false")
        << ",\n"
        << "    \"tracked_messages\": " << result.total_messages << ",\n"
        << "    \"trajectory_hash\": " << result.trajectory_hash << ",\n"
        << "    \"congestion_mean\": " << congestion.mean() << ",\n"
        << "    \"congestion_max\": " << congestion.max() << ",\n"
        << "    \"balls_into_bins_bound\": " << bound << "\n  },\n"
        << "  \"launcher_metrics\": "
        << mwr::obs::MetricsRegistry::global().to_json_string() << "\n}\n";
  }

  if (!cli.get_string("state-out").empty()) {
    // The final popularity vector as one versioned wire frame — the same
    // bytes the transports move, reusable as a cross-run checkpoint.
    parallel::Message state;
    state.source = 0;
    state.tag = 0;
    state.payload = result.result.probabilities;
    const auto bytes = core::serialize_message(state, /*dest_rank=*/0,
                                               /*tracked=*/false);
    std::ofstream out(cli.get_string("state-out"), std::ios::binary);
    if (!out) throw std::runtime_error("cannot open --state-out path");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  if (cli.get_flag("check-congestion")) {
    if (congestion.count() == 0 ||
        congestion.mean() > kCongestionSlack * bound) {
      std::printf(
          "mwr_worldd: CONGESTION VIOLATION: mean %.3f exceeds %.1f x "
          "bound %.3f\n",
          congestion.mean(), kCongestionSlack, bound);
      return 2;
    }
    std::printf("mwr_worldd: congestion within %.1f x bound\n",
                kCongestionSlack);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mwr_worldd: %s\n", e.what());
    return 1;
  }
}
