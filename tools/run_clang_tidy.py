#!/usr/bin/env python3
"""Ratcheted clang-tidy runner.

Runs clang-tidy (check set: .clang-tidy at the repo root) over every
translation unit in compile_commands.json that lives under src/, bench/,
examples/, or tests/, aggregates findings per check, and compares the
counts against tools/tidy_baseline.json:

  * a check whose count EXCEEDS its baseline entry fails the run — new
    findings are never allowed in;
  * a check whose count DROPPED is reported so the baseline can be
    ratcheted down (--update-baseline rewrites it);
  * --update-baseline refuses to *raise* any count unless
    --allow-increase is also given (which should only survive review
    with a written justification).

The per-check (rather than per-file) granularity means moving code
between files never trips the gate; only genuinely new findings do.

Requires clang-tidy >= 14 on PATH (or --clang-tidy) and a build tree
configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON.

Exit status: 0 clean/ratchet-held, 1 new findings, 2 environment error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "tools" / "tidy_baseline.json"
SCAN_PREFIXES = ("src/", "bench/", "examples/", "tests/")
FINDING_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): .* \[(?P<checks>[^\]]+)\]$"
)


def load_baseline(path):
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != "mwr-tidy-baseline-v1":
        raise ValueError(f"unrecognized baseline schema in {path}")
    return data


def translation_units(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        raise FileNotFoundError(
            f"{db_path} not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
        )
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    files = []
    for entry in db:
        path = Path(entry["file"])
        try:
            rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            continue
        if rel.startswith(SCAN_PREFIXES):
            files.append(path.resolve())
    return sorted(set(files))


def run_one(clang_tidy, build_dir, path):
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        try:
            rel = Path(m.group("path")).resolve().relative_to(REPO_ROOT)
        except ValueError:
            continue  # finding in a system/third-party header
        for check in m.group("checks").split(","):
            findings.append((rel.as_posix(), int(m.group("line")), check))
    # clang-tidy exits non-zero on hard errors (missing headers etc.) even
    # with zero findings; surface those instead of silently passing.
    hard_error = proc.returncode != 0 and not findings
    return findings, proc.stderr if hard_error else ""


def main(argv=None):
    parser = argparse.ArgumentParser(prog="run_clang_tidy")
    parser.add_argument(
        "--build-dir", type=Path, default=REPO_ROOT / "build",
        help="build tree with compile_commands.json (default: build/)",
    )
    parser.add_argument(
        "--clang-tidy", default=os.environ.get("CLANG_TIDY", "clang-tidy"),
        help="clang-tidy binary (default: $CLANG_TIDY or PATH lookup)",
    )
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 4,
        help="parallel clang-tidy processes",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite tools/tidy_baseline.json with the observed counts "
        "(only decreases unless --allow-increase)",
    )
    parser.add_argument(
        "--allow-increase", action="store_true",
        help="permit --update-baseline to raise counts (needs review "
        "justification)",
    )
    args = parser.parse_args(argv)

    if shutil.which(args.clang_tidy) is None:
        print(
            f"run_clang_tidy: error: '{args.clang_tidy}' not on PATH",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_baseline(BASELINE_PATH)
        files = translation_units(args.build_dir)
    except (FileNotFoundError, ValueError) as err:
        print(f"run_clang_tidy: error: {err}", file=sys.stderr)
        return 2
    if not files:
        print("run_clang_tidy: error: no project TUs in the compilation "
              "database", file=sys.stderr)
        return 2

    all_findings = []
    hard_errors = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = {
            pool.submit(run_one, args.clang_tidy, args.build_dir, f): f
            for f in files
        }
        for future in concurrent.futures.as_completed(futures):
            findings, err = future.result()
            all_findings.extend(findings)
            if err:
                hard_errors.append((futures[future], err))

    if hard_errors:
        for path, err in hard_errors:
            print(f"run_clang_tidy: hard error on {path}:\n{err}",
                  file=sys.stderr)
        return 2

    # Deduplicate: the same header finding surfaces once per includer.
    unique = sorted(set(all_findings))
    counts = Counter(check for _, _, check in unique)
    base_counts = baseline["counts"]

    regressions = {}
    improvements = {}
    for check, count in sorted(counts.items()):
        allowed = base_counts.get(check, 0)
        if count > allowed:
            regressions[check] = (allowed, count)
    for check, allowed in sorted(base_counts.items()):
        count = counts.get(check, 0)
        if count < allowed:
            improvements[check] = (allowed, count)

    for rel, line, check in unique:
        print(f"{rel}:{line}: [{check}]")
    print(
        f"run_clang_tidy: {len(unique)} finding(s) across "
        f"{len(files)} TU(s); baseline allows "
        f"{sum(base_counts.values())}"
    )

    if improvements and not args.update_baseline:
        print("run_clang_tidy: baseline is stale (counts dropped) — "
              "ratchet it down with --update-baseline:")
        for check, (allowed, count) in improvements.items():
            print(f"  {check}: {allowed} -> {count}")

    if args.update_baseline:
        increases = {
            c: (base_counts.get(c, 0), n)
            for c, n in counts.items()
            if n > base_counts.get(c, 0)
        }
        if increases and not args.allow_increase:
            print("run_clang_tidy: refusing to raise the baseline "
                  "(--allow-increase to override):", file=sys.stderr)
            for check, (allowed, count) in sorted(increases.items()):
                print(f"  {check}: {allowed} -> {count}", file=sys.stderr)
            return 1
        baseline["counts"] = {c: n for c, n in sorted(counts.items()) if n}
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"run_clang_tidy: baseline rewritten -> {BASELINE_PATH}")
        return 0

    if regressions:
        print("run_clang_tidy: NEW findings over baseline:", file=sys.stderr)
        for check, (allowed, count) in sorted(regressions.items()):
            print(f"  {check}: baseline {allowed}, now {count}",
                  file=sys.stderr)
        return 1
    print("run_clang_tidy: ratchet held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
