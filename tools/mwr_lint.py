#!/usr/bin/env python3
"""mwr-lint: determinism and lock-discipline linter for the MWR tree.

A libclang-free token pass over C++ sources.  Comments and string
literals are masked out (line numbers preserved) before rules run, so
banned identifiers may be *discussed* freely in prose.

Rule domains
------------
Bit-identity domains (src/core, src/apr, src/costmodel, src/datasets)
must produce byte-identical results for a fixed seed regardless of
thread count or host, so anything that injects ambient entropy is
banned there:

  nondeterministic-seed   std::random_device, rand()/srand()
  wall-clock              std::chrono::{system,steady,high_resolution}_clock,
                          time(...) — clocks must never feed seeds/weights
  thread-id               std::this_thread::get_id()
  pointer-hash            std::hash<T*>, reinterpret_cast<[u]intptr_t>
                          (address-space layout leaking into hashes)
  unordered-iteration     range-for / .begin() over a std::unordered_*
                          variable declared in the same file — iteration
                          order is load-factor and libstdc++ dependent

Everywhere under src/ (minus each rule's own whitelist):

  naked-mutex             std::mutex / lock_guard / unique_lock /
                          scoped_lock / condition_variable — use the
                          annotated util::Mutex / util::MutexLock /
                          util::CondVar wrappers (src/util/sync.hpp) so
                          Clang thread-safety analysis sees every lock
  raw-ipc                 naked OS IPC primitives (mmap, shm_open, futex,
                          socket/bind/connect, fork/waitpid, ...) outside
                          src/parallel/transport/ — every process boundary
                          must go through the Transport abstraction so the
                          wire format, abort propagation, and congestion
                          accounting stay in one place
  raw-simd                direct SIMD intrinsics (immintrin.h, _mm/_mm256/
                          _mm512 calls, __m128/256/512 types, target
                          attributes) outside src/util/simd/ — every
                          vector loop must live behind the weight-kernel
                          dispatch seam so the scalar/AVX2 bit-identity
                          contract stays auditable in one place

Whitelist entries ending in "/" exempt a whole directory subtree; other
entries exempt exactly one file.

Suppressions
------------
    // mwr-lint: allow(<rule>) reason=<non-empty text>

placed on the offending line or on the line directly above it.  A
suppression without a reason, or naming an unknown rule, is itself an
error.  Used suppressions are counted and reported in the summary so
reviewers can watch the number.

Known limitation: unordered-iteration tracks only variables whose
declaration spells std::unordered_* in the same file; a type alias
evades it.  Keep unordered containers keyed-only in bit-identity code.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from pathlib import Path

BIT_IDENTITY_DOMAINS = ("src/core", "src/apr", "src/costmodel", "src/datasets")
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc", ".cxx", ".hh"}

SUPPRESS_RE = re.compile(
    r"//\s*mwr-lint:\s*allow\(([a-z-]+)\)(?:\s+reason=(\S.*))?"
)


class Rule:
    def __init__(self, name, message, patterns, bit_identity_only,
                 whitelist=()):
        self.name = name
        self.message = message
        self.patterns = [re.compile(p) for p in patterns]
        self.bit_identity_only = bit_identity_only
        # Paths exempt from this rule: "dir/" prefixes or exact files.
        self.whitelist = tuple(whitelist)

    def whitelists(self, rel):
        return any(
            rel.startswith(entry) if entry.endswith("/") else rel == entry
            for entry in self.whitelist
        )


RULES = [
    Rule(
        "nondeterministic-seed",
        "ambient entropy source in a bit-identity domain; seed from "
        "util::RngStream / the run config instead",
        [r"std\s*::\s*random_device", r"\bsrand\s*\(", r"\brand\s*\("],
        bit_identity_only=True,
    ),
    Rule(
        "wall-clock",
        "wall/steady clock read in a bit-identity domain; clocks must not "
        "feed seeds, weights, or serialized output",
        [
            r"std\s*::\s*chrono\s*::\s*system_clock",
            r"std\s*::\s*chrono\s*::\s*steady_clock",
            r"std\s*::\s*chrono\s*::\s*high_resolution_clock",
            r"\btime\s*\(",
            r"\bclock\s*\(\s*\)",
            r"\bgettimeofday\s*\(",
        ],
        bit_identity_only=True,
    ),
    Rule(
        "thread-id",
        "thread identity in a bit-identity domain; pass an explicit rank "
        "instead of std::this_thread::get_id()",
        [r"std\s*::\s*this_thread\s*::\s*get_id"],
        bit_identity_only=True,
    ),
    Rule(
        "pointer-hash",
        "pointer value flowing into a hash/integer in a bit-identity "
        "domain; addresses differ across runs (ASLR) — hash stable ids",
        [
            r"std\s*::\s*hash\s*<[^>]*\*",
            r"reinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t",
        ],
        bit_identity_only=True,
    ),
    Rule(
        "naked-mutex",
        "raw std synchronization primitive; use util::Mutex / "
        "util::MutexLock / util::CondVar (src/util/sync.hpp) so Clang "
        "thread-safety analysis sees the lock",
        [
            r"std\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b",
            r"std\s*::\s*lock_guard\b",
            r"std\s*::\s*unique_lock\b",
            r"std\s*::\s*scoped_lock\b",
            r"std\s*::\s*condition_variable(?:_any)?\b",
        ],
        bit_identity_only=False,
        # The annotated wrappers are the one place allowed to touch std
        # primitives.
        whitelist=("src/util/sync.hpp",),
    ),
    Rule(
        "raw-ipc",
        "naked OS IPC/process primitive outside the transport layer; route "
        "process boundaries through parallel::transport (Transport / "
        "run_process_world) so wire format, abort propagation, and "
        "congestion accounting stay centralized",
        [
            r"\bmmap\s*\(",
            r"\bmunmap\s*\(",
            r"\bshm_open\s*\(",
            r"\bshm_unlink\s*\(",
            r"\bmemfd_create\s*\(",
            r"\bftruncate\s*\(",
            r"\bsocket\s*\(",
            r"\bsocketpair\s*\(",
            r"\bbind\s*\(",
            r"\blisten\s*\(",
            r"\baccept\s*\(",
            r"\bconnect\s*\(",
            r"\bsendmsg\s*\(",
            r"\brecvmsg\s*\(",
            # fd read/write only when explicitly global-qualified; a bare
            # read(/write( would drown in method-call false positives.
            r"::\s*read\s*\(",
            r"::\s*write\s*\(",
            r"\bsendto\s*\(",
            r"\brecvfrom\s*\(",
            r"\bSYS_futex\b",
            r"\bfutex\s*\(",
            r"\bv?fork\s*\(",
            r"\bwaitpid\s*\(",
            r"\bkill\s*\(",
            r"\b_exit\s*\(",
        ],
        bit_identity_only=False,
        # The fabric itself (rings, sockets, fork-based launcher) plus the
        # campaign server's two audited OS seams: the control socket, and
        # the checkpoint codec's durable-write path (tmp + ::write + fsync
        # + rename — durability needs raw fds; iostreams cannot fsync).
        # The rest of the subsystem (payload codecs, scheduler, the server
        # itself) must stay IPC-free.
        whitelist=(
            "src/parallel/transport/",
            "src/serve/control_socket.cpp",
            "src/serve/checkpoint.cpp",
        ),
    ),
    Rule(
        "raw-simd",
        "direct SIMD intrinsics outside the kernel layer; route vector "
        "loops through util::simd (src/util/simd/weight_kernels.hpp) so "
        "the scalar/AVX2 bit-identity contract stays auditable in one "
        "place",
        [
            r"[<\"]\s*(?:x|e|w|z|i)mmintrin\.h\s*[>\"]",
            r"[<\"]\s*immintrin\.h\s*[>\"]",
            r"\b_mm(?:256|512)?_[a-z0-9_]+\s*\(",
            r"\b__m(?:128|256|512)[id]?\b",
            r"__attribute__\s*\(\s*\(\s*target\b",
            r"\[\[\s*gnu\s*::\s*target\b",
        ],
        bit_identity_only=False,
        # The dispatch seam itself: the one directory allowed to spell
        # intrinsics.
        whitelist=("src/util/simd/",),
    ),
]
RULE_NAMES = {rule.name for rule in RULES} | {"unordered-iteration"}

UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
)
UNORDERED_ITER_MESSAGE = (
    "iteration over an unordered container in a bit-identity domain; "
    "iteration order is implementation-defined — keep the container "
    "keyed-only or switch to std::map/std::vector"
)


def mask_comments_and_strings(text):
    """Replaces comment/string contents with spaces, preserving newlines."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHR, RAW = range(6)
    state = NORMAL
    raw_close = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK
                out.append("  ")
                i += 2
            elif c == '"':
                # R"delim( ... )delim"
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i - 1 : i + 18])
                if i > 0 and text[i - 1] == "R" and m:
                    raw_close = ")" + m.group(1) + '"'
                    state = RAW
                    out.append('"')
                    i += 1 + len(m.group(1)) + 1
                    out.append(" " * (len(m.group(1)) + 1))
                else:
                    state = STR
                    out.append('"')
                    i += 1
            elif c == "'":
                state = CHR
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            elif c == "\\" and nxt == "\n":  # line-continued comment
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in (STR, CHR):
            quote = '"' if state == STR else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # RAW
            if text.startswith(raw_close, i):
                state = NORMAL
                out.append(" " * (len(raw_close) - 1) + '"')
                i += len(raw_close)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def find_unordered_names(masked):
    """Names of variables declared with a std::unordered_* type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(masked):
        depth, j = 1, m.end()
        while j < len(masked) and depth:
            if masked[j] == "<":
                depth += 1
            elif masked[j] == ">":
                depth -= 1
            j += 1
        if depth:
            continue
        tail = masked[j : j + 160]
        decl = re.match(r"\s*(?:&|\*)?\s*([A-Za-z_]\w*)", tail)
        if decl and decl.group(1) not in ("const",):
            names.add(decl.group(1))
    return names


def collect_suppressions(raw_lines, rel, findings):
    """Maps line number -> set of allowed rules; validates the comments."""
    allowed = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2)
        if rule not in RULE_NAMES:
            findings.append(
                (rel, lineno, "bad-suppression",
                 f"suppression names unknown rule '{rule}'")
            )
            continue
        if not reason or not reason.strip():
            findings.append(
                (rel, lineno, "bad-suppression",
                 f"suppression of '{rule}' has no reason= justification")
            )
            continue
        # Applies to its own line and, for standalone comments, the next.
        for covered in (lineno, lineno + 1):
            allowed.setdefault(covered, set()).add(rule)
    return allowed


def lint_file(path, rel, in_bit_identity):
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    findings = []
    allowed = collect_suppressions(raw_lines, rel, findings)
    masked = mask_comments_and_strings(raw)
    masked_lines = masked.splitlines()

    raw_findings = []
    for rule in RULES:
        if rule.bit_identity_only and not in_bit_identity:
            continue
        if rule.whitelists(rel):
            continue
        for lineno, line in enumerate(masked_lines, start=1):
            for pat in rule.patterns:
                if pat.search(line):
                    raw_findings.append((lineno, rule.name, rule.message))
                    break

    if in_bit_identity:
        names = find_unordered_names(masked)
        if names:
            alt = "|".join(re.escape(n) for n in sorted(names))
            iter_pats = [
                re.compile(r"for\s*\([^;)]*:\s*(?:" + alt + r")\b"),
                re.compile(r"\b(?:" + alt + r")\s*\.\s*c?r?begin\s*\("),
            ]
            for lineno, line in enumerate(masked_lines, start=1):
                for pat in iter_pats:
                    if pat.search(line):
                        raw_findings.append(
                            (lineno, "unordered-iteration",
                             UNORDERED_ITER_MESSAGE)
                        )
                        break

    used_suppressions = 0
    for lineno, rule_name, message in sorted(set(raw_findings)):
        if rule_name in allowed.get(lineno, ()):
            used_suppressions += 1
            continue
        findings.append((rel, lineno, rule_name, message))
    return findings, used_suppressions


def iter_sources(root, scan_paths):
    for scan in scan_paths:
        base = root / scan
        if base.is_file():
            yield base
            continue
        if not base.is_dir():
            raise FileNotFoundError(f"scan path does not exist: {base}")
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="mwr_lint", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="tree root that src/-relative domains resolve against "
        "(default: the repository checkout containing this script)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="paths (relative to --root) to scan; default: src",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULE_NAMES):
            print(name)
        return 0

    root = args.root.resolve()
    started = time.monotonic()
    all_findings = []
    total_suppressions = 0
    files_scanned = 0
    try:
        sources = list(iter_sources(root, args.paths or ["src"]))
    except FileNotFoundError as err:
        print(f"mwr-lint: error: {err}", file=sys.stderr)
        return 2

    for path in sources:
        rel = path.relative_to(root).as_posix()
        in_bit_identity = any(
            rel == d or rel.startswith(d + "/") for d in BIT_IDENTITY_DOMAINS
        )
        findings, used = lint_file(path, rel, in_bit_identity)
        all_findings.extend(findings)
        total_suppressions += used
        files_scanned += 1

    for rel, lineno, rule, message in all_findings:
        print(f"{rel}:{lineno}: error: [{rule}] {message}")
    elapsed = time.monotonic() - started
    print(
        f"mwr-lint: {len(all_findings)} finding(s), "
        f"{total_suppressions} suppression(s) in {files_scanned} file(s) "
        f"({elapsed:.2f}s)"
    )
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
