// mwr_served — the repair-as-a-service campaign daemon.
//
// Listens on a Unix-domain control socket for MWRW control frames
// (serve/control.hpp): clients submit campaigns, poll status, fetch
// results, request checkpoints, and ask for a drain-and-exit shutdown.
// Resident campaigns advance between control-plane services, one
// deficit-round-robin epoch at a time, as fibers on the bounded
// superstep engine — thousands of tenants, a fixed worker pool, and
// no tenant starved (serve/scheduler.hpp).
//
// Durability: with --checkpoint-dir the daemon persists every resident
// campaign's snapshot (each --checkpoint-every epochs and on demand);
// a daemon relaunched with --resume picks those campaigns up and
// finishes them bit-identically to an uninterrupted run — kill -9 in
// the middle of a campaign loses at most the cycles since the last
// checkpoint, never the trajectory's identity.
//
// Exit codes: 0 orderly shutdown (drain command or idle timeout),
// 1 configuration or runtime failure.
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "parallel/transport/wire.hpp"
#include "serve/control.hpp"
#include "serve/control_socket.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using mwr::parallel::transport::FrameKind;
using mwr::parallel::transport::WireFrame;

struct Daemon {
  mwr::serve::CampaignServer* server = nullptr;
  bool shutting_down = false;
};

/// Services one decoded request frame; returns the reply to send.
WireFrame handle_frame(Daemon& daemon, const WireFrame& frame) {
  using namespace mwr::serve;
  switch (frame.kind) {
    case FrameKind::kSubmit: {
      const SubmitRequest request = decode_submit_request(frame);
      SubmitReply reply;
      if (!daemon.shutting_down) {
        try {
          if (const auto id = daemon.server->submit(request)) {
            reply.accepted = true;
            reply.campaign_id = *id;
          }
        } catch (const std::invalid_argument& error) {
          std::fprintf(stderr, "mwr_served: rejecting submission: %s\n",
                       error.what());
        }
      }
      reply.resident = daemon.server->resident();
      return encode_submit_reply(reply);
    }
    case FrameKind::kStatus: {
      const std::uint64_t id = decode_status_request(frame);
      return encode_status_reply(id, daemon.server->status(id));
    }
    case FrameKind::kResult: {
      const std::uint64_t id = decode_result_request(frame);
      return encode_result_reply(daemon.server->result(id));
    }
    case FrameKind::kCheckpoint: {
      CheckpointReply reply;
      if (!daemon.server->config().checkpoint_dir.empty())
        reply = daemon.server->checkpoint_all();
      return encode_checkpoint_reply(reply);
    }
    case FrameKind::kShutdown: {
      daemon.shutting_down = true;
      return encode_shutdown_reply(daemon.server->resident());
    }
    default:
      throw std::runtime_error("mwr_served: unexpected control frame kind");
  }
}

int run(int argc, char** argv) {
  using namespace mwr;

  util::Cli cli(
      "mwr_served: campaign server — multiplexes concurrent MWRepair "
      "campaigns over a UDS control socket");
  cli.add_string("socket", "", "control socket path (required)");
  cli.add_int("max-campaigns", 256, "admission cap on resident campaigns");
  cli.add_int("quantum", 8, "DRR work units per campaign per epoch");
  cli.add_int("workers", 0, "engine worker threads (0 = hardware)");
  cli.add_string("checkpoint-dir", "", "campaign checkpoint directory");
  cli.add_int("checkpoint-every", 0,
              "auto-checkpoint period in epochs (0 = only on request)");
  cli.add_flag("resume", "restore campaigns from checkpoint-dir at boot");
  cli.add_double("idle-exit-seconds", 0.0,
                 "exit after this long with no work and no clients "
                 "(0 = run until shutdown command)");
  cli.add_int("stall-after-epochs", 0,
              "stop advancing campaigns after N epochs but keep serving "
              "the control plane (0 = never; CI uses this to kill -9 a "
              "daemon that is deterministically mid-campaign)");
  cli.add_string("metrics-out", "", "write a JSON metrics snapshot on exit");
  if (!cli.parse(argc, argv)) return 0;

  const std::string socket_path = cli.get_string("socket");
  if (socket_path.empty())
    throw std::runtime_error("mwr_served: --socket is required");

  serve::ServerConfig config;
  config.max_resident = static_cast<std::size_t>(cli.get_int("max-campaigns"));
  config.quantum = static_cast<std::size_t>(cli.get_int("quantum"));
  config.workers = static_cast<std::size_t>(cli.get_int("workers"));
  config.checkpoint_dir = cli.get_string("checkpoint-dir");
  config.checkpoint_every =
      static_cast<std::size_t>(cli.get_int("checkpoint-every"));

  serve::CampaignServer server(config);
  if (cli.get_flag("resume")) {
    const std::size_t restored = server.restore_from_dir();
    std::printf("mwr_served: restored %zu campaign(s) from %s\n", restored,
                config.checkpoint_dir.c_str());
  }

  serve::ControlListener listener(socket_path);
  std::printf("mwr_served: listening on %s (max %zu campaigns, quantum %zu)\n",
              socket_path.c_str(), config.max_resident, config.quantum);
  std::fflush(stdout);

  std::vector<std::unique_ptr<serve::ControlConn>> conns;
  Daemon daemon;
  daemon.server = &server;
  const double idle_exit = cli.get_double("idle-exit-seconds");
  const auto stall_after =
      static_cast<std::uint64_t>(cli.get_int("stall-after-epochs"));
  bool stall_announced = false;
  util::WallTimer idle_timer;

  for (;;) {
    while (auto conn = listener.accept_one()) {
      conns.push_back(std::move(conn));
      idle_timer.restart();
    }

    // Service every connection's pending requests in arrival order.
    for (auto it = conns.begin(); it != conns.end();) {
      std::vector<WireFrame> frames;
      bool alive;
      try {
        alive = (*it)->pump(frames);
        for (const WireFrame& frame : frames) {
          idle_timer.restart();
          if (!(*it)->send_frame(handle_frame(daemon, frame))) {
            alive = false;
            break;
          }
        }
      } catch (const std::exception& error) {
        // A malformed control stream (garbage bytes, implausible frame
        // length, bad payload shape) poisons only its own connection:
        // drop it and keep every resident campaign running.
        std::fprintf(stderr, "mwr_served: dropping connection: %s\n",
                     error.what());
        alive = false;
      }
      it = alive ? it + 1 : conns.erase(it);
    }

    if (daemon.shutting_down && server.resident() == 0) break;

    const bool stalled = stall_after != 0 && server.epochs() >= stall_after;
    if (server.resident() > 0 && !stalled) {
      server.run_epoch();
      idle_timer.restart();
      continue;  // poll the control plane again between epochs.
    }
    if (stalled && server.resident() > 0 && !stall_announced) {
      std::printf("mwr_served: stalled after %llu epochs (%zu resident)\n",
                  static_cast<unsigned long long>(server.epochs()),
                  server.resident());
      std::fflush(stdout);
      stall_announced = true;
    }

    if (idle_exit > 0.0 && idle_timer.elapsed_seconds() >= idle_exit) break;
    std::vector<serve::ControlConn*> raw;
    raw.reserve(conns.size());
    for (const auto& conn : conns) raw.push_back(conn.get());
    listener.wait_readable(raw, /*timeout_ms=*/50);
  }

  std::printf(
      "mwr_served: exiting — %zu completed, %llu epochs, %llu starved\n",
      server.completed(), static_cast<unsigned long long>(server.epochs()),
      static_cast<unsigned long long>(server.starved_epochs()));

  if (!cli.get_string("metrics-out").empty()) {
    std::ofstream out(cli.get_string("metrics-out"));
    if (!out) throw std::runtime_error("cannot open --metrics-out path");
    out << obs::MetricsRegistry::global().to_json_string() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mwr_served: fatal: %s\n", error.what());
    return 1;
  }
}
