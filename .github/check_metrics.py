#!/usr/bin/env python3
"""CI gate for the observability artifact.

Validates the JSON snapshot a smoke campaign wrote via --metrics-out:
it must parse, carry the expected schema, and contain the paper-facing
quantities (cycle count, probe count, per-phase wall-time histograms,
convergence status) with sane values.  Exits nonzero on any violation so
the pipeline fails when instrumentation regresses.

Usage: check_metrics.py <metrics.json>
"""
import json
import sys

REQUIRED_COUNTERS = [
    "repair.online.cycles",       # Table II: update cycles
    "repair.online.probes",       # Table IV: oracle probes
    "pool.candidates_tried",      # phase-1 precompute volume
    "campaign.bugs_attempted",
    "thread_pool.tasks_executed",
]
REQUIRED_HISTOGRAMS = [
    "phase.precompute.seconds",   # per-phase wall time
    "phase.online.seconds",
    "repair.online.cycle_seconds",
]
REQUIRED_GAUGES = [
    "campaign.converged",         # convergence status
    "repair.repaired",
]


def fail(message):
    print(f"metrics gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <metrics.json>")
    try:
        with open(sys.argv[1]) as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    if snapshot.get("schema") != "mwr-metrics-v1":
        fail(f"unexpected schema: {snapshot.get('schema')!r}")

    counters = snapshot.get("counters", {})
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            fail(f"missing counter {name}")
        if counters[name] <= 0:
            fail(f"counter {name} is {counters[name]}, expected > 0")

    gauges = snapshot.get("gauges", {})
    for name in REQUIRED_GAUGES:
        if name not in gauges:
            fail(f"missing gauge {name}")

    histograms = snapshot.get("histograms", {})
    for name in REQUIRED_HISTOGRAMS:
        h = histograms.get(name)
        if h is None:
            fail(f"missing histogram {name}")
        if h.get("count", 0) <= 0:
            fail(f"histogram {name} has no observations")
        if len(h.get("counts", [])) != len(h.get("le", [])) + 1:
            fail(f"histogram {name} bucket layout is inconsistent")
        if sum(h["counts"]) != h["count"]:
            fail(f"histogram {name} bucket counts do not sum to count")

    if gauges["campaign.converged"] != 1.0:
        fail("smoke campaign did not converge (campaign.converged != 1)")

    print(
        "metrics gate: OK "
        f"(cycles={counters['repair.online.cycles']}, "
        f"probes={counters['repair.online.probes']}, "
        f"converged={gauges['campaign.converged']})"
    )


if __name__ == "__main__":
    main()
