#!/usr/bin/env python3
"""CI gate for the hot-path benchmark artifact.

Validates the JSON bench_hot_paths wrote (--json): it must parse, carry
the expected schema, and show that the hot-path optimizations still pay
for themselves — the Fenwick sampler at least 5x over the linear scan,
cached oracle probes at least 3x over uncached — and that absolute
sampler cost has not regressed more than 2x against the committed
baseline (bench/BENCH_hot_paths.baseline.json).  Exits nonzero on any
violation so the pipeline fails when a hot path regresses.

Speedup floors are ratios measured within one run, so they are immune to
runner-speed variance; only the absolute-regression check compares
across machines, hence its generous 2x allowance.

Usage: check_bench.py <BENCH_hot_paths.json> <baseline.json>
"""
import json
import sys

SCHEMA = "mwr-bench-hot-paths-v1"
SECTIONS = ["sampler", "oracle", "table2_cycle"]
SPEEDUP_FLOORS = {
    "sampler": 5.0,       # Fenwick draw vs linear scan at k = 2^14
    "oracle": 3.0,        # cached vs uncached phase-2 probe
    "table2_cycle": 1.5,  # full Standard-MWU cycle (n draws + update)
}
# Absolute ns-per-op may regress at most this factor vs the committed
# baseline (cross-machine comparison, so deliberately loose).
MAX_ABS_REGRESSION = 2.0
REGRESSION_CHECKED = ["sampler"]


def fail(message):
    print(f"bench gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    for name in SECTIONS:
        section = doc.get(name)
        if not isinstance(section, dict):
            fail(f"{path}: missing section {name}")
        for field in ("before_ns_per_op", "after_ns_per_op", "speedup"):
            value = section.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: {name}.{field} is {value!r}, expected > 0")
    return doc


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <BENCH_hot_paths.json> <baseline.json>")
    current = load(sys.argv[1])
    baseline = load(sys.argv[2])

    for name, floor in SPEEDUP_FLOORS.items():
        speedup = current[name]["speedup"]
        if speedup < floor:
            fail(f"{name} speedup {speedup:.2f}x is below the {floor}x floor")

    for name in REGRESSION_CHECKED:
        now = current[name]["after_ns_per_op"]
        then = baseline[name]["after_ns_per_op"]
        if now > then * MAX_ABS_REGRESSION:
            fail(
                f"{name} ns-per-op regressed: {now:.1f} vs baseline "
                f"{then:.1f} (allowed {MAX_ABS_REGRESSION}x)"
            )

    print(
        "bench gate: OK ("
        + ", ".join(
            f"{name} {current[name]['speedup']:.2f}x" for name in SECTIONS
        )
        + ")"
    )


if __name__ == "__main__":
    main()
