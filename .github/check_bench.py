#!/usr/bin/env python3
"""CI gate for the machine-readable benchmark artifacts.

Dispatches on the artifact's "schema" field:

mwr-bench-hot-paths-v2 (bench_hot_paths --json):
  the hot-path optimizations must still pay for themselves — the Fenwick
  sampler at least 5x over the linear scan, cached oracle probes at least
  3x over uncached, the full Table-II cycle at least 4x — and absolute
  sampler cost must not regress more than 2x against the committed
  baseline.  The per-kernel rows (scalar vs runtime dispatch) carry no
  speedup floor: on a non-AVX2 runner both sides are the same code and the
  row legitimately reports ~1x.

Regardless of schema, per-metric percentage deltas against the baseline
are printed even when the gate passes, so drift is visible in CI logs
long before it trips a threshold.

mwr-bench-spmd-scale-v1 (bench_spmd_scale --json):
  the superstep engine must (a) produce bit-identical trajectories to
  thread-per-rank, (b) be at least 5x faster at the crossover population
  (2^10), (c) complete populations >= 4096 — the scale thread-per-rank
  cannot reach — and (d) not regress engine throughput at the crossover
  more than 3x against the committed baseline.

mwr-bench-transport-v1 (bench_transport --json):
  every Comm backend (in-process mailbox, shm ring, UDS) must clear an
  absolute throughput floor and a p99 round-trip-latency ceiling, and must
  not regress more than 5x in either metric against the committed baseline
  (process forking on shared CI runners is noisy, hence the allowance).

mwr-bench-serve-v2 (bench_serve --json):
  the campaign server must complete every admitted campaign (completed ==
  campaigns), never starve one (starved_epochs == 0), reproduce the
  uninterrupted trajectories after a checkpoint/kill/restore cycle
  (resume_ok), record the deliberate overflow submissions as admission
  rejects, clear an absolute campaigns/sec floor and a p99 probe-latency
  ceiling, and not regress throughput more than 5x against the committed
  baseline.  The identity bits (resume_ok, starvation, completion) are
  measured within one run, so they gate hard regardless of runner speed.
  v2 adds per-epoch latency percentiles (fairness.epoch_p50_us /
  epoch_p99_us) and the async-checkpoint wall-time split
  (checkpoint.critical_path_us on the epoch path vs writer_us on the
  writer thread) — validated for shape, reported as deltas, not gated
  (pure timing, too runner-dependent for thresholds).

Speedup floors and the bit-identity bit are measured within one run, so
they are immune to runner-speed variance; only the absolute-regression
checks compare across machines, hence their generous allowances.

Usage: check_bench.py <current.json> <baseline.json>
"""
import json
import sys

HOT_PATHS_SCHEMA = "mwr-bench-hot-paths-v2"
SPMD_SCALE_SCHEMA = "mwr-bench-spmd-scale-v1"

HOT_PATHS_SECTIONS = [
    "sampler",
    "oracle",
    "table2_cycle",
    "kernel_update",
    "kernel_normalize",
    "kernel_materialize",
]
HOT_PATHS_SPEEDUP_FLOORS = {
    "sampler": 5.0,       # Fenwick draw vs linear scan at k = 2^14
    "oracle": 3.0,        # cached vs uncached phase-2 probe
    "table2_cycle": 4.0,  # full SoA-kernel cycle (n draws + fused update)
    # kernel_* rows: no floor — scalar == dispatched on non-AVX2 runners.
}
# Absolute ns-per-op may regress at most this factor vs the committed
# baseline (cross-machine comparison, so deliberately loose).
HOT_PATHS_MAX_ABS_REGRESSION = 2.0
HOT_PATHS_REGRESSION_CHECKED = ["sampler"]

SPMD_SPEEDUP_FLOOR = 5.0        # engine vs thread-per-rank at 2^10
SPMD_MIN_LARGE_POPULATION = 4096  # engine must complete at least this
SPMD_MAX_ABS_REGRESSION = 3.0   # throughput, cross-machine, loose

TRANSPORT_SCHEMA = "mwr-bench-transport-v1"
TRANSPORT_SECTIONS = ["in_process", "shm", "uds"]
# Absolute floors/ceilings: an order of magnitude under the measured
# numbers on the slowest CI runner, so they catch pathological regressions
# (a backend falling back to sleeps, a per-message allocation storm)
# without flaking on machine variance.
TRANSPORT_MIN_MSGS_PER_SEC = 50_000.0
TRANSPORT_MAX_P99_LATENCY_US = 20_000.0
TRANSPORT_MAX_ABS_REGRESSION = 5.0  # vs baseline, either metric

SERVE_SCHEMA = "mwr-bench-serve-v2"
# An order of magnitude under the slowest expected runner, like the
# transport floors: catches the server degenerating to one campaign per
# epoch-sweep without flaking on machine variance.
SERVE_MIN_CAMPAIGNS_PER_SEC = 20.0
SERVE_MAX_P99_PROBE_US = 10_000.0
SERVE_MAX_ABS_REGRESSION = 5.0  # campaigns/sec vs baseline, cross-machine


def fail(message):
    print(f"bench gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def report_deltas(current, baseline):
    """Prints per-metric percentage deltas vs the baseline, pass or fail.

    Walks every shared top-level section dict and compares numeric fields.
    Checksums and the params block are identity/config, not measurements,
    so they are skipped.
    """
    for name in current:
        if name in ("schema", "params"):
            continue
        cur, base = current.get(name), baseline.get(name)
        if not isinstance(cur, dict) or not isinstance(base, dict):
            continue
        parts = []
        for field, now in cur.items():
            then = base.get(field)
            if field == "checksum" or isinstance(now, bool):
                continue
            if not isinstance(now, (int, float)):
                continue
            if not isinstance(then, (int, float)) or then == 0:
                continue
            delta = (now - then) / then * 100.0
            parts.append(f"{field} {now:g} ({delta:+.1f}%)")
        if parts:
            print(f"bench delta: {name}: " + ", ".join(parts))


def validate_hot_paths(path, doc):
    for name in HOT_PATHS_SECTIONS:
        section = doc.get(name)
        if not isinstance(section, dict):
            fail(f"{path}: missing section {name}")
        for field in ("before_ns_per_op", "after_ns_per_op", "speedup"):
            value = section.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: {name}.{field} is {value!r}, expected > 0")


def check_hot_paths(current, baseline):
    for name, floor in HOT_PATHS_SPEEDUP_FLOORS.items():
        speedup = current[name]["speedup"]
        if speedup < floor:
            fail(f"{name} speedup {speedup:.2f}x is below the {floor}x floor")

    for name in HOT_PATHS_REGRESSION_CHECKED:
        now = current[name]["after_ns_per_op"]
        then = baseline[name]["after_ns_per_op"]
        if now > then * HOT_PATHS_MAX_ABS_REGRESSION:
            fail(
                f"{name} ns-per-op regressed: {now:.1f} vs baseline "
                f"{then:.1f} (allowed {HOT_PATHS_MAX_ABS_REGRESSION}x)"
            )

    print(
        "bench gate: OK ("
        + ", ".join(
            f"{name} {current[name]['speedup']:.2f}x"
            for name in HOT_PATHS_SECTIONS
        )
        + ")"
    )


def validate_spmd_scale(path, doc):
    if not isinstance(doc.get("bit_identical"), bool):
        fail(f"{path}: bit_identical missing or not a bool")
    speedup = doc.get("speedup_at_crossover")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        fail(f"{path}: speedup_at_crossover is {speedup!r}, expected > 0")
    scale = doc.get("scale")
    if not isinstance(scale, list) or not scale:
        fail(f"{path}: scale missing or empty")
    for point in scale:
        population = point.get("population")
        throughput = point.get("engine_ranks_per_sec")
        if not isinstance(population, int) or population <= 0:
            fail(f"{path}: scale point population is {population!r}")
        if not isinstance(throughput, (int, float)) or throughput <= 0:
            fail(
                f"{path}: engine_ranks_per_sec at population "
                f"{population} is {throughput!r}, expected > 0"
            )


def crossover_throughput(doc):
    crossover = doc.get("params", {}).get("crossover_population")
    for point in doc["scale"]:
        if point["population"] == crossover:
            return point["engine_ranks_per_sec"]
    fail(f"no scale point at the crossover population {crossover!r}")


def check_spmd_scale(current, baseline):
    if not current["bit_identical"]:
        fail("engine trajectories are not bit-identical to thread-per-rank")

    speedup = current["speedup_at_crossover"]
    if speedup < SPMD_SPEEDUP_FLOOR:
        fail(
            f"engine speedup at crossover {speedup:.2f}x is below the "
            f"{SPMD_SPEEDUP_FLOOR}x floor"
        )

    largest = max(p["population"] for p in current["scale"])
    if largest < SPMD_MIN_LARGE_POPULATION:
        fail(
            f"largest engine population {largest} is below "
            f"{SPMD_MIN_LARGE_POPULATION}"
        )

    now = crossover_throughput(current)
    then = crossover_throughput(baseline)
    if now * SPMD_MAX_ABS_REGRESSION < then:
        fail(
            f"engine throughput at crossover regressed: {now:.0f} ranks/s "
            f"vs baseline {then:.0f} (allowed {SPMD_MAX_ABS_REGRESSION}x)"
        )

    print(
        f"bench gate: OK (bit-identical, {speedup:.2f}x at crossover, "
        f"population up to {largest}, {now:.0f} ranks/s)"
    )


def validate_transport(path, doc):
    for name in TRANSPORT_SECTIONS:
        section = doc.get(name)
        if not isinstance(section, dict):
            fail(f"{path}: missing section {name}")
        for field in ("msgs_per_sec", "p99_latency_us"):
            value = section.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: {name}.{field} is {value!r}, expected > 0")


def check_transport(current, baseline):
    for name in TRANSPORT_SECTIONS:
        throughput = current[name]["msgs_per_sec"]
        latency = current[name]["p99_latency_us"]
        if throughput < TRANSPORT_MIN_MSGS_PER_SEC:
            fail(
                f"{name} throughput {throughput:.0f} msgs/s is below the "
                f"{TRANSPORT_MIN_MSGS_PER_SEC:.0f} floor"
            )
        if latency > TRANSPORT_MAX_P99_LATENCY_US:
            fail(
                f"{name} p99 latency {latency:.1f} us exceeds the "
                f"{TRANSPORT_MAX_P99_LATENCY_US:.0f} us ceiling"
            )
        base_throughput = baseline[name]["msgs_per_sec"]
        base_latency = baseline[name]["p99_latency_us"]
        if throughput * TRANSPORT_MAX_ABS_REGRESSION < base_throughput:
            fail(
                f"{name} throughput regressed: {throughput:.0f} msgs/s vs "
                f"baseline {base_throughput:.0f} "
                f"(allowed {TRANSPORT_MAX_ABS_REGRESSION}x)"
            )
        if latency > base_latency * TRANSPORT_MAX_ABS_REGRESSION:
            fail(
                f"{name} p99 latency regressed: {latency:.1f} us vs "
                f"baseline {base_latency:.1f} "
                f"(allowed {TRANSPORT_MAX_ABS_REGRESSION}x)"
            )

    print(
        "bench gate: OK ("
        + ", ".join(
            f"{name} {current[name]['msgs_per_sec'] / 1e6:.2f}M msgs/s "
            f"p99 {current[name]['p99_latency_us']:.1f}us"
            for name in TRANSPORT_SECTIONS
        )
        + ")"
    )


SERVE_NUMERIC_FIELDS = {
    # section -> field -> minimum allowed value (structural validation;
    # the behavioral gates live in check_serve).
    "load": {
        "campaigns": 1,
        "completed": 0,
        "families": 4,
        "campaigns_per_sec": 0,
        "admission_rejects": 0,
    },
    "probes": {"count": 1, "p50_us": 0, "p99_us": 0},
    "checkpoint": {"total_bytes": 1, "critical_path_us": 0, "writer_us": 0},
    "fairness": {
        "epochs": 1,
        "epoch_p50_us": 0,
        "epoch_p99_us": 0,
        "starved_epochs": 0,
    },
}


def validate_serve(path, doc):
    for name, fields in SERVE_NUMERIC_FIELDS.items():
        section = doc.get(name)
        if not isinstance(section, dict):
            fail(f"{path}: missing section {name}")
        for field, minimum in fields.items():
            value = section.get(field)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(f"{path}: {name}.{field} is {value!r}, expected a number")
            if value < minimum:
                fail(f"{path}: {name}.{field} is {value!r}, expected >= {minimum}")
    if not isinstance(doc["checkpoint"].get("resume_ok"), bool):
        fail(f"{path}: checkpoint.resume_ok missing or not a bool")


def check_serve(current, baseline):
    load = current["load"]
    if load["completed"] != load["campaigns"]:
        fail(
            f"only {load['completed']} of {load['campaigns']} admitted "
            f"campaigns completed"
        )
    if current["fairness"]["starved_epochs"] != 0:
        fail(
            f"{current['fairness']['starved_epochs']} starved campaign-epochs "
            f"(DRR must starve no one)"
        )
    if not current["checkpoint"]["resume_ok"]:
        fail("checkpoint/kill/restore cycle did not reproduce the trajectories")
    if load["admission_rejects"] < 1:
        fail("overflow submissions were not rejected (admission control dead)")

    throughput = load["campaigns_per_sec"]
    if throughput < SERVE_MIN_CAMPAIGNS_PER_SEC:
        fail(
            f"throughput {throughput:.1f} campaigns/s is below the "
            f"{SERVE_MIN_CAMPAIGNS_PER_SEC:.0f} floor"
        )
    p99 = current["probes"]["p99_us"]
    if p99 > SERVE_MAX_P99_PROBE_US:
        fail(
            f"p99 probe latency {p99:.1f} us exceeds the "
            f"{SERVE_MAX_P99_PROBE_US:.0f} us ceiling"
        )
    base_throughput = baseline["load"]["campaigns_per_sec"]
    if throughput * SERVE_MAX_ABS_REGRESSION < base_throughput:
        fail(
            f"throughput regressed: {throughput:.1f} campaigns/s vs baseline "
            f"{base_throughput:.1f} (allowed {SERVE_MAX_ABS_REGRESSION}x)"
        )

    print(
        f"bench gate: OK ({load['campaigns']} campaigns "
        f"{throughput:.1f}/s, probe p99 {p99:.1f}us, "
        f"{current['checkpoint']['total_bytes']} checkpoint bytes, "
        f"resume bit-identical, 0 starved)"
    )


CHECKERS = {
    HOT_PATHS_SCHEMA: (validate_hot_paths, check_hot_paths),
    SPMD_SCALE_SCHEMA: (validate_spmd_scale, check_spmd_scale),
    TRANSPORT_SCHEMA: (validate_transport, check_transport),
    SERVE_SCHEMA: (validate_serve, check_serve),
}


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <current.json> <baseline.json>")
    current = load(sys.argv[1])
    baseline = load(sys.argv[2])

    schema = current.get("schema")
    if schema not in CHECKERS:
        fail(f"{sys.argv[1]}: unexpected schema {schema!r}")
    if baseline.get("schema") != schema:
        fail(
            f"{sys.argv[2]}: baseline schema {baseline.get('schema')!r} "
            f"does not match {schema!r}"
        )

    validate, check = CHECKERS[schema]
    validate(sys.argv[1], current)
    validate(sys.argv[2], baseline)
    report_deltas(current, baseline)
    check(current, baseline)


if __name__ == "__main__":
    main()
