// Quickstart: the smallest end-to-end use of the MWU library.
//
// Builds a bandit instance with one clearly-best option, runs each of the
// paper's three MWU realizations against a Bernoulli oracle, and prints
// what each converged to and what it cost.  See README.md for a walkthrough.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/mwu.hpp"
#include "datasets/distributions.hpp"

int main() {
  using namespace mwr;

  // A 64-option unimodal instance: option values rise to a single peak and
  // fall off, like the repair-density curves of the paper's Fig 4b.
  const core::OptionSet options = datasets::make_unimodal(64, /*seed=*/42);
  const core::BernoulliOracle oracle(options);

  core::MwuConfig config;                 // paper defaults (Section IV-B)
  config.num_options = options.size();

  std::printf("instance: %s, k=%zu, best option=%zu (value %.3f)\n\n",
              options.name().c_str(), options.size(), options.best_option(),
              options.best_value());
  std::printf("%-12s %-10s %-8s %-10s %-10s %-9s\n", "algorithm", "converged",
              "cycles", "cpus/cyc", "cpu-iters", "accuracy");

  for (const auto kind :
       {core::MwuKind::kStandard, core::MwuKind::kDistributed,
        core::MwuKind::kSlate}) {
    const core::MwuResult result =
        core::run_mwu(kind, oracle, config, util::RngStream(7));
    std::printf("%-12s %-10s %-8zu %-10zu %-10llu %8.1f%%\n",
                core::to_string(kind).c_str(),
                result.converged ? "yes" : "no", result.iterations,
                result.cpus_per_cycle,
                static_cast<unsigned long long>(result.cpu_iterations()),
                options.accuracy_percent(result.best_option));
  }
  return 0;
}
