// mwrepair as a command-line tool: pick any named scenario (or all of
// them), choose the MWU backend and budgets, and get a repair report —
// the shape a downstream user would wire into their CI.
//
//   ./build/examples/repair_tool --scenario Closure13 --mwu standard
//   ./build/examples/repair_tool --all --pool 4000 --agents 32
//   ./build/examples/repair_tool --scenario gzip-2009-08-16 --campaign 5
//       (multi-bug campaign with pool reuse)
#include <iostream>

#include "apr/campaign.hpp"
#include "apr/outcome_json.hpp"
#include "datasets/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mwr;

core::MwuKind parse_mwu(const std::string& name) {
  if (name == "standard") return core::MwuKind::kStandard;
  if (name == "slate") return core::MwuKind::kSlate;
  if (name == "distributed") return core::MwuKind::kDistributed;
  if (name == "exp3") return core::MwuKind::kExp3;
  throw std::invalid_argument(
      "--mwu must be standard|slate|distributed|exp3, got: " + name);
}

[[nodiscard]] apr::EndToEndOutcome repair_one(
    const datasets::ScenarioSpec& spec,
    const apr::MwRepairConfig& repair_config,
    const apr::PoolConfig& pool_config, util::Table& table) {
  util::WallTimer timer;
  auto outcome = apr::repair_scenario(spec, repair_config, pool_config);
  table.add_row(
      {spec.name, spec.language, outcome.repair.repaired ? "yes" : "no",
       std::to_string(outcome.pool_size),
       std::to_string(outcome.precompute_attempts),
       std::to_string(outcome.repair.probes),
       std::to_string(outcome.repair.iterations),
       std::to_string(outcome.repair.patch.size()),
       util::fmt_fixed(timer.elapsed_seconds(), 2) + "s"});
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("repair_tool — run MWRepair on the paper's bug scenarios");
  cli.add_string("scenario", "units", "scenario name (see DESIGN.md)");
  cli.add_flag("all", "run every C and Java scenario");
  cli.add_string("mwu", "standard", "MWU backend: standard|slate|distributed|exp3");
  cli.add_int("pool", 12000, "safe-mutation pool size (phase 1)");
  cli.add_int("agents", 64, "parallel probes per cycle (phase 2)");
  cli.add_int("iterations", 160, "online iteration cap");
  cli.add_int("eval-threads", 4, "threads for probe evaluation");
  cli.add_int("campaign", 0, "repair N sequential bugs with one shared pool");
  cli.add_int("seed", 20210525, "master seed");
  cli.add_string("outcome-out", "",
                 "write the run's mwr-campaign-outcome-v1 JSON here (the "
                 "same document the campaign server serves as the result)");
  util::add_metrics_flag(cli);
  if (!cli.parse(argc, argv)) return 0;
  const std::string outcome_out = cli.get_string("outcome-out");
  if (!outcome_out.empty() && cli.get_flag("all")) {
    std::cerr << "--outcome-out documents a single scenario; drop --all\n";
    return 1;
  }

  apr::PoolConfig pool_config;
  pool_config.target_size = static_cast<std::size_t>(cli.get_int("pool"));
  pool_config.max_attempts = 8 * pool_config.target_size;
  pool_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  apr::MwRepairConfig repair_config;
  repair_config.mwu = parse_mwu(cli.get_string("mwu"));
  repair_config.agents = static_cast<std::size_t>(cli.get_int("agents"));
  repair_config.max_iterations =
      static_cast<std::size_t>(cli.get_int("iterations"));
  repair_config.eval_threads =
      static_cast<std::size_t>(cli.get_int("eval-threads"));
  repair_config.seed = pool_config.seed ^ 0xBEEF;

  // Campaign mode: a sequence of bugs in one program, one shared pool.
  if (cli.get_int("campaign") > 0) {
    const auto spec = datasets::scenario_by_name(cli.get_string("scenario"));
    apr::CampaignConfig campaign_config;
    campaign_config.bugs = static_cast<std::size_t>(cli.get_int("campaign"));
    campaign_config.pool = pool_config;
    campaign_config.repair = repair_config;
    const auto campaign = apr::run_campaign(spec, campaign_config);
    util::Table table("Campaign: " + std::to_string(campaign_config.bugs) +
                      " bugs in " + spec.name);
    table.set_header({"bug", "repaired", "maintenance", "online probes",
                      "patch edits"});
    for (const auto& bug : campaign.bugs) {
      table.add_row({std::to_string(bug.bug_id), bug.repaired ? "yes" : "no",
                     std::to_string(bug.maintenance_runs),
                     std::to_string(bug.online_probes),
                     std::to_string(bug.patch_edits)});
    }
    table.emit(std::cout);
    std::cout << "repaired " << campaign.repaired() << "/"
              << campaign.bugs.size() << "; one-time precompute "
              << campaign.precompute_runs << " suite runs; amortized "
              << util::fmt_fixed(campaign.amortized_bug_cost(), 0)
              << " suite runs/bug\n";
    if (!outcome_out.empty())
      apr::write_outcome_json(apr::outcome_to_json(campaign), outcome_out);
    util::write_metrics_if_requested(cli);
    return campaign.repaired() == campaign.bugs.size() ? 0 : 1;
  }

  util::Table table("MWRepair (" + cli.get_string("mwu") + " backend)");
  table.set_header({"scenario", "lang", "repaired", "pool", "precompute",
                    "online probes", "cycles", "patch edits", "time"});
  // Derive per-scenario seeds the same way the IV-G harness does, so the
  // CLI reproduces the bench's outcomes.
  const std::uint64_t master = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto run_scenario = [&](const datasets::ScenarioSpec& spec) {
    auto pool = pool_config;
    pool.seed = master ^ spec.seed;
    auto repair = repair_config;
    repair.seed = master ^ (spec.seed * 3);
    return repair_one(spec, repair, pool, table);
  };
  bool all_repaired = true;
  if (cli.get_flag("all")) {
    for (const auto& family :
         {datasets::c_scenarios(), datasets::java_scenarios()}) {
      for (const auto& spec : family) {
        all_repaired &= run_scenario(spec).repair.repaired;
      }
    }
  } else {
    const auto outcome =
        run_scenario(datasets::scenario_by_name(cli.get_string("scenario")));
    all_repaired = outcome.repair.repaired;
    if (!outcome_out.empty())
      apr::write_outcome_json(apr::outcome_to_json(outcome), outcome_out);
  }
  table.emit(std::cout);
  util::write_metrics_if_requested(cli);
  return all_repaired ? 0 : 1;
}
