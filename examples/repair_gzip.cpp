// End-to-end MWRepair on the gzip-2009-08-16 scenario: the paper's running
// example (Fig 4a/4b, §III).
//
// Walks through both phases explicitly:
//   1. precompute — validate random statement mutations in parallel until a
//      pool of individually-safe mutations is banked;
//   2. online     — MWU (Standard backend) learns how many pooled mutations
//      to combine per probe, terminating at the first repair.
// Along the way it prints the empirical pass-rate curve the pool exhibits
// (Fig 4a) and where the bandit's preference sits relative to the
// calibrated repair-density optimum (Fig 4b).
//
// Build & run:  cmake --build build && ./build/examples/repair_gzip
#include <cstdio>

#include "apr/mwrepair.hpp"
#include "datasets/scenario.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mwr;

  const auto spec = datasets::scenario_by_name("gzip-2009-08-16");
  std::printf("scenario: %s (%zu statements, %zu required tests, "
              "calibrated optimum %zu mutations)\n",
              spec.name.c_str(), spec.statements, spec.tests, spec.optimum);

  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);

  // --- Phase 1: precompute the safe-mutation pool (embarrassingly
  // parallel; a one-time cost amortized over every bug in this program).
  util::WallTimer timer;
  apr::PoolConfig pool_config;
  pool_config.target_size = 4000;
  pool_config.threads = 4;
  pool_config.seed = 2021;
  const auto pool = apr::MutationPool::precompute(oracle, pool_config);
  std::printf("phase 1: %zu safe mutations from %llu candidates "
              "(%.2fs, %.0f%% yield)\n",
              pool.size(), static_cast<unsigned long long>(pool.attempts()),
              timer.elapsed_seconds(),
              100.0 * static_cast<double>(pool.size()) /
                  static_cast<double>(pool.attempts()));

  // A glimpse of Fig 4a: combined safe mutations still mostly pass.
  util::RngStream rng(7);
  for (const std::size_t x : {std::size_t{8}, std::size_t{48}, std::size_t{80}}) {
    int passed = 0;
    constexpr int kTrials = 200;
    for (int t = 0; t < kTrials; ++t) {
      const auto patch = apr::sample_from_pool(pool.mutations(), x, rng);
      const auto e = oracle.evaluate(patch);
      if (e.required_passed == e.required_total) ++passed;
    }
    std::printf("  %3zu combined safe mutations -> %3.0f%% of programs still "
                "pass the suite\n",
                x, 100.0 * passed / kTrials);
  }

  // --- Phase 2: the online MWU search (Fig 6).
  timer.restart();
  apr::MwRepairConfig config;
  config.mwu = core::MwuKind::kStandard;  // the paper's recommendation for APR
  config.agents = 64;
  config.max_iterations = 200;
  config.seed = 42;
  const apr::MwRepair repair(config);
  const auto outcome = repair.run(oracle, pool);

  if (outcome.repaired) {
    std::printf("phase 2: REPAIRED in %zu update cycle(s), %llu probes "
                "(%.2fs)\n",
                outcome.iterations,
                static_cast<unsigned long long>(outcome.probes),
                timer.elapsed_seconds());
    std::printf("  repairing patch combines %zu mutations (first three:",
                outcome.patch.size());
    for (std::size_t i = 0; i < outcome.patch.size() && i < 3; ++i) {
      const auto& m = outcome.patch[i];
      std::printf(" %s@%u", apr::to_string(m.kind).c_str(), m.target);
    }
    std::printf(" ...)\n");
    const auto check = oracle.evaluate(outcome.patch);
    std::printf("  verification: %u/%u required tests pass, bug test %s\n",
                check.required_passed, check.required_total,
                check.bug_test_passed ? "passes" : "FAILS");
  } else {
    std::printf("phase 2: no repair within %zu cycles; bandit preferred "
                "combining %zu mutations (calibrated optimum %zu)\n",
                outcome.iterations, outcome.preferred_count, spec.optimum);
  }
  std::printf("total suite runs (both phases): %llu\n",
              static_cast<unsigned long long>(oracle.suite_runs()));
  return outcome.repaired ? 0 : 1;
}
