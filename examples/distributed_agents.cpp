// Distributed MWU running for real over the message-passing substrate:
// one thread per agent, observation requests as actual messages, and live
// congestion accounting against the balls-into-bins bound of Table I.
//
// Build & run:  ./build/examples/distributed_agents --agents 48
#include <iostream>

#include "core/parallel_driver.hpp"
#include "datasets/distributions.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("distributed_agents — SPMD Distributed MWU with congestion "
                "measurement");
  cli.add_int("agents", 48, "population size (one thread per agent)");
  cli.add_int("options", 12, "option-set size k");
  cli.add_int("cycles", 100, "iteration cap");
  cli.add_int("seed", 99, "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto agents = static_cast<std::size_t>(cli.get_int("agents"));
  const auto k = static_cast<std::size_t>(cli.get_int("options"));

  const auto options = datasets::make_unimodal(k, 5);
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = k;
  config.max_iterations = static_cast<std::size_t>(cli.get_int("cycles"));

  std::cout << "running " << agents << " agent threads on " << k
            << " options (best option " << options.best_option()
            << ", value " << options.best_value() << ")...\n";
  const auto run = core::run_distributed_spmd(
      oracle, config, static_cast<std::uint64_t>(cli.get_int("seed")), agents);

  util::Table table("Distributed MWU over the message-passing substrate");
  table.set_header({"metric", "value"});
  table.add_row({"converged (30% plurality)", run.result.converged ? "yes" : "no"});
  table.add_row({"update cycles", std::to_string(run.result.iterations)});
  table.add_row({"plurality option", std::to_string(run.result.best_option)});
  table.add_row({"accuracy",
                 util::fmt_fixed(
                     options.accuracy_percent(run.result.best_option), 1) +
                     "%"});
  table.add_row({"oracle evaluations", std::to_string(run.result.evaluations)});
  table.add_row({"observation messages", std::to_string(run.total_messages)});
  table.add_row({"mean max congestion / cycle",
                 util::fmt_fixed(run.max_congestion_per_cycle.mean(), 2)});
  table.add_row({"worst cycle congestion",
                 util::fmt_fixed(run.max_congestion_per_cycle.max(), 0)});
  table.add_row({"balls-into-bins bound ln n/ln ln n",
                 util::fmt_fixed(parallel::balls_into_bins_bound(agents), 2)});
  table.emit(std::cout);

  std::cout << "Note: the heaviest-hit agent serves only ~ln n/ln ln n "
               "requests per cycle — the Table I communication advantage of "
               "the Distributed realization.  Compare Standard, whose "
               "end-of-cycle reduction concentrates n-1 messages at one "
               "node.\n";
  return 0;
}
