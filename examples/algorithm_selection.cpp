// Choosing an MWU realization for a deployment, using the §IV-E cost model.
//
// Describe your deployment with three numbers and the model ranks the
// algorithms:
//   --probe-cost N   how expensive one option evaluation is, relative to
//                    sending one message (APR: huge — compile + test);
//   --options N      k, the size of the option set;
//   --agents N       parallel agents available.
//
// Build & run:  ./build/examples/algorithm_selection --probe-cost 1000
#include <iostream>

#include "core/mwu.hpp"
#include "costmodel/cost_model.hpp"
#include "datasets/distributions.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mwr;
  util::Cli cli("algorithm_selection — rank the three MWU realizations for "
                "a described deployment (Section IV-E cost model)");
  cli.add_double("probe-cost", 1000.0,
                 "cost of one option evaluation relative to one message");
  cli.add_int("options", 1000, "option-set size k");
  cli.add_int("agents", 64, "parallel agents available");
  cli.add_int("seeds", 3, "measurement replications");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::size_t>(cli.get_int("options"));
  const auto n = static_cast<std::size_t>(cli.get_int("agents"));
  const double probe_cost = cli.get_double("probe-cost");

  // Measure each algorithm once on a representative unimodal instance —
  // the empirical half of the §IV-E model.
  const auto options = datasets::make_unimodal(k, 77);
  const core::BernoulliOracle oracle(options);
  core::MwuConfig mwu;
  mwu.num_options = k;
  mwu.num_agents = n;

  std::vector<costmodel::EmpiricalObservation> observations;
  for (const auto kind :
       {core::MwuKind::kStandard, core::MwuKind::kDistributed,
        core::MwuKind::kSlate}) {
    util::RunningStats cycles;
    std::size_t cpus = 0;
    for (std::int64_t s = 0; s < cli.get_int("seeds"); ++s) {
      const auto result = core::run_mwu(
          kind, oracle, mwu, util::RngStream(1234 + static_cast<std::uint64_t>(s)));
      if (result.intractable) {
        cycles.add(static_cast<double>(mwu.max_iterations));
        cpus = result.cpus_per_cycle;
        break;
      }
      cycles.add(static_cast<double>(result.iterations));
      cpus = result.cpus_per_cycle;
    }
    observations.push_back({kind, cycles.mean(), static_cast<double>(cpus)});
  }

  // Probe cost maps onto the model weights: expensive probes make the
  // evaluations term dominate; cheap probes leave communication in charge.
  costmodel::EmpiricalWeights weights;
  weights.communication = 1.0;
  weights.latency = 1.0;
  weights.evaluations = probe_cost;

  util::Table table("Deployment: k=" + std::to_string(k) + ", n=" +
                    std::to_string(n) + ", probe cost " +
                    util::fmt_fixed(probe_cost, 0) + " messages");
  table.set_header({"Algorithm", "measured cycles", "cpus/cycle",
                    "modeled total cost"});
  for (const auto& observation : observations) {
    table.add_row({core::to_string(observation.kind),
                   util::fmt_fixed(observation.cycles, 0),
                   util::fmt_fixed(observation.cpus_per_cycle, 0),
                   util::fmt_fixed(
                       costmodel::empirical_cost(observation, weights), 0)});
  }
  table.emit(std::cout);
  std::cout << "recommended: "
            << core::to_string(
                   costmodel::recommend_empirical(observations, weights))
            << "\n\n";
  std::cout << "Rule of thumb (Section IV-E.2): when probes are expensive "
               "and messages are tiny — the APR regime — the global-memory "
               "Standard algorithm wins despite its O(n) congestion; when "
               "communication dominates, Distributed's O(ln n / ln ln n) "
               "congestion pays for its CPU appetite.\n";
  return 0;
}
