// Annotated synchronization wrappers: the only lock primitives src/ may
// use (tools/mwr_lint.py rejects naked std::mutex / std::lock_guard /
// std::condition_variable elsewhere in the tree).
//
// Each wrapper is a thin, header-only veneer over the std primitive that
// carries the Clang Thread Safety Analysis attributes from
// util/thread_annotations.hpp, so a Clang build with -Werror=thread-safety
// statically checks every guarded access in the process.  There is no
// behavioural difference from the std types: same mutex, same condition
// variable, same codegen once the attributes (no-ops at runtime) are
// stripped.
//
// MutexLock is deliberately relockable (unlock()/lock() on the guard):
// the barrier and the superstep worker loop drop the lock across a fiber
// suspension or a fiber resume and re-take it afterwards, and the analyzer
// tracks that release/acquire pair on the scoped capability instead of
// needing an inline suppression.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mwr::util {

class CondVar;

/// Annotated std::mutex.  Prefer MutexLock over manual lock()/unlock().
class MWR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MWR_ACQUIRE() { mutex_.lock(); }
  void unlock() MWR_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() MWR_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII guard over a util::Mutex — the annotated equivalent of
/// std::scoped_lock, plus explicit unlock()/lock() so waits and
/// fiber-suspension seams can release and re-take the capability inside
/// one scope under the analyzer's eye.
class MWR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MWR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
    held_ = true;
  }

  ~MutexLock() MWR_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the capability before scope exit (suspension points).
  void unlock() MWR_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

  /// Re-takes the capability after an unlock() (resume points).
  void lock() MWR_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = false;
};

/// Annotated std::condition_variable bound to util::Mutex.  wait() requires
/// the capability: the analyzer treats the blocked region as held, which
/// matches the invariant every caller relies on (the predicate re-check
/// happens under the lock).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and re-acquires before return.
  /// Spurious wakeups happen: call from a `while (!predicate())` loop.
  /// There is deliberately no predicate overload — the analyzer treats a
  /// lambda's operator() as a separate function with an empty lock set, so
  /// a predicate reading guarded state would need its own annotations; an
  /// explicit loop keeps the guarded reads in the annotated function.
  void wait(Mutex& mutex) MWR_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mwr::util
