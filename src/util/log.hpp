// Minimal leveled logging.
//
// The library itself logs nothing at Info by default — experiments are
// reported through Table — but the parallel substrates emit Debug traces
// (congestion snapshots, pool progress) that are useful when diagnosing a
// run.  Logging is process-global and thread-safe: a single mutex serializes
// writes, which is acceptable because Debug output is off in benchmarks.
#pragma once

#include <sstream>
#include <string>

namespace mwr::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one line ("LEVEL component: message") to stderr if enabled.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style convenience: MWR_LOG(kDebug, "pool") << "filled " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, buffer_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream buffer_;
};

}  // namespace mwr::util

#define MWR_LOG(level, component) \
  ::mwr::util::LogStream(::mwr::util::LogLevel::level, component)
