#include "util/rng.hpp"

#include <numeric>

namespace mwr::util {

std::size_t RngStream::weighted_choice(
    const std::vector<double>& weights) noexcept {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  return weighted_choice(weights, total);
}

std::size_t RngStream::weighted_choice(const std::vector<double>& weights,
                                       double total) noexcept {
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point underrun: the residual mass belongs to the last
  // positive-weight entry.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

std::vector<std::size_t> RngStream::sample_without_replacement(
    std::size_t population, std::size_t count) noexcept {
  std::vector<std::size_t> pool(population);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher–Yates: only the first `count` positions are shuffled.
  for (std::size_t i = 0; i < count && i < population; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_index(population - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace mwr::util
