#include "util/rng.hpp"

#include <numeric>
#include <unordered_map>

namespace mwr::util {

std::size_t RngStream::weighted_choice(
    const std::vector<double>& weights) noexcept {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  return weighted_choice(weights, total);
}

std::size_t RngStream::weighted_choice(const std::vector<double>& weights,
                                       double total) noexcept {
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point underrun: the residual mass belongs to the last
  // positive-weight entry.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

std::vector<std::size_t> RngStream::sample_without_replacement(
    std::size_t population, std::size_t count) noexcept {
  if (count > population) count = population;
  // Both branches run the same partial Fisher–Yates — identical draw
  // sequence (one uniform_index(population - i) per output), identical
  // result — they differ only in how the permutation is materialized.
  //
  // When the sample is a small fraction of the population, a dense pool
  // would spend O(population) allocating and iota-filling a vector just to
  // read `count` slots of it (the dominant cost of phase-2 patch draws:
  // count <= 64 from pools of thousands).  The sparse branch instead keeps
  // only the displaced entries in a hash map — an untouched slot j simply
  // *is* the value j — giving O(count) time and memory.  (Floyd's
  // algorithm has the same complexity but a different draw sequence, which
  // would silently re-randomize every seeded experiment.)
  if (count * 8 <= population) {
    std::vector<std::size_t> sample;
    sample.reserve(count);
    std::unordered_map<std::size_t, std::size_t> displaced;
    displaced.reserve(count * 2);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(uniform_index(population - i));
      const auto at_j = displaced.find(j);
      const std::size_t value_j = at_j != displaced.end() ? at_j->second : j;
      const auto at_i = displaced.find(i);
      const std::size_t value_i = at_i != displaced.end() ? at_i->second : i;
      // The swap half landing in slot i is emitted immediately; slot i is
      // never revisited (future j >= future i > i), so only slot j needs
      // to be recorded.
      displaced[j] = value_i;
      sample.push_back(value_j);
    }
    return sample;
  }
  std::vector<std::size_t> pool(population);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher–Yates: only the first `count` positions are shuffled.
  for (std::size_t i = 0; i < count && i < population; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_index(population - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace mwr::util
