#include "util/simd/weight_kernels.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

namespace mwr::util::simd {

namespace {

// --- scalar reference implementation ------------------------------------
// The AVX2 TU mirrors these element-for-element; see the header for the
// bit-identity contract each kernel upholds.

void scalar_pow_update(double* w, const double* exps, std::size_t n,
                       double base) {
  for (std::size_t i = 0; i < n; ++i) {
    if (exps[i] > 0.0) w[i] *= std::pow(base, exps[i]);
  }
}

void scalar_exp_update(double* w, const double* exps, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (exps[i] > 0.0) w[i] *= std::exp(exps[i]);
  }
}

double scalar_max_reduce(const double* w, std::size_t n) {
  double m = w[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (w[i] > m) m = w[i];
  }
  return m;
}

std::size_t scalar_argmax(const double* w, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (w[i] > w[best]) best = i;
  }
  return best;
}

void scalar_scale_divide(double* w, std::size_t n, double divisor) {
  for (std::size_t i = 0; i < n; ++i) w[i] /= divisor;
}

void scalar_materialize_counts(double* dst, const std::uint32_t* src,
                               std::size_t n, double denom) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(src[i]) / denom;
  }
}

std::uint64_t scalar_mask_or_gather(const std::uint64_t* masks,
                                    const std::uint32_t* idx, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= masks[idx[i]];
  return acc;
}

std::size_t scalar_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

double scalar_fenwick_rebuild(double* w, double* tree, std::size_t n,
                              double divisor) {
  return detail::fenwick_rebuild_impl(
      w, tree, n, divisor, [](double* wp, double d) {
        wp[0] /= d;
        wp[1] /= d;
        wp[2] /= d;
        wp[3] /= d;
      });
}

constexpr WeightKernels kScalarKernels = {
    scalar_pow_update,
    scalar_exp_update,
    scalar_max_reduce,
    scalar_argmax,
    scalar_scale_divide,
    detail::materialize_affine_portable,
    scalar_materialize_counts,
    scalar_mask_or_gather,
    scalar_popcount_and,
    scalar_fenwick_rebuild,
    "scalar",
};

// --- dispatch ------------------------------------------------------------

bool env_forces_scalar() {
  const char* env = std::getenv("MWR_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

enum class Mode : int { kAuto = 0, kForcedScalar = 1 };

std::atomic<int>& mode_flag() {
  static std::atomic<int> mode{
      static_cast<int>(env_forces_scalar() ? Mode::kForcedScalar
                                           : Mode::kAuto)};
  return mode;
}

const WeightKernels* resolve() {
  if (static_cast<Mode>(mode_flag().load(std::memory_order_acquire)) ==
      Mode::kForcedScalar) {
    return &kScalarKernels;
  }
  if (const WeightKernels* avx2 = avx2_kernels()) return avx2;
  return &kScalarKernels;
}

}  // namespace

const WeightKernels& active() noexcept { return *resolve(); }

double sum_seq(const double* w, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += w[i];
  return total;
}

double normalize_sum(double* w, std::size_t n, double divisor) noexcept {
  // One fused pass: the division pipelines under the add-latency chain, so
  // splitting this into a vector divide plus a second summing pass would be
  // slower, not faster — and the fold order is the bit-identity contract.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] /= divisor;
    total += w[i];
  }
  return total;
}

bool avx2_available() noexcept { return avx2_kernels() != nullptr; }

const char* dispatch_name() noexcept {
  if (static_cast<Mode>(mode_flag().load(std::memory_order_acquire)) ==
      Mode::kForcedScalar) {
    return "scalar (forced)";
  }
  return active().name;
}

void force_scalar_for_testing(bool force) noexcept {
  mode_flag().store(static_cast<int>(force ? Mode::kForcedScalar
                                           : Mode::kAuto),
                    std::memory_order_release);
}

}  // namespace mwr::util::simd
