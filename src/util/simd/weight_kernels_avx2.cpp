// AVX2 realization of the weight kernels.  This translation unit is the
// ONLY one compiled with -mavx2 (and the only place intrinsics are allowed
// — the raw-simd lint rule enforces it); when the toolchain or target
// cannot build AVX2 code, MWR_SIMD_AVX2 is left undefined and
// avx2_kernels() degrades to nullptr, leaving the scalar table active.
//
// Every kernel here is bit-identical to its scalar twin in
// weight_kernels.cpp — see the contract in weight_kernels.hpp.  The
// mechanism per kernel:
//   pow/exp_update    vector compare + movemask finds active lanes; the
//                     transcendental and the multiply stay scalar libm.
//   max_reduce        max is exactly associative/commutative (no NaNs), so
//                     lane-parallel maxpd folds to the same value.
//   argmax            exact max, then first element comparing equal to it
//                     == std::max_element's first occurrence (no NaNs).
//   scale_divide /    one IEEE op sequence per element (vdivpd, vmulpd,
//   materialize_*     vaddpd — never vfmadd), so lanes equal scalar ops.
//   mask_or_gather /  pure integer bit ops (gather-OR, AND + popcnt):
//   popcount_and      exact on every path, identical by construction.
//   fenwick_rebuild   shared scalar construction (detail::
//                     fenwick_rebuild_impl); only the 4-wide divide is
//                     vectorized.
#include "util/simd/weight_kernels.hpp"

#if defined(MWR_SIMD_AVX2)

#include <immintrin.h>

#include <bit>
#include <cmath>

namespace mwr::util::simd {

namespace {

void avx2_pow_update(double* w, const double* exps, std::size_t n,
                     double base) {
  const __m256d zero = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d e = _mm256_loadu_pd(exps + i);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(e, zero, _CMP_GT_OQ));
    if (mask == 0) continue;
    for (int lane = 0; lane < 4; ++lane) {
      if (mask & (1 << lane)) {
        w[i + static_cast<std::size_t>(lane)] *=
            std::pow(base, exps[i + static_cast<std::size_t>(lane)]);
      }
    }
  }
  for (std::size_t i = n4; i < n; ++i) {
    if (exps[i] > 0.0) w[i] *= std::pow(base, exps[i]);
  }
}

void avx2_exp_update(double* w, const double* exps, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d e = _mm256_loadu_pd(exps + i);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(e, zero, _CMP_GT_OQ));
    if (mask == 0) continue;
    for (int lane = 0; lane < 4; ++lane) {
      if (mask & (1 << lane)) {
        w[i + static_cast<std::size_t>(lane)] *=
            std::exp(exps[i + static_cast<std::size_t>(lane)]);
      }
    }
  }
  for (std::size_t i = n4; i < n; ++i) {
    if (exps[i] > 0.0) w[i] *= std::exp(exps[i]);
  }
}

double avx2_max_reduce(const double* w, std::size_t n) {
  if (n < 16) {
    double m = w[0];
    for (std::size_t i = 1; i < n; ++i) {
      if (w[i] > m) m = w[i];
    }
    return m;
  }
  // Two accumulator chains: max is exactly associative and commutative
  // over non-NaN doubles, so reassociating across chains cannot change
  // the result — it only halves the latency-bound dependency chain.
  __m256d acc0 = _mm256_loadu_pd(w);
  __m256d acc1 = _mm256_loadu_pd(w + 4);
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 8; i < n8; i += 8) {
    acc0 = _mm256_max_pd(acc0, _mm256_loadu_pd(w + i));
    acc1 = _mm256_max_pd(acc1, _mm256_loadu_pd(w + i + 4));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_max_pd(acc0, acc1));
  double m = lanes[0];
  for (int lane = 1; lane < 4; ++lane) {
    if (lanes[lane] > m) m = lanes[lane];
  }
  for (std::size_t i = n8; i < n; ++i) {
    if (w[i] > m) m = w[i];
  }
  return m;
}

std::size_t avx2_argmax(const double* w, std::size_t n) {
  if (n < 8) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (w[i] > w[best]) best = i;
    }
    return best;
  }
  // Max first, then the first element equal to it.  For non-NaN input the
  // first equality hit is exactly std::max_element's first strictly-greater
  // occurrence, and two cheap passes beat one blendv-chained pass.
  const double m = avx2_max_reduce(w, n);
  const __m256d vm = _mm256_set1_pd(m);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(w + i), vm, _CMP_EQ_OQ));
    if (mask != 0) {
      return i +
             static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (std::size_t i = n4; i < n; ++i) {
    if (w[i] == m) return i;
  }
  return n - 1;  // unreachable for non-NaN input
}

void avx2_scale_divide(double* w, std::size_t n, double divisor) {
  const __m256d d = _mm256_set1_pd(divisor);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    _mm256_storeu_pd(w + i, _mm256_div_pd(_mm256_loadu_pd(w + i), d));
  }
  for (std::size_t i = n4; i < n; ++i) w[i] /= divisor;
}

// materialize_affine is divide-bound: the vdivpd version measured 0.99x
// against scalar, so the dispatch row routes to the shared portable body
// (detail::materialize_affine_portable) instead of pretending to vectorize.

void avx2_materialize_counts(double* dst, const std::uint32_t* src,
                             std::size_t n, double denom) {
  const __m256d vd = _mm256_set1_pd(denom);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128i counts = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_pd(dst + i,
                     _mm256_div_pd(_mm256_cvtepi32_pd(counts), vd));
  }
  for (std::size_t i = n4; i < n; ++i) {
    dst[i] = static_cast<double>(src[i]) / denom;
  }
}

std::uint64_t avx2_mask_or_gather(const std::uint64_t* masks,
                                  const std::uint32_t* idx, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m128i lanes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_or_si256(
        acc, _mm256_i32gather_epi64(
                 reinterpret_cast<const long long*>(masks), lanes, 8));
  }
  alignas(32) std::uint64_t words[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(words), acc);
  std::uint64_t result = words[0] | words[1] | words[2] | words[3];
  for (std::size_t i = n4; i < n; ++i) result |= masks[idx[i]];
  return result;
}

std::size_t avx2_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  // No vector popcount below AVX-512: AND four words per iteration, then
  // scalar popcnt each lane (integer ops are exact — identity is free).
  std::size_t total = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  alignas(32) std::uint64_t words[4];
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(words),
                       _mm256_and_si256(va, vb));
    total += static_cast<std::size_t>(std::popcount(words[0])) +
             static_cast<std::size_t>(std::popcount(words[1])) +
             static_cast<std::size_t>(std::popcount(words[2])) +
             static_cast<std::size_t>(std::popcount(words[3]));
  }
  for (std::size_t i = n4; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

double avx2_fenwick_rebuild(double* w, double* tree, std::size_t n,
                            double divisor) {
  return detail::fenwick_rebuild_impl(
      w, tree, n, divisor, [](double* wp, double d) {
        _mm256_storeu_pd(
            wp, _mm256_div_pd(_mm256_loadu_pd(wp), _mm256_set1_pd(d)));
      });
}

constexpr WeightKernels kAvx2Kernels = {
    avx2_pow_update,
    avx2_exp_update,
    avx2_max_reduce,
    avx2_argmax,
    avx2_scale_divide,
    detail::materialize_affine_portable,
    avx2_materialize_counts,
    avx2_mask_or_gather,
    avx2_popcount_and,
    avx2_fenwick_rebuild,
    "avx2",
};

}  // namespace

const WeightKernels* avx2_kernels() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  // Compiled-in support still needs the running CPU to report AVX2.
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &kAvx2Kernels : nullptr;
#else
  return nullptr;
#endif
}

}  // namespace mwr::util::simd

#else  // !MWR_SIMD_AVX2

namespace mwr::util::simd {

const WeightKernels* avx2_kernels() noexcept { return nullptr; }

}  // namespace mwr::util::simd

#endif  // MWR_SIMD_AVX2
