// Structure-of-arrays weight kernels — the vectorized hot loop under every
// MWU learner (DESIGN.md §12).
//
// The per-arm learner state (weights, reward counts, probabilities) lives in
// contiguous double arrays; these kernels are the only code that walks them
// on the per-cycle path.  Two implementations exist: a portable scalar one
// and an AVX2 one (weight_kernels_avx2.cpp, compiled with -mavx2 in its own
// TU), selected once per process by runtime dispatch (cpuid).  The pair is
// **bit-identical by contract**:
//
//  - Elementwise kernels (scale_divide, materialize_*) perform exactly one
//    IEEE-754 operation sequence per element — multiply, divide, add, in a
//    fixed order with FMA contraction disabled — so lane width cannot change
//    any result bit.
//  - max_reduce / argmax exploit that max() is exactly associative and
//    commutative over non-NaN doubles; argmax preserves std::max_element's
//    first-occurrence tie-breaking (lane-local strictly-greater updates,
//    lowest index among lanes at the global maximum).
//  - pow_update / exp_update vectorize only the search for active entries
//    (exponent > 0); the transcendental itself is the same libm call on
//    both paths, so every multiplication is identical.
//  - sum_seq / normalize_sum keep the historical strict left-to-right
//    fold: THE reduction-order contract.  Reassociating the sum (lane
//    partials) would perturb normalization totals by ulps and with them
//    every downstream probability and draw; these two therefore share one
//    scalar definition across dispatch and are bit-identical by
//    construction.  The throughput win comes from the passes that can
//    vectorize without reordering arithmetic.
//
// Dispatch: AVX2 when the CPU reports it, unless MWR_FORCE_SCALAR is set in
// the environment (any value except "0" / empty) or a tool passed
// --force-scalar.  Tests flip dispatch at runtime via
// force_scalar_for_testing() to pin scalar<->AVX2 trajectory identity.
//
// Direct intrinsics use outside src/util/simd/ is banned by the raw-simd
// lint rule (tools/mwr_lint.py), mirroring raw-ipc: every SIMD loop must
// live behind this dispatch seam so the bit-identity contract stays
// auditable in one place.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mwr::util::simd {

/// The dispatch table: one function pointer per kernel.  All pointers are
/// always non-null.  `n` may be 0 for every kernel except max_reduce and
/// argmax, which require n >= 1.
struct WeightKernels {
  /// w[i] *= pow(base, exps[i]) for every i with exps[i] > 0.
  void (*pow_update)(double* w, const double* exps, std::size_t n,
                     double base);
  /// w[i] *= exp(exps[i]) for every i with exps[i] > 0.
  void (*exp_update)(double* w, const double* exps, std::size_t n);
  /// Maximum element value (n >= 1; no NaNs).
  double (*max_reduce)(const double* w, std::size_t n);
  /// Index of the first maximum element — std::max_element semantics
  /// (n >= 1; no NaNs).
  std::size_t (*argmax)(const double* w, std::size_t n);
  /// w[i] /= divisor.
  void (*scale_divide)(double* w, std::size_t n, double divisor);
  /// dst[i] = scale * src[i] / denom + shift, evaluated in exactly that
  /// order with no FMA contraction.
  void (*materialize_affine)(double* dst, const double* src, std::size_t n,
                             double scale, double denom, double shift);
  /// dst[i] = double(src[i]) / denom.  Counts must be < 2^31 (the widening
  /// conversion is exact; the signed-lane AVX2 convert requires the bound).
  void (*materialize_counts)(double* dst, const std::uint32_t* src,
                             std::size_t n, double denom);
  /// OR-reduction of gathered 64-bit test masks: returns
  /// masks[idx[0]] | masks[idx[1]] | ... | masks[idx[n-1]].  Bitwise OR is
  /// exact and order-free, so the gathered AVX2 fold is trivially
  /// bit-identical to the scalar loop.  The probe wave's "broken tests"
  /// accumulation (DESIGN.md §14) runs on this.
  std::uint64_t (*mask_or_gather)(const std::uint64_t* masks,
                                  const std::uint32_t* idx, std::size_t n);
  /// Sum of popcount(a[i] & b[i]) over i — bitset intersection
  /// cardinality.  Integer AND + population count are exact, so dispatch
  /// cannot perturb the result.  The probe wave counts safe / relevant
  /// patch members against pool-membership bitmaps with this.
  std::size_t (*popcount_and)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
  /// The fused renormalize → Fenwick-rebuild pass: divides w by `divisor`
  /// in place (skipped exactly when divisor == 1.0), rebuilds the 1-based
  /// Fenwick tree (`tree` must hold n + 1 doubles; prior contents ignored)
  /// with the canonical linear construction order, and returns the strict
  /// left-to-right total of the divided weights.  Only the divide is
  /// lane-parallel; every tree and total add runs the same scalar sequence
  /// on both dispatches, so tree node values, the total, and with them all
  /// Fenwick draws are bit-identical to the unfused historical pass.
  double (*fenwick_rebuild)(double* w, double* tree, std::size_t n,
                            double divisor);
  /// Implementation name, for telemetry: "scalar" or "avx2".
  const char* name;
};

/// The active dispatch table (resolved once, overridable for tests).
[[nodiscard]] const WeightKernels& active() noexcept;

/// Strict left-to-right sum — the canonical reduction order.  Shared scalar
/// code on every dispatch (see the header comment for why).
[[nodiscard]] double sum_seq(const double* w, std::size_t n) noexcept;

/// Fused renormalization: w[i] /= divisor, returning the strict
/// left-to-right sum of the divided values.  Shared scalar code on every
/// dispatch — the fold is the reduction-order contract.
double normalize_sum(double* w, std::size_t n, double divisor) noexcept;

/// True when the CPU supports AVX2 and the AVX2 TU was compiled in.
[[nodiscard]] bool avx2_available() noexcept;

/// What --version reports: "avx2", "scalar", or "scalar (forced)".
[[nodiscard]] const char* dispatch_name() noexcept;

/// Re-resolves dispatch with scalar forced on/off.  Test hook — the
/// cross-dispatch bit-identity suites flip this between runs; production
/// code uses the MWR_FORCE_SCALAR environment variable instead.
void force_scalar_for_testing(bool force) noexcept;

/// The AVX2 table, or nullptr when the TU was built without AVX2 support.
/// Internal seam between the two translation units.
[[nodiscard]] const WeightKernels* avx2_kernels() noexcept;

namespace detail {

/// The one shared materialize_affine body: dst[i] = scale*src[i]/denom +
/// shift, one IEEE op sequence per element.  The pass is divide-bound —
/// vdivpd's reciprocal throughput dominates whatever lane-parallelism
/// buys — so both dispatch tables point here and the bench's
/// kernel_materialize row honestly reports ~1.0x instead of advertising a
/// vectorization that measured 0.99x.
inline void materialize_affine_portable(double* dst, const double* src,
                                        std::size_t n, double scale,
                                        double denom, double shift) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = (scale * src[i]) / denom + shift;
  }
}

/// Single-source Fenwick construction shared by both dispatch TUs (each
/// instantiates it with its own 4-wide divide; that divide is the only
/// lane-parallel step).  The bottom two tree levels are register-blocked:
/// odd nodes and lsb-2 nodes are pure functions of their 4-element block,
/// so only the lsb>=4 node per block touches memory it did not just write —
/// this removes the store-to-load-forwarding chain of the one-node-at-a-time
/// build while performing the same additions in the same order.  The total
/// is the strict left-to-right fold (the reduction-order contract).
template <typename Div4>
inline double fenwick_rebuild_impl(double* w, double* tree, std::size_t n,
                                   double divisor, Div4&& div4) {
  tree[0] = 0.0;
  // Only nodes with lsb >= 4 (1-based index divisible by 4) accumulate
  // pushes from earlier blocks; they and the sub-block tail are the only
  // slots that need pre-zeroing.  Everything else is stored outright.
  for (std::size_t i = 4; i <= n; i += 4) tree[i] = 0.0;
  const std::size_t nblk = n & ~std::size_t{3};
  for (std::size_t i = nblk + 1; i <= n; ++i) tree[i] = 0.0;
  const bool divide = divisor != 1.0;
  double total = 0.0;
  std::size_t b = 1;
  for (; b + 3 <= n; b += 4) {
    double* wp = w + (b - 1);
    if (divide) div4(wp, divisor);
    const double w0 = wp[0];
    const double w1 = wp[1];
    const double w2 = wp[2];
    const double w3 = wp[3];
    const double t1 = w0;
    const double t2 = t1 + w1;
    const double t3 = w2;
    const double t4 = ((tree[b + 3] + t2) + t3) + w3;
    tree[b] = t1;
    tree[b + 1] = t2;
    tree[b + 2] = t3;
    tree[b + 3] = t4;
    const std::size_t node = b + 3;
    const std::size_t parent = node + (node & (~node + 1));
    if (parent <= n) tree[parent] += t4;
    total = (((total + w0) + w1) + w2) + w3;
  }
  // Tail (< 4 elements): the historical one-node-at-a-time construction.
  for (std::size_t i = b; i <= n; ++i) {
    if (divide) w[i - 1] /= divisor;
    tree[i] += w[i - 1];
    const std::size_t parent = i + (i & (~i + 1));
    if (parent <= n) tree[parent] += tree[i];
    total += w[i - 1];
  }
  return total;
}

}  // namespace detail

}  // namespace mwr::util::simd
