#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "obs/registry.hpp"
#include "util/build_info.hpp"

namespace mwr::util {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_int(const std::string& name, std::int64_t default_value,
                  const std::string& help) {
  Entry e;
  e.kind = Kind::kInt;
  e.help = help;
  e.int_value = default_value;
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

void Cli::add_double(const std::string& name, double default_value,
                     const std::string& help) {
  Entry e;
  e.kind = Kind::kDouble;
  e.help = help;
  e.double_value = default_value;
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

void Cli::add_string(const std::string& name, std::string default_value,
                     const std::string& help) {
  Entry e;
  e.kind = Kind::kString;
  e.help = help;
  e.string_value = std::move(default_value);
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  Entry e;
  e.kind = Kind::kFlag;
  e.help = help;
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg == "--version") {
      // Program name = first word of the description ("bench_regret — ...").
      const auto cut = description_.find_first_of(" —");
      std::cout << build_info_line(description_.substr(0, cut)) << "\n";
      return false;
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument: " + arg);
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = entries_.find(name);
    if (it == entries_.end())
      throw std::invalid_argument("unknown flag: --" + name);
    Entry& e = it->second;
    if (e.kind == Kind::kFlag) {
      if (has_inline)
        throw std::invalid_argument("switch --" + name + " takes no value");
      e.flag_value = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("flag --" + name + " needs a value");
      value = argv[++i];
    }
    switch (e.kind) {
      case Kind::kInt: {
        char* end = nullptr;
        e.int_value = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
          throw std::invalid_argument("flag --" + name +
                                      " expects an integer, got: " + value);
        break;
      }
      case Kind::kDouble: {
        char* end = nullptr;
        e.double_value = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
          throw std::invalid_argument("flag --" + name +
                                      " expects a number, got: " + value);
        break;
      }
      case Kind::kString:
        e.string_value = value;
        break;
      case Kind::kFlag:
        break;  // handled above
    }
  }
  return true;
}

const Cli::Entry& Cli::lookup(const std::string& name, Kind kind) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::logic_error("flag never registered: --" + name);
  if (it->second.kind != kind)
    throw std::logic_error("flag --" + name + " accessed with wrong type");
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return lookup(name, Kind::kInt).int_value;
}

double Cli::get_double(const std::string& name) const {
  return lookup(name, Kind::kDouble).double_value;
}

const std::string& Cli::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).string_value;
}

bool Cli::get_flag(const std::string& name) const {
  return lookup(name, Kind::kFlag).flag_value;
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << description_ << "\n[" << build_info_line("built as") << "]"
      << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    out << "  --" << name;
    switch (e.kind) {
      case Kind::kInt:
        out << " N (default " << e.int_value << ")";
        break;
      case Kind::kDouble:
        out << " X (default " << e.double_value << ")";
        break;
      case Kind::kString:
        out << " S (default \"" << e.string_value << "\")";
        break;
      case Kind::kFlag:
        break;
    }
    out << "\n      " << e.help << "\n";
  }
  return out.str();
}

void add_standard_bench_flags(Cli& cli) {
  cli.add_flag("full", "run at paper scale (100 seeds, sizes to 16384)");
  cli.add_int("seeds", 5, "replications per table cell");
  cli.add_int("max-size", 1024, "largest dataset instance size");
  cli.add_string("csv", "", "also write the table as CSV to this path");
  cli.add_int("seed", 20210525, "master seed for all replications");
  cli.add_int("threads", 4, "worker threads for the parallel substrates");
  cli.add_int("max-population", 0,
              "override the Distributed population cap (0 = paper default); "
              "raising it makes Table II's '—' cells runnable via the "
              "superstep engine");
}

void add_metrics_flag(Cli& cli) {
  cli.add_string("metrics-out", "",
                 "write a metrics JSON snapshot to this path at exit");
}

bool write_metrics_if_requested(const Cli& cli) {
  const std::string& path = cli.get_string("metrics-out");
  if (path.empty()) return false;
  obs::MetricsRegistry::global().write_json(path);
  return true;
}

}  // namespace mwr::util
