#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mwr::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty span");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile q out of [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.mean();
}

double stddev_of(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(lo < hi)) throw std::invalid_argument("Histogram needs lo < hi");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::bin_fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin_count(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    out << "[" << bin_center(b) << "] " << std::string(bar, '#') << " "
        << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace mwr::util
