// Fenwick-tree (binary indexed tree) weighted sampler — the O(log k)
// replacement for the linear-scan weighted draw on the MWU hot path.
//
// Every MWU cycle draws one option per agent from the current weight
// vector.  RngStream::weighted_choice is a linear scan, so a cycle costs
// O(n * k); at Table II scale (k up to 2^14, n = 64, up to 10^4 cycles)
// that scan dominates the run.  A Fenwick tree over the weights answers
// the same inverse-CDF query in O(log k) per draw and supports O(log k)
// point updates plus an O(k) bulk rebuild, so a cycle becomes
// O(n log k + k) — the rebuild is no more expensive than the per-cycle
// weight renormalization the algorithms already perform.
//
// Semantics match the linear scan exactly: find(target) returns the
// smallest index i whose inclusive prefix sum exceeds target, and
// sample(rng) consumes exactly one rng.uniform() to draw index i with
// probability weight_i / total.  Below kLinearCutoff options, sample()
// uses the sequential subtraction scan itself — at that size the
// contiguous scan is faster than log-depth dependent loads, and it keeps
// the drawn index bit-identical to RngStream::weighted_choice (small-k
// configurations reproduce their historical trajectories exactly).
// Above the cutoff the binary descent takes over; there the returned
// index is still bit-identical whenever the partial sums are exactly
// representable (e.g. integer-valued weights), and with general doubles
// the two scans may differ only on targets within one rounding error of
// a bucket boundary, which perturbs the sampled distribution by less
// than 2^-52 per option.  weighted_choice remains in the library as the
// reference implementation the equivalence tests compare against.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace mwr::util {

class FenwickSampler {
 public:
  /// Below this many options sample() runs the sequential linear scan:
  /// faster at small k (one contiguous pass beats log-depth dependent
  /// loads) and draw-for-draw identical to the historical weighted_choice
  /// path.
  static constexpr std::size_t kLinearCutoff = 128;

  FenwickSampler() = default;

  /// Builds the tree over `weights` (non-negative).  O(k).
  explicit FenwickSampler(std::span<const double> weights);

  /// Replaces the whole weight vector in O(k) — one pass to copy and one
  /// linear Fenwick construction (no per-element log-factor).
  void rebuild(std::span<const double> weights);

  /// Fused renormalize + rebuild: divides every stored weight by `divisor`
  /// (via the dispatched SIMD kernel) and reconstructs the tree and total
  /// in place, without copying the weight vector.  The total is the same
  /// strict left-to-right fold rebuild() produces, so trajectories are
  /// unchanged.  O(k), one pass over the weights instead of three.
  void rebuild_in_place(double divisor);

  /// Rebuilds the tree and total from the current weights after the caller
  /// mutated them through mutable_weights().  O(k).
  void rebuild_in_place();

  /// The raw weight vector (canonical SoA storage for learners that keep
  /// their per-arm state here instead of a duplicate array).
  [[nodiscard]] const std::vector<double>& raw_weights() const noexcept {
    return weights_;
  }

  /// Mutable view of the raw weights for in-place kernel passes.  The tree
  /// and total are stale until the caller invokes rebuild_in_place().
  [[nodiscard]] std::span<double> mutable_weights() noexcept {
    return weights_;
  }

  /// Point update: sets weight `index` to `value`.  O(log k).
  void update(std::size_t index, double value);

  [[nodiscard]] std::size_t size() const noexcept { return weights_.size(); }
  [[nodiscard]] bool empty() const noexcept { return weights_.empty(); }

  /// The current weight at `index` (no bounds check beyond assert-level).
  [[nodiscard]] double weight(std::size_t index) const {
    return weights_[index];
  }

  /// Sum of all weights, accumulated left-to-right exactly like
  /// std::accumulate over the raw vector (kept in sync incrementally on
  /// update()).
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Sum of the first `count` weights.  O(log k).
  [[nodiscard]] double prefix_sum(std::size_t count) const;

  /// Smallest index i with prefix_sum(i + 1) > target — the inverse-CDF
  /// query.  Returns size() when target >= total (after zero-weight
  /// skipping, this can only happen through floating-point underrun; the
  /// sampling entry points below resolve it to the last positive weight,
  /// mirroring RngStream::weighted_choice).  O(log k).
  [[nodiscard]] std::size_t find(double target) const;

  /// Draws an index with probability weight_i / total using exactly one
  /// rng.uniform() call.  Returns size() only when the total weight is
  /// zero (caller bug), matching RngStream::weighted_choice.
  [[nodiscard]] std::size_t sample(RngStream& rng) const;

 private:
  /// Divides weights_ by `divisor` (1.0 skips the divide) and reconstructs
  /// the tree and total_ via the fused dispatch kernel.  O(k).
  void build_tree(double divisor);

  /// Index of the last strictly positive weight, for the floating-point
  /// underrun fallback.  size() when all weights are zero.
  [[nodiscard]] std::size_t last_positive() const;

  std::vector<double> tree_;     ///< 1-based Fenwick partial sums.
  std::vector<double> weights_;  ///< raw copy, for weight() and fallbacks.
  std::size_t top_bit_ = 0;      ///< highest power of two <= size().
  double total_ = 0.0;
};

}  // namespace mwr::util
