#include "util/fenwick_sampler.hpp"

#include "util/simd/weight_kernels.hpp"

namespace mwr::util {

FenwickSampler::FenwickSampler(std::span<const double> weights) {
  rebuild(weights);
}

void FenwickSampler::rebuild(std::span<const double> weights) {
  weights_.assign(weights.begin(), weights.end());
  build_tree(1.0);
}

void FenwickSampler::rebuild_in_place(double divisor) { build_tree(divisor); }

void FenwickSampler::rebuild_in_place() { build_tree(1.0); }

void FenwickSampler::build_tree(double divisor) {
  const std::size_t n = weights_.size();
  tree_.resize(n + 1);
  // Fused renormalize + linear Fenwick construction through the dispatched
  // kernel: same node values and the canonical left-to-right total fold as
  // the historical one-node-at-a-time build (the reduction-order contract,
  // util/simd/weight_kernels.hpp), one pass over the weights.
  total_ = simd::active().fenwick_rebuild(weights_.data(), tree_.data(), n,
                                          divisor);
  top_bit_ = 0;
  if (n > 0) {
    top_bit_ = 1;
    while ((top_bit_ << 1) <= n) top_bit_ <<= 1;
  }
}

void FenwickSampler::update(std::size_t index, double value) {
  const double delta = value - weights_[index];
  weights_[index] = value;
  total_ += delta;
  for (std::size_t i = index + 1; i <= weights_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

double FenwickSampler::prefix_sum(std::size_t count) const {
  double sum = 0.0;
  for (std::size_t i = count; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  return sum;
}

std::size_t FenwickSampler::find(double target) const {
  // Binary descent over the implicit prefix-sum function: after the loop,
  // `index` is the largest count whose prefix sum is <= target, which is
  // exactly the 0-based index of the entry that pushes the sum past it.
  // Zero-weight entries are skipped like the linear scan skips them (their
  // inclusion leaves the running prefix unchanged).
  std::size_t index = 0;
  double remaining = target;
  for (std::size_t step = top_bit_; step > 0; step >>= 1) {
    const std::size_t next = index + step;
    if (next <= weights_.size() && tree_[next] <= remaining) {
      remaining -= tree_[next];
      index = next;
    }
  }
  return index;
}

std::size_t FenwickSampler::last_positive() const {
  for (std::size_t i = weights_.size(); i-- > 0;) {
    if (weights_[i] > 0.0) return i;
  }
  return weights_.size();
}

std::size_t FenwickSampler::sample(RngStream& rng) const {
  if (total_ <= 0.0) return weights_.size();
  if (weights_.size() <= kLinearCutoff) {
    // Same arithmetic, in the same order, as RngStream::weighted_choice:
    // small-k draws are bit-identical to the historical linear path.
    double target = rng.uniform() * total_;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      target -= weights_[i];
      if (target < 0.0) return i;
    }
    return last_positive();
  }
  const std::size_t index = find(rng.uniform() * total_);
  // Floating-point underrun: uniform() < 1 guarantees target < total_, but
  // the tree's block sums can round the other way; the residual mass
  // belongs to the last positive-weight entry (same rule as the linear
  // reference implementation).
  if (index >= weights_.size()) return last_positive();
  return index;
}

}  // namespace mwr::util
