#include "util/build_info.hpp"

#include <sstream>

#include "util/simd/weight_kernels.hpp"

// The CMake configuration stamps these onto mwr_util; default them so the
// TU still compiles standalone (e.g. under -fsyntax-only checks).
#ifndef MWR_BUILD_VERSION
#define MWR_BUILD_VERSION "0.0.0"
#endif
#ifndef MWR_BUILD_SANITIZE
#define MWR_BUILD_SANITIZE ""
#endif
#ifndef MWR_BUILD_THREAD_SAFETY
#define MWR_BUILD_THREAD_SAFETY 0
#endif
#ifndef MWR_BUILD_TYPE
#define MWR_BUILD_TYPE "unknown"
#endif

namespace mwr::util {

const char* version() { return MWR_BUILD_VERSION; }

const char* sanitizers() { return MWR_BUILD_SANITIZE; }

bool thread_safety_analysis() { return MWR_BUILD_THREAD_SAFETY != 0; }

std::string compiler() {
  std::ostringstream out;
#if defined(__clang__)
  out << "clang " << __clang_major__ << "." << __clang_minor__ << "."
      << __clang_patchlevel__;
#elif defined(__GNUC__)
  out << "gcc " << __GNUC__ << "." << __GNUC_MINOR__ << "."
      << __GNUC_PATCHLEVEL__;
#else
  out << "unknown";
#endif
  return out.str();
}

const char* build_type() { return MWR_BUILD_TYPE; }

const char* simd_dispatch() { return simd::dispatch_name(); }

std::string build_info_line(const std::string& tool_name) {
  std::ostringstream out;
  out << tool_name << " mwrepair/" << version() << " (" << compiler() << ", "
      << build_type() << ", sanitize=";
  const char* san = sanitizers();
  out << (san[0] != '\0' ? san : "none");
  out << ", thread-safety-analysis="
      << (thread_safety_analysis() ? "on" : "off") << ", simd="
      << simd_dispatch() << ")";
  return out.str();
}

}  // namespace mwr::util
