// Clang Thread Safety Analysis attribute macros (MWR_ prefix).
//
// The concurrent structures in this tree (parallel substrate, oracle cache,
// metrics registry, logger) declare their lock discipline with these macros
// so a Clang build with -Werror=thread-safety proves — at compile time —
// that every access to guarded state happens under the right capability.
// The runtime sanitizer jobs (TSan) only witness the interleavings a test
// happens to execute; the analysis covers all of them, which is what the
// paper's reproducibility claims (bit-identical trajectories at any worker
// count) actually require.
//
// On non-Clang compilers every macro expands to nothing, so the annotations
// are free documentation.  Use them through the wrappers in util/sync.hpp
// (util::Mutex, util::CondVar, util::MutexLock); naked std::mutex use in
// src/ is rejected by tools/mwr_lint.py.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define MWR_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MWR_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a type as a capability (a lock).  The string names the capability
/// kind in diagnostics ("mutex").
#define MWR_CAPABILITY(x) MWR_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define MWR_SCOPED_CAPABILITY MWR_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define MWR_GUARDED_BY(x) MWR_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define MWR_PT_GUARDED_BY(x) MWR_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define MWR_ACQUIRE(...) \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define MWR_RELEASE(...) \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success value.
#define MWR_TRY_ACQUIRE(...) \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define MWR_REQUIRES(...) \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock-ordering declaration:
/// the function acquires it itself, so entering with it held self-locks).
#define MWR_EXCLUDES(...) \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held, injected into the static
/// analysis state (for control flow the analyzer cannot follow, e.g. a
/// fiber resuming on the far side of a coop-scheduler suspension).
#define MWR_ASSERT_CAPABILITY(x) \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the given capability.
#define MWR_RETURN_CAPABILITY(x) \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis for one function.  Not used in
/// src/parallel/ (acceptance: wrapper-level annotations only); anywhere
/// else a use must explain itself.
#define MWR_NO_THREAD_SAFETY_ANALYSIS \
  MWR_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
