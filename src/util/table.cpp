#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mwr::util {

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty())
    throw std::logic_error("Table::set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table row width != header width");
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

std::size_t Table::rows() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(rows_.begin(), rows_.end(),
                    [](const auto& r) { return !r.empty(); }));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  const auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream out;
  out << "=== " << title_ << " ===\n" << rule << render_row(header_) << rule;
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << rule;
    } else {
      out << render_row(row);
    }
  }
  out << rule;
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  return out + "\"";
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << ",";
    out << csv_escape(header_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << csv_escape(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

void Table::emit(std::ostream& os, const std::string& csv_path) const {
  os << to_ascii() << "\n";
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    if (!f) throw std::runtime_error("cannot open CSV output: " + csv_path);
    f << to_csv();
  }
}

std::string fmt_mean_sd(double mean, double sd, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << mean << " (" << sd << ")";
  return out.str();
}

std::string fmt_fixed(double x, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << x;
  return out.str();
}

std::string fmt_capped(double value, double cap, int precision) {
  if (value >= cap) {
    std::ostringstream out;
    out << ">= " << std::fixed << std::setprecision(0) << cap;
    return out.str();
  }
  return fmt_fixed(value, precision);
}

}  // namespace mwr::util
