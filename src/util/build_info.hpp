// Build-configuration introspection for `--version` output.
//
// Sanitizer and static-analysis configuration changes what a binary's
// numbers mean (TSan slows the parallel substrates ~10x; ASan shifts
// allocation patterns), so every bench/example binary self-reports how
// it was built.  Values are burned in at compile time from the CMake
// configuration (MWR_BUILD_* definitions on mwr_util).
#pragma once

#include <string>

namespace mwr::util {

/// Project version string, e.g. "1.0.0".
[[nodiscard]] const char* version();

/// The MWR_SANITIZE cache value this binary was built with, e.g.
/// "address,undefined" or "thread"; empty when unsanitized.
[[nodiscard]] const char* sanitizers();

/// True when Clang thread-safety analysis (-Werror=thread-safety) was
/// active for this build (always false for GCC builds — the MWR_*
/// annotations compile away).
[[nodiscard]] bool thread_safety_analysis();

/// Compiler id/version, e.g. "clang 17.0.6" or "gcc 12.2.0".
[[nodiscard]] std::string compiler();

/// CMake build type, e.g. "Release".
[[nodiscard]] const char* build_type();

/// Active weight-kernel dispatch path, e.g. "avx2", "scalar", or
/// "scalar (forced)" under MWR_FORCE_SCALAR=1.  Resolved at runtime —
/// unlike the other fields this can differ between two runs of the
/// same binary, which is exactly why --version must report it.
[[nodiscard]] const char* simd_dispatch();

/// One-line, machine-greppable summary:
///   "<tool> mwrepair/<version> (<compiler>, <build_type>,
///    sanitize=<list|none>, thread-safety-analysis=<on|off>,
///    simd=<dispatch>)"
[[nodiscard]] std::string build_info_line(const std::string& tool_name);

}  // namespace mwr::util
