// Streaming and batch statistics used throughout the evaluation harness.
//
// RunningStats implements Welford's online algorithm so per-seed experiment
// results can be folded into mean/stddev without retaining the samples —
// Tables II and III report exactly these two moments over 100 replications.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mwr::util {

/// Numerically-stable streaming mean/variance (Welford).  Also tracks
/// min/max.  Merging two accumulators (parallel reduction) is supported via
/// `merge`, using the Chan et al. pairwise update.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Folds another accumulator into this one.
  void merge(const RunningStats& other) noexcept;

  /// Rebuilds an accumulator from its exported moments (m2 = variance *
  /// (count - 1)).  Used to carry statistics across process boundaries —
  /// a worker exports count/mean/m2/min/max through its result slot and
  /// the launcher reconstructs the identical accumulator.
  [[nodiscard]] static RunningStats from_moments(std::size_t count,
                                                double mean, double m2,
                                                double min,
                                                double max) noexcept {
    RunningStats s;
    s.n_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile (linear interpolation between closest ranks).
/// q in [0, 1].  The input span is copied; the original order is preserved.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Arithmetic mean of a span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Sample standard deviation of a span (0 for fewer than two samples).
[[nodiscard]] double stddev_of(std::span<const double> xs) noexcept;

/// Fixed-width histogram over [lo, hi); samples outside the range clamp to
/// the edge bins.  Used by the congestion validation and Fig 4 benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Center of the given bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Fraction of mass in the given bin (0 when empty).
  [[nodiscard]] double bin_fraction(std::size_t bin) const;
  /// Renders a terminal bar chart, `width` characters at the widest bar.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mwr::util
