// Table rendering for the benchmark harness.
//
// Every bench binary reproduces one of the paper's tables or figures and
// prints it in the same row/column layout the paper uses; Table supports
// aligned ASCII output for the terminal and CSV output for downstream
// plotting.  Cells are strings — formatting helpers cover the paper's
// "mean (sd)" and ">= 10000" cell styles.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mwr::util {

/// A simple column-aligned table with a title and a header row.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a row; its width must match the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a visual separator (rendered as a rule in ASCII output and
  /// skipped in CSV output).  Used between dataset families, matching the
  /// paper's grouped tables.
  void add_separator();

  [[nodiscard]] std::size_t rows() const noexcept;
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Renders an aligned ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Prints ASCII to the stream and, when csv_path is non-empty, writes the
  /// CSV rendering to that file (throws std::runtime_error on I/O failure).
  void emit(std::ostream& os, const std::string& csv_path = "") const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats the paper's "mean (sd)" cell, e.g. "94.5 (5.6)".
[[nodiscard]] std::string fmt_mean_sd(double mean, double sd, int precision = 1);

/// Formats a double with fixed precision.
[[nodiscard]] std::string fmt_fixed(double x, int precision = 1);

/// Formats a count, using the paper's ">= LIMIT" style when the value hit
/// the iteration cap.
[[nodiscard]] std::string fmt_capped(double value, double cap, int precision = 0);

}  // namespace mwr::util
