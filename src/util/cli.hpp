// Uniform command-line handling for the bench and example binaries.
//
// Every bench target supports the same knobs (see DESIGN.md §4):
//   --full          paper-scale configuration (100 seeds, sizes to 16384)
//   --seeds N       number of replications per cell
//   --max-size N    cap on dataset instance size
//   --csv FILE      also write the reproduced table as CSV
//   --seed N        master seed
//   --threads N     worker threads for the parallel substrates
// plus per-binary extras registered through `add_*` before parse().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mwr::util {

/// Minimal declarative flag parser.  Unknown flags are an error (a typo'd
/// flag silently falling back to defaults would corrupt an experiment).
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Registers an integer flag with a default.
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  /// Registers a floating-point flag with a default.
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  /// Registers a string flag with a default.
  void add_string(const std::string& name, std::string default_value,
                  const std::string& help);
  /// Registers a boolean switch (present => true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  On "--help" prints usage, on "--version" prints the
  /// build-configuration line (compiler, sanitizers, thread-safety
  /// analysis — see util/build_info.hpp); both return false (caller
  /// should exit 0).  Throws std::invalid_argument on malformed input.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Entry {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool flag_value = false;
  };
  const Entry& lookup(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

/// Registers the standard bench flags listed above.
void add_standard_bench_flags(Cli& cli);

/// Registers `--metrics-out FILE` (default: disabled).  Binaries that
/// register it must call write_metrics_if_requested() before exiting.
void add_metrics_flag(Cli& cli);

/// Writes the global MetricsRegistry snapshot to the `--metrics-out`
/// path; no-op (returns false) when the flag was left empty.
bool write_metrics_if_requested(const Cli& cli);

}  // namespace mwr::util
