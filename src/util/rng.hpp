// Deterministic, splittable random number generation for parallel
// experiments.
//
// Library code never touches std::random_device: every stochastic component
// receives an explicit seed (or an RngStream split from a parent), so any
// experiment in the paper reproduction can be replayed bit-for-bit.  The
// generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64 as its
// authors recommend; streams handed to worker threads are derived with
// `split()`, which uses a SplitMix64 jump of the parent state so sibling
// streams are statistically independent.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace mwr::util {

/// SplitMix64: tiny, fast 64-bit generator used for seeding and stream
/// derivation.  Passes BigCrush when used as a seeder; not used directly for
/// sampling in experiments.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the workhorse generator.  64-bit output, 256-bit
/// state, period 2^256 - 1.  Satisfies UniformRandomBitGenerator so it can
/// be plugged into <random> distributions when convenient, although the
/// inline helpers below avoid the libstdc++ distribution objects in hot
/// loops (they are faster and their output is stable across platforms).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed = 0xdeadbeefULL) noexcept
      : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// The raw 256-bit state, for checkpointing a mid-run generator.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  /// Restores a state captured by state(); the next draw continues the
  /// captured sequence exactly.
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// RngStream: the interface the rest of the library consumes.  Wraps
/// xoshiro256** with the sampling helpers the MWU algorithms need
/// (unit-interval doubles, bounded integers, Bernoulli trials, weighted
/// choice) and supports splitting off independent child streams for worker
/// threads.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : gen_(seed), seed_(seed) {}

  /// The seed this stream was created with (for logging / provenance).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Raw 64 bits.
  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform double in [0, 1).  Uses the top 53 bits so every value is an
  /// exactly-representable dyadic rational — platform independent.
  double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound).  bound must be > 0.  Uses Lemire's
  /// multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t uniform_index(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the fast path a single multiplication.
    __uint128_t m = static_cast<__uint128_t>(gen_()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(gen_()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns weights.size() only if the total weight is zero (caller bug);
  /// the MWU implementations guard against that state.
  std::size_t weighted_choice(const std::vector<double>& weights) noexcept;

  /// Same, but the caller supplies the precomputed total (hot-loop variant).
  std::size_t weighted_choice(const std::vector<double>& weights,
                              double total) noexcept;

  /// Sample of `count` distinct indices from [0, population), uniform over
  /// count-subsets.  Always the partial-Fisher–Yates draw sequence (so
  /// seeded experiments are reproducible across versions); when
  /// count << population the permutation is kept sparsely in a hash map —
  /// O(count) time and memory instead of an O(population) iota vector per
  /// call.  count is clamped to population.
  std::vector<std::size_t> sample_without_replacement(std::size_t population,
                                                      std::size_t count) noexcept;

  /// Derives an independent child stream.  Children of the same parent are
  /// pairwise independent (distinct SplitMix64 outputs of the parent seed
  /// sequence), so handing one to each worker thread is safe.
  [[nodiscard]] RngStream split() noexcept {
    return RngStream(gen_() ^ 0xa5a5a5a5a5a5a5a5ULL);
  }

  /// Derives `n` child streams at once (convenience for fan-out).
  [[nodiscard]] std::vector<RngStream> split_n(std::size_t n) noexcept {
    std::vector<RngStream> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(split());
    return out;
  }

  /// Mid-run checkpoint: the generator's 256-bit state plus the original
  /// seed (kept so provenance survives a restore).  Restoring continues the
  /// draw sequence bit-identically from the capture point.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return gen_.state();
  }
  void restore(std::uint64_t seed,
               const std::array<std::uint64_t, 4>& state) noexcept {
    seed_ = seed;
    gen_.set_state(state);
  }

 private:
  Xoshiro256StarStar gen_;
  std::uint64_t seed_;
};

}  // namespace mwr::util
