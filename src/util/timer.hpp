// Wall-clock timing helpers for the bench harness.
//
// This container exposes a single core, so wall-clock numbers measure
// concurrency overhead rather than true parallel speedup; the cost-model
// module reports modeled cost for the paper's latency claims and these
// timers annotate the bench output for transparency.
#pragma once

#include <chrono>
#include <cstdint>

namespace mwr::util {

/// Monotonic stopwatch.  Starts on construction; restart() re-arms it.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsed_ms() const noexcept {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mwr::util
