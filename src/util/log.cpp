#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/sync.hpp"

namespace mwr::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
Mutex g_mutex;  // serializes whole lines onto stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_mutex);
  std::cerr << level_name(level) << " " << component << ": " << message << "\n";
}

}  // namespace mwr::util
