// Bug-scenario descriptors and the analytic repair surface behind them.
//
// The paper's ten APR datasets (five C scenarios from ManyBugs + units,
// five Java scenarios from Defects4J) are reduced — by the paper itself —
// to option-value distributions over "how many safe mutations to combine".
// We reconstruct those distributions from the two empirical regularities
// the paper establishes in §III-B:
//
//   pass_probability(x) — combining x individually-safe mutations keeps the
//       test suite passing with probability exp(-q * x(x-1)/2): each
//       unordered pair interferes independently with probability q
//       (Fig 4a's decaying curve; for gzip, > 50% survival at x = 80);
//   repair_density(x)   — the probability a combination of x safe mutations
//       repairs the bug AND passes the suite:
//       (1 - (1-p)^x) * pass_probability(x), p being the per-mutation
//       repair-relevance rate.  The product of a saturating term and a
//       decaying term is the unimodal curve of Fig 4b, with its mode
//       anywhere from 11 to 271 across programs.
//
// calibrate_interference() inverts the model: given p and a target mode it
// finds the q that puts the repair-density optimum there, which is how each
// named scenario pins its published optimum (gzip ≈ 48).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/option_set.hpp"

namespace mwr::datasets {

/// P(x combined safe mutations still pass the whole required suite).
[[nodiscard]] double pass_probability(double x, double interference);

/// P(x combined safe mutations constitute a repair): saturation * survival.
[[nodiscard]] double repair_density(double x, double repair_rate,
                                    double interference);

/// argmax over integer x in [1, x_max] of repair_density.
[[nodiscard]] std::size_t repair_optimum(double repair_rate,
                                         double interference,
                                         std::size_t x_max = 4096);

/// Finds the pairwise interference rate q that places repair_optimum at
/// `target_optimum` (bisection; repair-density mode decreases in q).
[[nodiscard]] double calibrate_interference(double repair_rate,
                                            std::size_t target_optimum);

/// Everything needed to materialize one named bug scenario, both as an MWU
/// option set (Tables II-IV) and as an APR program surrogate (MWRepair and
/// the §IV-G comparison).
struct ScenarioSpec {
  std::string name;
  std::string language;          ///< "C" or "Java".
  std::size_t options = 100;     ///< k — the size column of Tables II-IV.
  std::size_t statements = 2000; ///< program-model size.
  std::size_t tests = 20;        ///< required regression tests.
  double coverage = 0.6;         ///< fraction of statements the suite covers.
  double safe_rate = 0.55;       ///< P(single mutation passes the suite).
  double repair_rate = 0.03;     ///< p — per-safe-mutation repair relevance.
  std::size_t optimum = 48;      ///< target mode of the repair density.
  std::size_t min_repair_edits = 1;  ///< repair needs >= this many relevant
                                     ///< mutations combined (multi-edit bugs).
  double value_noise = 0.02;     ///< idiosyncratic per-option jitter.
  std::uint64_t seed = 1;        ///< scenario-level determinism.
  /// Which bug in this program the scenario targets.  Only the
  /// repair-relevance draw and the bug-inducing test depend on it: coverage,
  /// safety, and interference are program properties, so a safe-mutation
  /// pool precomputed once stays valid across every bug of the program —
  /// the amortization §III-C builds on (see apr/campaign.hpp).
  std::size_t bug_id = 0;
  /// When true, repair-relevant mutations exist only among statements the
  /// bug-inducing test executes (the realistic coupling fault localization
  /// exploits; see apr/fault_localization.hpp).  The per-statement
  /// relevance rate inside that region is scaled up so the overall
  /// relevance rate over all covered statements stays `repair_rate`.
  /// Default off: the paper's evaluation does not model localization.
  bool relevance_localized = false;

  /// The calibrated pairwise interference rate for this scenario.
  [[nodiscard]] double interference() const;

  /// The MWU option set: option i is the (scaled) repair-density proxy for
  /// combining count_for_option(i) mutations, plus jitter, normalized into
  /// (0, 1).  Scenarios of equal `options` but different parameters yield
  /// different distributions — the paper's Java datasets "have the same
  /// number of options, but vary in the distribution of values over them".
  [[nodiscard]] core::OptionSet option_set() const;

  /// Mutation count that MWU option i stands for.  Counts cover
  /// [1, 4 * optimum] (the unimodal support) across k options.
  [[nodiscard]] std::size_t count_for_option(std::size_t option) const;
};

/// The five C scenarios (ManyBugs + units) of §IV-A.
[[nodiscard]] std::vector<ScenarioSpec> c_scenarios();

/// The five Java scenarios (Defects4J) of §IV-A.
[[nodiscard]] std::vector<ScenarioSpec> java_scenarios();

/// Looks a scenario up by name across both benchmarks; throws
/// std::invalid_argument if unknown.
[[nodiscard]] ScenarioSpec scenario_by_name(const std::string& name);

}  // namespace mwr::datasets
