#include "datasets/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace mwr::datasets {

std::vector<std::size_t> synthetic_sizes() {
  return {64, 256, 1024, 4096, 16384};
}

core::OptionSet make_random(std::size_t size, std::uint64_t seed) {
  util::RngStream rng(seed);
  std::vector<double> values(size);
  for (auto& v : values) v = rng.uniform();
  return core::OptionSet("random" + std::to_string(size), std::move(values));
}

double unimodal_curve(double x, const UnimodalParams& params) {
  return params.a * x * std::exp(-params.b * x) + params.c;
}

core::OptionSet make_unimodal(std::size_t size, const UnimodalParams& params,
                              std::uint64_t noise_seed, double noise) {
  util::RngStream rng(noise_seed);
  std::vector<double> values(size);
  const auto k = static_cast<double>(size);
  for (std::size_t i = 0; i < size; ++i) {
    const double x = params.span * static_cast<double>(i) / k;
    values[i] = unimodal_curve(x, params);
    if (noise > 0.0) values[i] += noise * (rng.uniform() - 0.5);
  }
  if (params.rescale) {
    // Rescale into [floor, ceil] so every option keeps a usable Bernoulli
    // signal and the best value is bounded away from 1.
    const auto [lo_it, hi_it] =
        std::minmax_element(values.begin(), values.end());
    const double lo = *lo_it;
    const double range = std::max(*hi_it - lo, 1e-12);
    for (auto& v : values) {
      v = params.floor + (params.ceil - params.floor) * (v - lo) / range;
    }
  } else {
    // Raw curve, scaled down only if the peak escapes the unit interval.
    const double peak = *std::max_element(values.begin(), values.end());
    if (peak > 1.0) {
      for (auto& v : values) v /= peak;
    }
    for (auto& v : values) v = std::clamp(v, 0.0, 1.0);
  }
  return core::OptionSet("unimodal" + std::to_string(size), std::move(values));
}

core::OptionSet make_unimodal(std::size_t size, std::uint64_t seed) {
  util::RngStream rng(seed);
  UnimodalParams params;
  // a, b, c drawn uniformly as in the paper, with a and b bounded mildly
  // away from zero so every drawn instance keeps a resolvable peak (a
  // degenerate flat draw stalls every algorithm at the iteration cap, which
  // tells us nothing).  Each size draws fresh parameters, reproducing the
  // paper's per-size difficulty variance.
  params.a = rng.uniform(0.3, 1.0);
  params.c = rng.uniform(0.0, 0.6);
  params.b = rng.uniform(0.05, 1.0);
  params.span = static_cast<double>(size);  // raw option index as abscissa
  params.rescale = false;                   // the paper's raw-curve convention
  return make_unimodal(size, params, rng.next_u64(), /*noise=*/0.0);
}

}  // namespace mwr::datasets
