#include "datasets/suite.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "datasets/distributions.hpp"
#include "datasets/scenario.hpp"

namespace mwr::datasets {

std::vector<Dataset> standard_suite(std::uint64_t seed, std::size_t max_size) {
  std::vector<Dataset> suite;
  for (std::size_t size : synthetic_sizes()) {
    if (size > max_size) continue;
    suite.push_back({"random", make_random(size, seed ^ (size * 2654435761ULL))});
  }
  for (std::size_t size : synthetic_sizes()) {
    if (size > max_size) continue;
    suite.push_back(
        {"unimodal", make_unimodal(size, seed ^ (size * 40503ULL) ^ 0xffULL)});
  }
  for (const auto& spec : c_scenarios()) {
    if (spec.options > max_size) continue;
    suite.push_back({"C", spec.option_set()});
  }
  for (const auto& spec : java_scenarios()) {
    if (spec.options > max_size) continue;
    suite.push_back({"Java", spec.option_set()});
  }
  return suite;
}

void save_csv(const core::OptionSet& options, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_csv: cannot open " + path);
  f << std::setprecision(std::numeric_limits<double>::max_digits10);
  f << "option,value\n";
  for (std::size_t i = 0; i < options.size(); ++i) {
    f << i << "," << options.value(i) << "\n";
  }
  if (!f) throw std::runtime_error("save_csv: write failed for " + path);
}

core::OptionSet load_csv(const std::string& name, const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_csv: cannot open " + path);
  std::string line;
  if (!std::getline(f, line))
    throw std::runtime_error("load_csv: empty file " + path);
  std::vector<double> values;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos)
      throw std::runtime_error("load_csv: malformed row in " + path);
    values.push_back(std::stod(line.substr(comma + 1)));
  }
  return core::OptionSet(name, std::move(values));
}

}  // namespace mwr::datasets
