#include "datasets/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mwr::datasets {

double pass_probability(double x, double interference) {
  if (x <= 1.0) return 1.0;
  const double pairs = x * (x - 1.0) / 2.0;
  return std::exp(-interference * pairs);
}

double repair_density(double x, double repair_rate, double interference) {
  if (x < 1.0) return 0.0;
  const double saturation = 1.0 - std::pow(1.0 - repair_rate, x);
  return saturation * pass_probability(x, interference);
}

std::size_t repair_optimum(double repair_rate, double interference,
                           std::size_t x_max) {
  std::size_t best_x = 1;
  double best = repair_density(1.0, repair_rate, interference);
  for (std::size_t x = 2; x <= x_max; ++x) {
    const double d =
        repair_density(static_cast<double>(x), repair_rate, interference);
    if (d > best) {
      best = d;
      best_x = x;
    }
  }
  return best_x;
}

double calibrate_interference(double repair_rate, std::size_t target_optimum) {
  if (target_optimum == 0)
    throw std::invalid_argument("calibrate_interference: optimum must be >= 1");
  // The mode moves left as q grows; bisect q over a generous bracket.
  double lo = 1e-9;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric: q spans decades
    const std::size_t mode =
        repair_optimum(repair_rate, mid, 8 * target_optimum + 64);
    if (mode > target_optimum) {
      lo = mid;
    } else if (mode < target_optimum) {
      hi = mid;
    } else {
      return mid;
    }
  }
  return std::sqrt(lo * hi);
}

double ScenarioSpec::interference() const {
  return calibrate_interference(repair_rate, optimum);
}

std::size_t ScenarioSpec::count_for_option(std::size_t option) const {
  // Counts span [1, max(4 * optimum, k)]: the unimodal support, widened so
  // large instances give each option a distinct count.
  const std::size_t span = std::max<std::size_t>(4 * optimum, options);
  if (options == 1) return 1;
  const double t =
      static_cast<double>(option) / static_cast<double>(options - 1);
  return 1 + static_cast<std::size_t>(
                 std::lround(t * static_cast<double>(span - 1)));
}

core::OptionSet ScenarioSpec::option_set() const {
  const double q = interference();
  util::RngStream rng(seed ^ 0xabcdef12345ULL);
  std::vector<double> values(options);
  double peak = 0.0;
  for (std::size_t i = 0; i < options; ++i) {
    const auto x = static_cast<double>(count_for_option(i));
    values[i] = repair_density(x, repair_rate, q);
    peak = std::max(peak, values[i]);
  }
  constexpr double kFloor = 0.05;
  constexpr double kCeil = 0.95;
  for (auto& v : values) {
    v = kFloor + (kCeil - kFloor) * v / std::max(peak, 1e-300);
    v += value_noise * (rng.uniform() - 0.5);
    v = std::clamp(v, 0.0, 1.0);
  }
  return core::OptionSet(name, std::move(values));
}

std::vector<ScenarioSpec> c_scenarios() {
  std::vector<ScenarioSpec> specs;
  // Calibration targets follow §III-B/§IV-A: per-scenario optima fall in the
  // paper's observed 11..271 range, gzip's at 48 (Fig 4b); sizes match the
  // "Size" column of Tables II-IV.  lighttpd's low repair rate and libtiff's
  // two-edit repair reproduce the §IV-G baseline failures.
  specs.push_back({.name = "units",
                   .language = "C",
                   .options = 1000,
                   .statements = 500,
                   .tests = 6,
                   .coverage = 0.8,
                   .safe_rate = 0.55,
                   .repair_rate = 0.05,
                   .optimum = 23,
                   .min_repair_edits = 1,
                   .value_noise = 0.02,
                   .seed = 101});
  specs.push_back({.name = "gzip-2009-08-16",
                   .language = "C",
                   .options = 5000,
                   .statements = 6000,
                   .tests = 12,
                   .coverage = 0.55,
                   .safe_rate = 0.55,
                   .repair_rate = 0.03,
                   .optimum = 48,
                   .min_repair_edits = 1,
                   .value_noise = 0.02,
                   .seed = 102});
  specs.push_back({.name = "gzip-2009-09-26",
                   .language = "C",
                   .options = 2000,
                   .statements = 6000,
                   .tests = 12,
                   .coverage = 0.55,
                   .safe_rate = 0.55,
                   .repair_rate = 0.035,
                   .optimum = 44,
                   .min_repair_edits = 1,
                   .value_noise = 0.02,
                   .seed = 103});
  specs.push_back({.name = "libtiff-2005-12-14",
                   .language = "C",
                   .options = 100,
                   .statements = 8000,
                   .tests = 30,
                   .coverage = 0.45,
                   .safe_rate = 0.5,
                   .repair_rate = 0.008,
                   .optimum = 11,
                   .min_repair_edits = 2,  // multi-edit bug: single-edit
                                           // tools cannot repair it (§IV-G)
                   .value_noise = 0.03,
                   .seed = 104});
  specs.push_back({.name = "lighttpd-1806-1807",
                   .language = "C",
                   .options = 50,
                   .statements = 4000,
                   .tests = 15,
                   .coverage = 0.5,
                   .safe_rate = 0.5,
                   .repair_rate = 0.00015,  // sparse repairs: naive random
                                            // search exhausts its budget;
                                            // MWRepair reaches them through
                                            // its large amortized pool
                   .optimum = 14,
                   .min_repair_edits = 1,
                   .value_noise = 0.03,
                   .seed = 128});
  return specs;
}

std::vector<ScenarioSpec> java_scenarios() {
  // All five Java scenarios share k = 100 but differ in the distribution of
  // values over the options (§IV-A), i.e. in mode, sparsity, and jitter.
  std::vector<ScenarioSpec> specs;
  specs.push_back({.name = "Chart26",
                   .language = "Java",
                   .options = 100,
                   .statements = 3000,
                   .tests = 25,
                   .coverage = 0.6,
                   .safe_rate = 0.6,
                   .repair_rate = 0.03,
                   .optimum = 60,
                   .min_repair_edits = 1,
                   .value_noise = 0.01,
                   .seed = 201});
  specs.push_back({.name = "Closure13",
                   .language = "Java",
                   .options = 100,
                   .statements = 12000,
                   .tests = 40,
                   .coverage = 0.4,
                   .safe_rate = 0.5,
                   .repair_rate = 0.002,
                   .optimum = 35,
                   .min_repair_edits = 2,  // multi-edit Defects4J bug
                   .value_noise = 0.03,
                   .seed = 202});
  specs.push_back({.name = "Closure22",
                   .language = "Java",
                   .options = 100,
                   .statements = 12000,
                   .tests = 40,
                   .coverage = 0.4,
                   .safe_rate = 0.5,
                   .repair_rate = 0.01,
                   .optimum = 90,
                   .min_repair_edits = 1,
                   .value_noise = 0.02,
                   .seed = 203});
  specs.push_back({.name = "Math8",
                   .language = "Java",
                   .options = 100,
                   .statements = 5000,
                   .tests = 30,
                   .coverage = 0.65,
                   .safe_rate = 0.6,
                   .repair_rate = 0.04,
                   .optimum = 22,
                   .min_repair_edits = 1,
                   .value_noise = 0.015,
                   .seed = 204});
  specs.push_back({.name = "Math80",
                   .language = "Java",
                   .options = 100,
                   .statements = 5000,
                   .tests = 30,
                   .coverage = 0.65,
                   .safe_rate = 0.6,
                   .repair_rate = 0.008,
                   .optimum = 130,
                   .min_repair_edits = 1,
                   .value_noise = 0.01,
                   .seed = 205});
  return specs;
}

ScenarioSpec scenario_by_name(const std::string& name) {
  for (const auto& spec : c_scenarios()) {
    if (spec.name == name) return spec;
  }
  for (const auto& spec : java_scenarios()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown scenario: " + name);
}

}  // namespace mwr::datasets
