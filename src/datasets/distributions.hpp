// Synthetic dataset families for the MWU evaluation (paper §IV-A).
//
// Two generic families:
//   random   — each option value independently uniform on the unit
//              interval; "a proxy for the class of distributions where the
//              value of each option is not correlated with surrounding
//              options".  Larger instances are harder: more near-ties.
//   unimodal — values follow a * x * exp(-b * x) + c with a, b, c drawn
//              uniformly at random from the unit interval; "we have strong
//              evidence that most bug repair scenarios are unimodal"
//              (§III-B).
//
// Calibration note: the paper evaluates instance sizes 2^6 .. 2^14 with the
// same functional form at every size.  With x taken as the raw option index
// the peak location 1/b would almost always fall within the first handful
// of options; we therefore map the option index onto a fixed abscissa span
// (x in [0, 16]) so the drawn b places the mode anywhere in the instance,
// at every size.  Values are rescaled to [floor, ceil] inside the unit
// interval so the Bernoulli oracle stays informative.
#pragma once

#include <cstdint>
#include <vector>

#include "core/option_set.hpp"

namespace mwr::datasets {

/// Instance sizes used by the paper's synthetic sweeps: 2^6 .. 2^14.
[[nodiscard]] std::vector<std::size_t> synthetic_sizes();

/// iid-uniform option values.
[[nodiscard]] core::OptionSet make_random(std::size_t size, std::uint64_t seed);

/// Parameters of one unimodal draw (exposed so tests can pin the shape).
struct UnimodalParams {
  double a = 0.5;
  double b = 0.5;
  double c = 0.1;
  double span = 16.0;    ///< abscissa length the indices are mapped onto.
  /// When true, rescale values into [floor, ceil].  The paper uses the raw
  /// curve (values only scaled down when the peak exceeds 1), which leaves
  /// option values clustered in a narrow band — the source of the unimodal
  /// family's difficulty relative to random in Tables II/IV.
  bool rescale = true;
  double floor = 0.05;   ///< smallest rescaled value.
  double ceil = 0.95;    ///< largest rescaled value.
};

/// Draws a, b, c uniformly from the unit interval (b is kept away from zero
/// so the mode is finite) and materializes the curve over `size` options.
[[nodiscard]] core::OptionSet make_unimodal(std::size_t size,
                                            std::uint64_t seed);

/// Deterministic variant with explicit parameters.
[[nodiscard]] core::OptionSet make_unimodal(std::size_t size,
                                            const UnimodalParams& params,
                                            std::uint64_t noise_seed,
                                            double noise = 0.0);

/// The raw curve value a * x * exp(-b * x) + c.
[[nodiscard]] double unimodal_curve(double x, const UnimodalParams& params);

}  // namespace mwr::datasets
