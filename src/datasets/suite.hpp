// The twenty-dataset evaluation suite of Tables II-IV, plus CSV
// round-tripping so reproduced option sets can be archived and replotted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/option_set.hpp"

namespace mwr::datasets {

/// One evaluation dataset: the option set plus its table grouping.
struct Dataset {
  std::string family;  ///< "random", "unimodal", "C", or "Java".
  core::OptionSet options;
};

/// Builds the paper's full suite — 5 random + 5 unimodal (sizes 2^6..2^14)
/// + 5 C scenarios + 5 Java scenarios — deterministically from `seed`.
/// Instances larger than `max_size` options are skipped (the reduced
/// default configuration of the benches; --full passes 16384).
[[nodiscard]] std::vector<Dataset> standard_suite(std::uint64_t seed,
                                                  std::size_t max_size = 16384);

/// Writes an option set as two-column CSV (option,value).
void save_csv(const core::OptionSet& options, const std::string& path);

/// Reads an option set back from save_csv output.  Throws
/// std::runtime_error on I/O or parse failure.
[[nodiscard]] core::OptionSet load_csv(const std::string& name,
                                       const std::string& path);

}  // namespace mwr::datasets
