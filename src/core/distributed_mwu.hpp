// Distributed MWU (memoryless social-learning dynamics; paper Fig 3,
// after [12]).
//
// No shared weight vector exists: the distribution over options is encoded
// implicitly in the *popularity* of each option across a population of
// agents (O(1) memory per agent — Table I).  Each cycle every agent either
// samples a uniformly random option (probability mu) or observes the
// current choice of a uniformly random neighbor, evaluates the observed
// option once, and adopts it with probability beta on success or alpha on
// failure.
//
// The population must be large enough for the implicit weight vector to
// resolve k options without diversity collapsing — the paper's
// super-linear population rule (we use ceil(pop_scale * k^pop_exponent))
// is what renders the two largest instances intractable in Tables II-IV.
//
// Convergence is plurality-based: the paper uses 30% of the population
// holding the same choice, "a less demanding threshold, but reflects the
// maximum achievable given the inherent noise of the finite-population
// approximation ... and the probability of choosing a random option"
// (§IV-C).
#pragma once

#include <cstdint>
#include <vector>

#include "core/mwu.hpp"

namespace mwr::core {

class DistributedMwu final : public MwuStrategy {
 public:
  /// Throws std::invalid_argument on bad parameters and std::length_error
  /// when the required population exceeds config.max_population (callers
  /// that want the paper's "—" cells use distributed_population() to check
  /// first, or run_mwu(kind, ...) which reports `intractable`).
  explicit DistributedMwu(const MwuConfig& config);

  void init() override;
  [[nodiscard]] std::vector<std::size_t> sample(util::RngStream& rng) override;
  void update(std::span<const std::size_t> options,
              std::span<const double> rewards, util::RngStream& rng) override;
  [[nodiscard]] std::vector<double> probabilities() const override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::size_t best_option() const override;
  [[nodiscard]] std::size_t cpus_per_cycle() const override {
    return choices_.size();
  }
  [[nodiscard]] MwuKind kind() const override { return MwuKind::kDistributed; }

  [[nodiscard]] std::size_t population() const noexcept {
    return choices_.size();
  }

  /// Current choice of each agent — exposed for tests and the
  /// message-passing driver.
  [[nodiscard]] const std::vector<std::uint32_t>& choices() const noexcept {
    return choices_;
  }

  /// Replaces every agent's choice (checkpoint restore).  Throws
  /// std::invalid_argument on wrong population size or out-of-range option.
  void set_choices(const std::vector<std::uint32_t>& choices);

 private:
  MwuConfig config_;
  std::vector<std::uint32_t> choices_;       // C_j: agent j's current option
  std::vector<std::uint32_t> popularity_;    // count of agents per option
};

}  // namespace mwr::core
