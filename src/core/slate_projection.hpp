// Slate-selection machinery for the Slate MWU variant (paper Fig 2, §II-B/C).
//
// Selecting a size-s slate with per-option marginal probabilities requires
// (1) capping the weight distribution so no option demands inclusion
// probability above 1, and (2) realizing those marginals with a random
// s-subset.  The paper notes the naive projection over all C(k, s) subsets
// is hopeless and that the capped weight vector can instead be decomposed
// into a convex combination of slate vertices in O(k^2) time [17].
//
// We provide both halves:
//   - cap_to_slate_marginals: the capping/renormalization step, producing
//     q with 0 <= q_i <= 1 and sum(q) == s;
//   - decompose_into_slates: the explicit O(k^2) convex decomposition
//     (Warmuth–Kuzmin style), used by tests and by callers that need the
//     mixture itself;
//   - systematic_sample: the O(k) sampler equivalent to drawing one slate
//     from that mixture, used in the hot loop.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace mwr::core {

/// One vertex of the slate simplex with its mixture coefficient.
struct SlateComponent {
  double coefficient = 0.0;              ///< convex weight, in (0, 1].
  std::vector<std::size_t> members;      ///< exactly s distinct options.
};

/// Caps and renormalizes a probability distribution `p` (sum 1) into slate
/// inclusion marginals `q`: q_i in [0, 1], sum(q) = s, and q proportional
/// to p below the cap.  Requires 1 <= s <= p.size().  Iterates the
/// cap-and-rescale fixpoint, which terminates in at most k rounds.
[[nodiscard]] std::vector<double> cap_to_slate_marginals(
    std::span<const double> p, std::size_t slate_size);

/// Decomposes marginals q (0 <= q_i <= 1, sum = s) into a convex combination
/// of s-subsets: sum over components of coefficient * indicator(members)
/// reproduces q, and the coefficients sum to 1.  At most 2k components;
/// O(k^2 log k) time.  Throws std::invalid_argument on infeasible input.
[[nodiscard]] std::vector<SlateComponent> decompose_into_slates(
    std::span<const double> q, std::size_t slate_size);

/// Draws one s-subset whose inclusion probabilities equal q, using circular
/// systematic sampling (equivalent to sampling a component of the convex
/// decomposition by its coefficient).  Always returns exactly s distinct
/// indices.
[[nodiscard]] std::vector<std::size_t> systematic_sample(
    std::span<const double> q, std::size_t slate_size, util::RngStream& rng);

}  // namespace mwr::core
