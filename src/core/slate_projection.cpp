#include "core/slate_projection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mwr::core {

std::vector<double> cap_to_slate_marginals(std::span<const double> p,
                                           std::size_t slate_size) {
  const std::size_t k = p.size();
  const auto s = static_cast<double>(slate_size);
  if (slate_size == 0 || slate_size > k)
    throw std::invalid_argument("cap_to_slate_marginals: bad slate size");

  std::vector<double> q(p.begin(), p.end());
  std::vector<bool> capped(k, false);
  std::size_t num_capped = 0;
  // Fixpoint: scale the uncapped mass to fill (s - num_capped), cap anything
  // that overflows 1, repeat.  Each round caps at least one new entry, so at
  // most k rounds run.
  for (;;) {
    double uncapped_mass = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      if (!capped[i]) uncapped_mass += q[i];
    }
    const double target = s - static_cast<double>(num_capped);
    if (target <= 0.0) {
      // All slate slots are consumed by capped entries; zero the rest.
      for (std::size_t i = 0; i < k; ++i) {
        if (!capped[i]) q[i] = 0.0;
      }
      break;
    }
    if (uncapped_mass <= 0.0) {
      // Degenerate distribution (all mass capped or zero): spread the
      // remaining slots uniformly over uncapped entries.
      const double fill =
          target / static_cast<double>(k - num_capped);
      for (std::size_t i = 0; i < k; ++i) {
        if (!capped[i]) q[i] = fill;
      }
      break;
    }
    const double scale = target / uncapped_mass;
    bool newly_capped = false;
    for (std::size_t i = 0; i < k; ++i) {
      if (capped[i]) continue;
      const double scaled = q[i] * scale;
      if (scaled >= 1.0) {
        q[i] = 1.0;
        capped[i] = true;
        ++num_capped;
        newly_capped = true;
      }
    }
    if (!newly_capped) {
      for (std::size_t i = 0; i < k; ++i) {
        if (!capped[i]) q[i] *= scale;
      }
      break;
    }
  }
  return q;
}

std::vector<SlateComponent> decompose_into_slates(std::span<const double> q,
                                                  std::size_t slate_size) {
  const std::size_t k = q.size();
  const auto s = static_cast<double>(slate_size);
  if (slate_size == 0 || slate_size > k)
    throw std::invalid_argument("decompose_into_slates: bad slate size");
  double total = 0.0;
  for (double v : q) {
    if (v < -1e-12 || v > 1.0 + 1e-12)
      throw std::invalid_argument("decompose_into_slates: q_i outside [0, 1]");
    total += v;
  }
  if (std::abs(total - s) > 1e-6 * s)
    throw std::invalid_argument("decompose_into_slates: sum(q) != slate size");

  std::vector<double> v(q.begin(), q.end());
  double remaining = 1.0;  // invariant: sum(v) == slate_size * remaining
  std::vector<SlateComponent> components;
  std::vector<std::size_t> order(k);

  constexpr double kEps = 1e-12;
  while (remaining > kEps) {
    // Select the slate_size largest entries.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(slate_size),
                      order.end(),
                      [&](std::size_t a, std::size_t b) { return v[a] > v[b]; });
    SlateComponent component;
    component.members.assign(order.begin(),
                             order.begin() +
                                 static_cast<std::ptrdiff_t>(slate_size));
    std::sort(component.members.begin(), component.members.end());
    // Coefficient: limited by the smallest selected entry (it may reach 0)
    // and by keeping every unselected entry <= the new remaining mass.
    double smallest_selected = v[component.members.front()];
    for (std::size_t i : component.members)
      smallest_selected = std::min(smallest_selected, v[i]);
    double largest_unselected = 0.0;
    for (std::size_t i = slate_size; i < k; ++i)
      largest_unselected = std::max(largest_unselected, v[order[i]]);
    double c = std::min(smallest_selected, remaining - largest_unselected);
    c = std::min(c, remaining);
    if (c <= kEps) {
      // Numerical corner: residual mass is noise; emit the final component.
      c = remaining;
    }
    component.coefficient = c;
    for (std::size_t i : component.members) v[i] = std::max(0.0, v[i] - c);
    remaining -= c;
    components.push_back(std::move(component));
    if (components.size() > 2 * k + 2)
      throw std::logic_error("decompose_into_slates failed to terminate");
  }
  return components;
}

std::vector<std::size_t> systematic_sample(std::span<const double> q,
                                           std::size_t slate_size,
                                           util::RngStream& rng) {
  const std::size_t k = q.size();
  if (slate_size == 0 || slate_size > k)
    throw std::invalid_argument("systematic_sample: bad slate size");
  std::vector<std::size_t> selected;
  selected.reserve(slate_size);
  // Thresholds u, u+1, ..., u+s-1 walked against the cumulative sum of q.
  // Because each q_i <= 1, at most one threshold falls inside any item, so
  // the selected indices are distinct.
  double next_threshold = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < k && selected.size() < slate_size; ++i) {
    cumulative += q[i];
    if (next_threshold < cumulative) {
      selected.push_back(i);
      next_threshold += 1.0;
    }
  }
  // Floating-point shortfall: fill from the highest-q unselected items so
  // the slate always has exactly s members.
  if (selected.size() < slate_size) {
    std::vector<bool> in(k, false);
    for (std::size_t i : selected) in[i] = true;
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < k; ++i) {
      if (!in[i]) rest.push_back(i);
    }
    std::sort(rest.begin(), rest.end(),
              [&](std::size_t a, std::size_t b) { return q[a] > q[b]; });
    for (std::size_t i : rest) {
      if (selected.size() == slate_size) break;
      selected.push_back(i);
    }
    std::sort(selected.begin(), selected.end());
  }
  return selected;
}

}  // namespace mwr::core
