// Options and cost oracles: the bandit-problem side of the MWU interface.
//
// An option's hidden quality is a value in [0, 1] (higher is better).  The
// algorithms never see values directly; they see stochastic binary outcomes
// through a CostOracle, mirroring the paper's formulation where "the cost
// (reward) is 1 if the sample is correct and 0 otherwise" (§II-A).  In the
// APR application the oracle is a real probe — patch, run the test suite —
// which is why oracles are also where evaluation counting lives (fitness
// evaluations are the currency of Table IV and §IV-G).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mwr::core {

/// A named set of options with hidden values in [0, 1].
class OptionSet {
 public:
  /// Throws std::invalid_argument on an empty set or out-of-range values.
  OptionSet(std::string name, std::vector<double> values);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] double value(std::size_t option) const { return values_.at(option); }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Index of the best option in hindsight (ties broken toward the lowest
  /// index, deterministically).
  [[nodiscard]] std::size_t best_option() const noexcept { return best_; }
  [[nodiscard]] double best_value() const noexcept { return values_[best_]; }

  /// The paper's Table III accuracy metric: 100 minus the absolute percent
  /// error of the chosen option's value relative to the best in hindsight.
  [[nodiscard]] double accuracy_percent(std::size_t chosen) const;

 private:
  std::string name_;
  std::vector<double> values_;
  std::size_t best_ = 0;
};

/// Abstract probe: evaluates one option, returning reward 1 or 0.
/// Implementations must be safe for concurrent calls on distinct RngStreams.
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Number of options this oracle can evaluate.
  [[nodiscard]] virtual std::size_t num_options() const = 0;

  /// One stochastic evaluation of `option`; 1.0 = success, 0.0 = failure.
  [[nodiscard]] virtual double sample(std::size_t option,
                                      util::RngStream& rng) const = 0;
};

/// Bernoulli oracle over an OptionSet: sample(i) ~ Bernoulli(value_i).
class BernoulliOracle final : public CostOracle {
 public:
  explicit BernoulliOracle(const OptionSet& options) noexcept
      : options_(&options) {}

  [[nodiscard]] std::size_t num_options() const override {
    return options_->size();
  }
  [[nodiscard]] double sample(std::size_t option,
                              util::RngStream& rng) const override {
    return rng.bernoulli(options_->value(option)) ? 1.0 : 0.0;
  }

 private:
  const OptionSet* options_;
};

/// Decorator that counts evaluations.  The counter is a relaxed atomic so
/// the parallel drivers can share one instance across ranks.
class CountingOracle final : public CostOracle {
 public:
  explicit CountingOracle(const CostOracle& inner) noexcept : inner_(&inner) {}

  [[nodiscard]] std::size_t num_options() const override {
    return inner_->num_options();
  }
  [[nodiscard]] double sample(std::size_t option,
                              util::RngStream& rng) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return inner_->sample(option, rng);
  }

  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  const CostOracle* inner_;
  mutable std::atomic<std::uint64_t> count_{0};
};

}  // namespace mwr::core
