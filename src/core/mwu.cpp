#include "core/mwu.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/distributed_mwu.hpp"
#include "core/exp3_mwu.hpp"
#include "core/slate_mwu.hpp"
#include "core/standard_mwu.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::core {

std::string to_string(MwuKind kind) {
  switch (kind) {
    case MwuKind::kStandard:
      return "Standard";
    case MwuKind::kSlate:
      return "Slate";
    case MwuKind::kDistributed:
      return "Distributed";
    case MwuKind::kExp3:
      return "Exp3";
  }
  return "?";
}

std::size_t distributed_population(const MwuConfig& config) {
  const auto k = static_cast<double>(config.num_options);
  const double pop =
      std::ceil(config.pop_scale * std::pow(k, config.pop_exponent));
  // The population can never be smaller than the option set (the implicit
  // weight vector needs at least one holder per option at initialization).
  return std::max(config.num_options,
                  static_cast<std::size_t>(pop));
}

std::unique_ptr<MwuStrategy> make_mwu(MwuKind kind, const MwuConfig& config) {
  switch (kind) {
    case MwuKind::kStandard:
      return std::make_unique<StandardMwu>(config);
    case MwuKind::kSlate:
      return std::make_unique<SlateMwu>(config);
    case MwuKind::kDistributed:
      return std::make_unique<DistributedMwu>(config);
    case MwuKind::kExp3:
      return std::make_unique<Exp3Mwu>(config);
  }
  throw std::invalid_argument("make_mwu: unknown kind");
}

MwuResult run_mwu(MwuStrategy& strategy, const CostOracle& oracle,
                  const MwuConfig& config, util::RngStream rng) {
  if (oracle.num_options() != config.num_options)
    throw std::invalid_argument("run_mwu: oracle/config option count mismatch");
  const CountingOracle counted(oracle);
  MwuResult result;
  result.cpus_per_cycle = strategy.cpus_per_cycle();

  // Table II counts cycles, Table IV multiplies by cpus_per_cycle; the
  // run driver is where both quantities are born, so it reports them.
  auto& metrics = obs::MetricsRegistry::global();
  obs::Counter& cycle_counter = metrics.counter("mwu.cycles");
  obs::Counter& probe_counter = metrics.counter("mwu.probes");
  obs::Histogram& cycle_seconds = metrics.histogram("mwu.cycle_seconds");

  // Batched parallel probe evaluation (eval_threads >= 2): the pool lives
  // for the whole run; each cycle splits one child stream per probe off the
  // master stream *before* the fan-out, so rewards are a pure function of
  // the seed regardless of thread count (see MwuConfig::eval_threads).
  std::optional<parallel::ThreadPool> workers;
  if (config.eval_threads > 1) workers.emplace(config.eval_threads);

  std::vector<double> rewards;
  for (std::size_t t = 0; t < config.max_iterations; ++t) {
    const obs::ScopedTimer cycle_timer(cycle_seconds);
    const auto probes = strategy.sample(rng);
    rewards.resize(probes.size());
    if (workers) {
      auto streams = rng.split_n(probes.size());
      workers->parallel_for_index(probes.size(), [&](std::size_t j) {
        rewards[j] = counted.sample(probes[j], streams[j]);
      });
    } else {
      for (std::size_t j = 0; j < probes.size(); ++j) {
        rewards[j] = counted.sample(probes[j], rng);
      }
    }
    strategy.update(probes, rewards, rng);
    ++result.iterations;
    cycle_counter.add(1);
    probe_counter.add(probes.size());
    if (strategy.converged()) {
      result.converged = true;
      break;
    }
  }
  result.best_option = strategy.best_option();
  result.probabilities = strategy.probabilities();
  result.evaluations = counted.evaluations();
  metrics.gauge("mwu.converged").set(result.converged ? 1.0 : 0.0);
  metrics.gauge("mwu.cpu_iterations").set(
      static_cast<double>(result.cpu_iterations()));
  return result;
}

MwuResult run_mwu(MwuKind kind, const CostOracle& oracle,
                  const MwuConfig& config, util::RngStream rng) {
  if (kind == MwuKind::kDistributed &&
      distributed_population(config) > config.max_population) {
    MwuResult result;
    result.intractable = true;
    result.cpus_per_cycle = distributed_population(config);
    return result;
  }
  const auto strategy = make_mwu(kind, config);
  return run_mwu(*strategy, oracle, config, std::move(rng));
}

}  // namespace mwr::core
