#include "core/serialization.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "core/distributed_mwu.hpp"
#include "core/exp3_mwu.hpp"
#include "core/slate_mwu.hpp"
#include "core/standard_mwu.hpp"
#include "parallel/transport/wire.hpp"

namespace mwr::core {

namespace {
constexpr const char* kMagic = "mwr-mwu-state v1";
}  // namespace

std::vector<double> export_state(const MwuStrategy& strategy) {
  if (const auto* standard = dynamic_cast<const StandardMwu*>(&strategy)) {
    return standard->weights();
  }
  if (const auto* slate = dynamic_cast<const SlateMwu*>(&strategy)) {
    return slate->weights();
  }
  if (const auto* exp3 = dynamic_cast<const Exp3Mwu*>(&strategy)) {
    return exp3->weights();
  }
  if (const auto* distributed =
          dynamic_cast<const DistributedMwu*>(&strategy)) {
    std::vector<double> state;
    state.reserve(distributed->choices().size());
    for (const auto c : distributed->choices()) {
      state.push_back(static_cast<double>(c));
    }
    return state;
  }
  throw std::invalid_argument("save_state: unknown strategy type");
}

void import_state(MwuStrategy& strategy, const std::vector<double>& state) {
  if (auto* standard = dynamic_cast<StandardMwu*>(&strategy)) {
    standard->set_weights(state);
    return;
  }
  if (auto* slate = dynamic_cast<SlateMwu*>(&strategy)) {
    slate->set_weights(state);
    return;
  }
  if (auto* exp3 = dynamic_cast<Exp3Mwu*>(&strategy)) {
    exp3->set_weights(state);
    return;
  }
  if (auto* distributed = dynamic_cast<DistributedMwu*>(&strategy)) {
    std::vector<std::uint32_t> choices;
    choices.reserve(state.size());
    for (const double v : state) {
      choices.push_back(static_cast<std::uint32_t>(v));
    }
    distributed->set_choices(choices);
    return;
  }
  throw std::invalid_argument("load_state: unknown strategy type");
}

void save_state(const MwuStrategy& strategy, std::ostream& os) {
  const auto state = export_state(strategy);
  os << kMagic << "\n"
     << to_string(strategy.kind()) << " "
     << strategy.probabilities().size() << " " << state.size() << "\n"
     << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const double v : state) os << v << "\n";
  if (!os) throw std::runtime_error("save_state: stream write failed");
}

void load_state(MwuStrategy& strategy, std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kMagic)
    throw std::runtime_error("load_state: bad magic line: " + magic);
  std::string kind;
  std::size_t options = 0;
  std::size_t size = 0;
  if (!(is >> kind >> options >> size))
    throw std::runtime_error("load_state: malformed header");
  if (kind != to_string(strategy.kind()))
    throw std::runtime_error("load_state: kind mismatch: file has " + kind +
                             ", strategy is " + to_string(strategy.kind()));
  if (options != strategy.probabilities().size())
    throw std::runtime_error("load_state: option-count mismatch");
  std::vector<double> state(size);
  for (auto& v : state) {
    if (!(is >> v)) throw std::runtime_error("load_state: truncated state");
  }
  import_state(strategy, state);
}

void save_state_file(const MwuStrategy& strategy, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_state_file: cannot open " + path);
  save_state(strategy, f);
}

void load_state_file(MwuStrategy& strategy, const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_state_file: cannot open " + path);
  load_state(strategy, f);
}

std::vector<std::uint8_t> serialize_message(const parallel::Message& message,
                                            int dest_rank, bool tracked) {
  std::vector<std::uint8_t> out;
  parallel::transport::encode_frame(
      parallel::transport::WireFrame::message(message.source, dest_rank,
                                              message.tag,
                                              message.payload.to_vector(),
                                              tracked),
      out);
  return out;
}

parallel::Message deserialize_message(const std::uint8_t* data,
                                      std::size_t size, int* dest_rank,
                                      bool* tracked) {
  parallel::transport::WireFrame frame;
  const std::size_t used = parallel::transport::decode_frame(data, size, frame);
  if (used == 0)
    throw std::runtime_error("deserialize_message: incomplete frame");
  if (frame.kind != parallel::transport::FrameKind::kMessage)
    throw std::runtime_error("deserialize_message: not a message frame");
  if (dest_rank != nullptr) *dest_rank = frame.dest;
  if (tracked != nullptr) *tracked = frame.tracked;
  return parallel::Message{frame.source, frame.tag, std::move(frame.payload)};
}

}  // namespace mwr::core
