// Checkpointing for long-running MWU searches.
//
// An APR campaign can run for hours against an expensive test suite;
// losing learned weights to a restart wastes every probe paid for so far.
// These functions serialize a strategy's learned state (weights for the
// global-memory variants, the choice vector for Distributed) to a
// versioned, line-oriented text format and restore it into a freshly
// constructed strategy of the same kind and shape.
//
// The format is deliberately human-readable:
//   mwr-mwu-state v1
//   <kind> <num_options> <state_size>
//   <state values, one per line, full double precision>
#pragma once

#include <iosfwd>
#include <string>

#include "core/mwu.hpp"

namespace mwr::core {

/// Writes the strategy's learned state.  Throws std::runtime_error on I/O
/// failure and std::invalid_argument for strategies with no serializable
/// state representation.
void save_state(const MwuStrategy& strategy, std::ostream& os);

/// Restores state saved by save_state into `strategy`.  The stream must
/// describe the same kind and option count; throws std::runtime_error on
/// format/compatibility mismatch.
void load_state(MwuStrategy& strategy, std::istream& is);

/// Convenience file-path wrappers.
void save_state_file(const MwuStrategy& strategy, const std::string& path);
void load_state_file(MwuStrategy& strategy, const std::string& path);

}  // namespace mwr::core
