// Checkpointing for long-running MWU searches.
//
// An APR campaign can run for hours against an expensive test suite;
// losing learned weights to a restart wastes every probe paid for so far.
// These functions serialize a strategy's learned state (weights for the
// global-memory variants, the choice vector for Distributed) to a
// versioned, line-oriented text format and restore it into a freshly
// constructed strategy of the same kind and shape.
//
// The format is deliberately human-readable:
//   mwr-mwu-state v1
//   <kind> <num_options> <state_size>
//   <state values, one per line, full double precision>
// Message payloads crossing a process boundary go through the same seam:
// serialize_message / deserialize_message wrap the transport wire codec
// (parallel/transport/wire.hpp) so the versioned on-the-wire frame format
// is the single encoding for both live traffic and captured traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/mwu.hpp"
#include "parallel/mailbox.hpp"

namespace mwr::core {

/// Writes the strategy's learned state.  Throws std::runtime_error on I/O
/// failure and std::invalid_argument for strategies with no serializable
/// state representation.
void save_state(const MwuStrategy& strategy, std::ostream& os);

/// Restores state saved by save_state into `strategy`.  The stream must
/// describe the same kind and option count; throws std::runtime_error on
/// format/compatibility mismatch.
void load_state(MwuStrategy& strategy, std::istream& is);

/// Convenience file-path wrappers.
void save_state_file(const MwuStrategy& strategy, const std::string& path);
void load_state_file(MwuStrategy& strategy, const std::string& path);

/// The strategy's learned state as a flat double vector — weights for the
/// global-memory variants, the choice vector for Distributed.  This is the
/// in-memory half of save_state/load_state, exposed so binary checkpoint
/// writers (serve/checkpoint.hpp) can embed strategy state in wire frames
/// without round-tripping through the text format.  Throws
/// std::invalid_argument for unknown strategy types.
[[nodiscard]] std::vector<double> export_state(const MwuStrategy& strategy);

/// Restores a vector captured by export_state into a freshly constructed
/// strategy of the same kind and shape.
void import_state(MwuStrategy& strategy, const std::vector<double>& state);

/// Encodes one Message as a self-delimiting versioned wire frame — byte-for
/// byte what the shm-ring and UDS transports put on the wire for the same
/// (message, dest, tracked) triple.  Deterministic: equal inputs produce
/// equal byte streams on every backend and platform (fixed-width
/// little-endian fields, IEEE-754 payload bits).
[[nodiscard]] std::vector<std::uint8_t> serialize_message(
    const parallel::Message& message, int dest_rank, bool tracked);

/// Decodes a frame produced by serialize_message.  Throws
/// std::runtime_error on a short/corrupt buffer or a non-message frame.
/// `dest_rank` / `tracked` receive the envelope fields when non-null.
[[nodiscard]] parallel::Message deserialize_message(
    const std::uint8_t* data, std::size_t size, int* dest_rank = nullptr,
    bool* tracked = nullptr);

}  // namespace mwr::core
