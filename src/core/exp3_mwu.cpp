#include "core/exp3_mwu.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/simd/weight_kernels.hpp"

namespace mwr::core {

Exp3Mwu::Exp3Mwu(const MwuConfig& config) : config_(config) {
  if (config.num_options == 0)
    throw std::invalid_argument("Exp3Mwu: num_options == 0");
  if (config.num_agents == 0)
    throw std::invalid_argument("Exp3Mwu: num_agents == 0");
  if (config.exploration <= 0.0 || config.exploration > 1.0)
    throw std::invalid_argument("Exp3Mwu: gamma must be in (0, 1]");
  init();
}

void Exp3Mwu::init() {
  weights_.assign(config_.num_options, 1.0);
  total_weight_ = static_cast<double>(config_.num_options);
  prob_scratch_.assign(config_.num_options, 0.0);
  exp_scratch_.assign(config_.num_options, 0.0);
}

void Exp3Mwu::materialize_probabilities(std::vector<double>& p) const {
  const double gamma = config_.exploration;
  const double floor = gamma / static_cast<double>(weights_.size());
  p.resize(weights_.size());
  // p[i] = (1 - gamma) * w[i] / total + floor, via the dispatched kernel
  // (same operation order as the historical scalar loop, no contraction).
  util::simd::active().materialize_affine(p.data(), weights_.data(),
                                          weights_.size(), 1.0 - gamma,
                                          total_weight_, floor);
}

std::vector<double> Exp3Mwu::probabilities() const {
  std::vector<double> p;
  materialize_probabilities(p);
  return p;
}

std::vector<std::size_t> Exp3Mwu::sample(util::RngStream& rng) {
  // One O(k) sampler build amortized over the n agent draws, each O(log k)
  // instead of the O(k) linear scan over the probability vector.  The
  // probabilities land in persistent scratch — no per-call allocation.
  materialize_probabilities(prob_scratch_);
  sampler_.rebuild(prob_scratch_);
  std::vector<std::size_t> probes(config_.num_agents);
  for (auto& option : probes) {
    option = sampler_.sample(rng);
  }
  return probes;
}

void Exp3Mwu::update(std::span<const std::size_t> options,
                     std::span<const double> rewards,
                     util::RngStream& /*rng*/) {
  if (options.size() != rewards.size())
    throw std::invalid_argument("Exp3Mwu::update: size mismatch");
  materialize_probabilities(prob_scratch_);
  const double gamma = config_.exploration;
  const auto k = static_cast<double>(weights_.size());

  // Importance-weighted exponential update, aggregated per option into the
  // persistent scratch (accumulated sparsely, cleared sparsely below).  The
  // exponent gamma * (r / p_i) / k is at most 1 because p_i >= gamma / k.
  for (std::size_t j = 0; j < options.size(); ++j) {
    if (rewards[j] > 0.0) {
      exp_scratch_[options[j]] +=
          gamma * (rewards[j] / prob_scratch_[options[j]]) / k;
    }
  }
  const auto& kernels = util::simd::active();
  kernels.exp_update(weights_.data(), exp_scratch_.data(), weights_.size());
  // Fused max + renormalize + total; the fold order is the reduction-order
  // contract (util/simd/weight_kernels.hpp).
  const double max_weight = kernels.max_reduce(weights_.data(), weights_.size());
  total_weight_ = util::simd::normalize_sum(weights_.data(), weights_.size(),
                                            max_weight);
  for (std::size_t j = 0; j < options.size(); ++j) {
    exp_scratch_[options[j]] = 0.0;
  }
}

void Exp3Mwu::set_weights(std::vector<double> weights) {
  if (weights.size() != config_.num_options)
    throw std::invalid_argument("Exp3Mwu::set_weights: wrong width");
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("Exp3Mwu::set_weights: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Exp3Mwu::set_weights: zero total");
  weights_ = std::move(weights);
  total_weight_ = total;
}

double Exp3Mwu::max_achievable_probability() const noexcept {
  const double gamma = config_.exploration;
  return (1.0 - gamma) + gamma / static_cast<double>(weights_.size());
}

bool Exp3Mwu::converged() const {
  const double max_w =
      util::simd::active().max_reduce(weights_.data(), weights_.size());
  const double gamma = config_.exploration;
  const double p_max = (1.0 - gamma) * max_w / total_weight_ +
                       gamma / static_cast<double>(weights_.size());
  return p_max >= max_achievable_probability() - config_.convergence_tol;
}

std::size_t Exp3Mwu::best_option() const {
  return util::simd::active().argmax(weights_.data(), weights_.size());
}

}  // namespace mwr::core
