#include "core/exp3_mwu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mwr::core {

Exp3Mwu::Exp3Mwu(const MwuConfig& config) : config_(config) {
  if (config.num_options == 0)
    throw std::invalid_argument("Exp3Mwu: num_options == 0");
  if (config.num_agents == 0)
    throw std::invalid_argument("Exp3Mwu: num_agents == 0");
  if (config.exploration <= 0.0 || config.exploration > 1.0)
    throw std::invalid_argument("Exp3Mwu: gamma must be in (0, 1]");
  init();
}

void Exp3Mwu::init() {
  weights_.assign(config_.num_options, 1.0);
  total_weight_ = static_cast<double>(config_.num_options);
}

std::vector<double> Exp3Mwu::probabilities() const {
  const double gamma = config_.exploration;
  const double floor = gamma / static_cast<double>(weights_.size());
  std::vector<double> p(weights_.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = (1.0 - gamma) * weights_[i] / total_weight_ + floor;
  }
  return p;
}

std::vector<std::size_t> Exp3Mwu::sample(util::RngStream& rng) {
  // One O(k) sampler build amortized over the n agent draws, each O(log k)
  // instead of the O(k) linear scan over the probability vector.
  sampler_.rebuild(probabilities());
  std::vector<std::size_t> probes(config_.num_agents);
  for (auto& option : probes) {
    option = sampler_.sample(rng);
  }
  return probes;
}

void Exp3Mwu::update(std::span<const std::size_t> options,
                     std::span<const double> rewards,
                     util::RngStream& /*rng*/) {
  if (options.size() != rewards.size())
    throw std::invalid_argument("Exp3Mwu::update: size mismatch");
  const auto p = probabilities();
  const double gamma = config_.exploration;
  const auto k = static_cast<double>(weights_.size());

  // Importance-weighted exponential update, aggregated per option.  The
  // exponent gamma * (r / p_i) / k is at most 1 because p_i >= gamma / k.
  std::vector<double> exponents(weights_.size(), 0.0);
  for (std::size_t j = 0; j < options.size(); ++j) {
    if (rewards[j] > 0.0) {
      exponents[options[j]] += gamma * (rewards[j] / p[options[j]]) / k;
    }
  }
  double max_weight = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (exponents[i] > 0.0) weights_[i] *= std::exp(exponents[i]);
    max_weight = std::max(max_weight, weights_[i]);
  }
  total_weight_ = 0.0;
  for (auto& w : weights_) {
    w /= max_weight;
    total_weight_ += w;
  }
}

void Exp3Mwu::set_weights(std::vector<double> weights) {
  if (weights.size() != config_.num_options)
    throw std::invalid_argument("Exp3Mwu::set_weights: wrong width");
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("Exp3Mwu::set_weights: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Exp3Mwu::set_weights: zero total");
  weights_ = std::move(weights);
  total_weight_ = total;
}

double Exp3Mwu::max_achievable_probability() const noexcept {
  const double gamma = config_.exploration;
  return (1.0 - gamma) + gamma / static_cast<double>(weights_.size());
}

bool Exp3Mwu::converged() const {
  const double max_w = *std::max_element(weights_.begin(), weights_.end());
  const double gamma = config_.exploration;
  const double p_max = (1.0 - gamma) * max_w / total_weight_ +
                       gamma / static_cast<double>(weights_.size());
  return p_max >= max_achievable_probability() - config_.convergence_tol;
}

std::size_t Exp3Mwu::best_option() const {
  return static_cast<std::size_t>(
      std::max_element(weights_.begin(), weights_.end()) - weights_.begin());
}

}  // namespace mwr::core
