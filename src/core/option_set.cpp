#include "core/option_set.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mwr::core {

OptionSet::OptionSet(std::string name, std::vector<double> values)
    : name_(std::move(name)), values_(std::move(values)) {
  if (values_.empty())
    throw std::invalid_argument("OptionSet '" + name_ + "' is empty");
  for (double v : values_) {
    if (!(v >= 0.0 && v <= 1.0) || !std::isfinite(v))
      throw std::invalid_argument("OptionSet '" + name_ +
                                  "' has a value outside [0, 1]");
  }
  best_ = static_cast<std::size_t>(
      std::max_element(values_.begin(), values_.end()) - values_.begin());
}

double OptionSet::accuracy_percent(std::size_t chosen) const {
  const double best = best_value();
  if (best <= 0.0) return 100.0;  // every option is optimal
  const double err = std::abs(best - value(chosen)) / best;
  return 100.0 * (1.0 - err);
}

}  // namespace mwr::core
