// The generic MWU interface of the paper (Fig 6 consumes it as MWU_Init /
// MWU_Sample / MWU_Update) plus the shared configuration and the run driver
// used by the evaluation harness.
//
// Each update cycle has three steps:
//   1. sample()   — the algorithm names the options its agents will probe
//                   this cycle (one entry per agent / CPU);
//   2. (caller)   — each probe is evaluated through a CostOracle, yielding a
//                   binary reward;
//   3. update()   — the algorithm folds the rewards back into its state.
// converged() is checked after every update; Table II counts the number of
// completed cycles, Table IV multiplies by cpus_per_cycle().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/option_set.hpp"
#include "util/rng.hpp"

namespace mwr::core {

/// Which MWU realization to instantiate: the paper's three, plus Exp3 as a
/// library extension (see core/exp3_mwu.hpp; excluded from the paper-table
/// benches).
enum class MwuKind { kStandard, kSlate, kDistributed, kExp3 };

[[nodiscard]] std::string to_string(MwuKind kind);

/// Shared configuration.  Defaults follow the paper's experimental design
/// (§IV-B): exploration probabilities mu = gamma = 0.05, error threshold
/// epsilon = 0.05, iteration cap 10000, Standard/Slate convergence tolerance
/// 1e-5, Distributed plurality threshold 30%.
struct MwuConfig {
  std::size_t num_options = 0;      ///< k — set per dataset.
  std::size_t num_agents = 64;      ///< n — parallel threads for Standard.
  std::size_t max_iterations = 10000;
  double learning_rate = 0.025;     ///< eta <= 1/2; eta = epsilon/2 (§IV-B).
  double exploration = 0.05;        ///< mu (Distributed) = gamma (Slate).
  double epsilon = 0.05;            ///< error threshold (fixes eta's scale).
  double convergence_tol = 1e-5;    ///< Standard/Slate: gap to max probability.
  double plurality_threshold = 0.30;///< Distributed: plurality fraction.
  double adopt_success = 0.90;      ///< beta — adopt a successful observation.
  double adopt_failure = 0.005;     ///< alpha — adopt a failed observation.
  /// Distributed population = ceil(pop_scale * k^pop_exponent); the
  /// super-linear exponent is the paper's "exponential dependence of the
  /// population size on the scenario size" (§IV-C).
  double pop_scale = 4.0;
  double pop_exponent = 1.3;
  /// Populations above this are declared intractable, reproducing the two
  /// "—" cells of Tables II-IV.
  std::size_t max_population = 1'000'000;
  /// Worker threads for oracle-probe evaluation inside run_mwu.  1 (the
  /// default) keeps the historical fully-serial loop, bit-identical to all
  /// prior releases.  >= 2 evaluates the cycle's probes as a parallel batch
  /// over a thread pool: before the fan-out the master stream deterministically
  /// split()s one child stream per probe (in probe order), so the rewards —
  /// and therefore the whole run — depend only on the seed, not on the
  /// thread count or interleaving.  Any two values >= 2 produce identical
  /// results.
  std::size_t eval_threads = 1;
  /// Standard only: textbook weighted-majority mode.  The paper notes that
  /// "Standard assumes full visibility of the quality of each option on
  /// each iteration" (§II-B); with this flag every option is evaluated once
  /// per cycle (the cycle costs k CPUs instead of num_agents) and weights
  /// take the classic penalty update w_i *= (1 - eta)^cost_i.  Off by
  /// default: the bandit-feedback mode is what the evaluation uses.
  bool full_information = false;
};

/// Outcome of one complete run.
struct MwuResult {
  bool converged = false;
  bool intractable = false;         ///< Distributed only: population too large.
  std::size_t iterations = 0;       ///< completed update cycles.
  std::size_t best_option = 0;      ///< highest-probability / plurality option.
  std::size_t cpus_per_cycle = 0;   ///< agents active per cycle (Table IV).
  std::uint64_t evaluations = 0;    ///< total oracle probes.
  std::vector<double> probabilities;///< final distribution over options.

  /// Table IV's metric.
  [[nodiscard]] std::uint64_t cpu_iterations() const noexcept {
    return static_cast<std::uint64_t>(iterations) * cpus_per_cycle;
  }
};

/// Abstract MWU realization.  Implementations own all algorithm state;
/// sample/update must be called alternately, starting with sample.
class MwuStrategy {
 public:
  virtual ~MwuStrategy() = default;

  /// Resets state to the initial distribution.
  virtual void init() = 0;

  /// Names the options to probe this cycle (size == cpus_per_cycle()).
  [[nodiscard]] virtual std::vector<std::size_t> sample(util::RngStream& rng) = 0;

  /// Folds this cycle's binary rewards back in.  `options` must be the
  /// vector returned by the immediately-preceding sample().
  virtual void update(std::span<const std::size_t> options,
                      std::span<const double> rewards,
                      util::RngStream& rng) = 0;

  /// Current probability the algorithm assigns to each option.
  [[nodiscard]] virtual std::vector<double> probabilities() const = 0;

  /// Whether the convergence criterion holds for the current state.
  [[nodiscard]] virtual bool converged() const = 0;

  /// The option the algorithm currently prefers.
  [[nodiscard]] virtual std::size_t best_option() const = 0;

  /// Agents (CPUs) active in each cycle.
  [[nodiscard]] virtual std::size_t cpus_per_cycle() const = 0;

  [[nodiscard]] virtual MwuKind kind() const = 0;
};

/// Instantiates one of the three realizations for the given configuration.
/// Throws std::invalid_argument on inconsistent configuration (k == 0,
/// eta > 1/2, exploration outside [0,1], alpha > beta).
[[nodiscard]] std::unique_ptr<MwuStrategy> make_mwu(MwuKind kind,
                                                    const MwuConfig& config);

/// Runs a strategy against an oracle to convergence or the iteration cap.
/// This is the loop the evaluation harness (Tables II-IV) executes.
[[nodiscard]] MwuResult run_mwu(MwuStrategy& strategy, const CostOracle& oracle,
                                const MwuConfig& config, util::RngStream rng);

/// Convenience: construct + run, handling the Distributed intractability
/// case (population over config.max_population) by returning an
/// `intractable` result without executing.
[[nodiscard]] MwuResult run_mwu(MwuKind kind, const CostOracle& oracle,
                                const MwuConfig& config, util::RngStream rng);

/// The Distributed population size for a given configuration.
[[nodiscard]] std::size_t distributed_population(const MwuConfig& config);

}  // namespace mwr::core
