#include "core/regret.hpp"

#include <algorithm>
#include <cmath>

namespace mwr::core {

double RegretTrace::at_cycle(std::size_t cycle) const noexcept {
  if (cumulative.empty()) return 0.0;
  const std::size_t index = std::min(cycle, cumulative.size()) -
                            (cycle == 0 ? 0 : 1);
  if (cycle == 0) return 0.0;
  return cumulative[index];
}

RegretTrace run_mwu_with_regret(MwuKind kind, const OptionSet& options,
                                const MwuConfig& config, util::RngStream rng) {
  RegretTrace trace;
  if (kind == MwuKind::kDistributed &&
      distributed_population(config) > config.max_population) {
    trace.result.intractable = true;
    return trace;
  }
  const auto strategy = make_mwu(kind, config);
  const BernoulliOracle oracle(options);
  trace.probes_per_cycle = strategy->cpus_per_cycle();
  trace.result.cpus_per_cycle = trace.probes_per_cycle;

  const double best = options.best_value();
  double cumulative = 0.0;
  std::vector<double> rewards;
  for (std::size_t t = 0; t < config.max_iterations; ++t) {
    const auto probes = strategy->sample(rng);
    rewards.resize(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = oracle.sample(probes[j], rng);
      cumulative += best - options.value(probes[j]);
      trace.result.evaluations += 1;
    }
    strategy->update(probes, rewards, rng);
    trace.cumulative.push_back(cumulative);
    const auto p = strategy->probabilities();
    trace.max_probability.push_back(*std::max_element(p.begin(), p.end()));
    ++trace.result.iterations;
    if (strategy->converged()) {
      trace.result.converged = true;
      break;
    }
  }
  trace.result.best_option = strategy->best_option();
  trace.result.probabilities = strategy->probabilities();
  return trace;
}

double adversarial_regret_bound(double probes, std::size_t num_options,
                                double constant) {
  const auto k = static_cast<double>(num_options);
  return constant * std::sqrt(std::max(0.0, probes) * k * std::log(k));
}

}  // namespace mwr::core
