// Regret instrumentation: the lens MWU theory is usually stated through.
//
// The paper notes (§II-C) that "convergence of Standard is presented in
// terms of algorithm iterations, while the convergence of Slate is
// presented in terms of regret", and that translating between the two is
// what makes Table I comparable.  This module provides the regret side:
// run any realization against a *known* option set and record, per update
// cycle, the expected regret its probes incurred —
//   regret_t = sum over this cycle's probes of (v* - v_probe)
// — plus the cumulative curve, so benches can compare the realizations'
// regret growth against the classic O(sqrt(T k ln k)) shape.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mwu.hpp"

namespace mwr::core {

struct RegretTrace {
  MwuResult result;
  /// Cumulative expected regret after each completed update cycle.
  std::vector<double> cumulative;
  /// The §IV-C convergence signal per cycle: the probability the algorithm
  /// assigns to its current highest-probability option ("the probability
  /// of the highest weight option at each time step").
  std::vector<double> max_probability;
  /// Probes issued per cycle (cpus_per_cycle; recorded for normalization).
  std::size_t probes_per_cycle = 0;

  /// Final cumulative regret (0 for an empty trace).
  [[nodiscard]] double total() const noexcept {
    return cumulative.empty() ? 0.0 : cumulative.back();
  }
  /// Cumulative regret after `cycle` cycles (clamped to the trace length).
  [[nodiscard]] double at_cycle(std::size_t cycle) const noexcept;
};

/// Runs the realization exactly as run_mwu does, additionally charging each
/// probe its expected regret against the best option in hindsight.
[[nodiscard]] RegretTrace run_mwu_with_regret(MwuKind kind,
                                              const OptionSet& options,
                                              const MwuConfig& config,
                                              util::RngStream rng);

/// The reference adversarial-regret envelope c * sqrt(t * k * ln k),
/// evaluated per probe count t (used by bench_regret for comparison).
[[nodiscard]] double adversarial_regret_bound(double probes,
                                              std::size_t num_options,
                                              double constant = 2.0);

}  // namespace mwr::core
