#include "core/parallel_driver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/distributed_mwu.hpp"
#include "core/standard_mwu.hpp"
#include "obs/registry.hpp"

namespace mwr::core {

namespace {
// SPMD telemetry: total probes across ranks, the per-worker probe-count
// distribution (each rank contributes one observation per run — skew here
// means load imbalance), and time spent waiting in collectives (the
// synchronized-iteration stall the paper's §III-A analysis is about).
struct SpmdMetrics {
  obs::Counter& cycles;
  obs::Counter& probes;
  obs::Histogram& worker_probes;
  obs::Histogram& collective_wait_seconds;

  explicit SpmdMetrics(const char* driver)
      : cycles(obs::MetricsRegistry::global().counter(
            std::string("spmd.") + driver + ".cycles")),
        probes(obs::MetricsRegistry::global().counter(
            std::string("spmd.") + driver + ".probes")),
        worker_probes(obs::MetricsRegistry::global().histogram(
            std::string("spmd.") + driver + ".worker_probes",
            obs::Histogram::exponential_bounds(1.0, 2.0, 16))),
        collective_wait_seconds(obs::MetricsRegistry::global().histogram(
            std::string("spmd.") + driver + ".collective_wait_seconds")) {}
};

// User-level tags for the SPMD drivers (below the collective tag space).
constexpr int kTagObserveRequest = 100;
constexpr int kTagObserveReply = 101;

// 32-bit FNV-1a over (rank, choice); summed across ranks it is the
// order-independent trajectory fingerprint (ParallelMwuResult docs).
std::uint32_t rank_choice_hash(std::size_t rank, std::size_t choice) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(rank);
  mix(choice);
  return static_cast<std::uint32_t>(h & 0xffffffffull);
}

// The per-rank Distributed MWU program, shared verbatim by the in-process
// driver and the multi-process (transport) driver: the trajectory depends
// only on (seed, rank, config), never on which substrate carries the
// messages — that sharing is what makes cross-backend bit-identity hold
// by construction.  `report_rank` is the global rank that fills `out`
// (rank 0 in-process; each process's lowest rank under a transport, where
// every rank derives identical values anyway).  `rank_state`, when
// non-null, is the shared per-global-rank u32 array this rank publishes
// its current choice into.
void distributed_rank_body(parallel::Comm& comm, const MwuConfig& config,
                           std::uint64_t seed, const CostOracle& counted,
                           SpmdMetrics& metrics, std::size_t population,
                           int report_rank, ParallelMwuResult& out,
                           std::uint32_t* rank_state) {
  const auto rank = static_cast<std::size_t>(comm.rank());
  util::RngStream rng(seed + 0x51ed * static_cast<std::uint64_t>(rank));
  // Round-robin initial choice, as in the sequential implementation.
  std::size_t choice = rank % config.num_options;
  if (rank_state != nullptr) rank_state[rank] = static_cast<std::uint32_t>(choice);

  std::size_t iterations = 0;
  std::uint64_t rank_probes = 0;
  bool converged = false;
  for (std::size_t t = 0; t < config.max_iterations; ++t) {
    // --- Sample: pick a random option, or request a random neighbor's
    // current choice (the tracked communication of this algorithm).
    bool observing = false;
    std::size_t observed = 0;
    if (rng.bernoulli(config.exploration)) {
      observed = rng.uniform_index(config.num_options);
    } else {
      observing = true;
      const auto neighbor = static_cast<int>(rng.uniform_index(
          static_cast<std::size_t>(comm.size())));
      comm.send(neighbor, kTagObserveRequest, {});
    }
    {
      const obs::ScopedTimer wait(metrics.collective_wait_seconds);
      comm.barrier();  // all requests delivered
    }

    // --- Serve requests: reply with our current choice (bookkeeping).
    while (auto request =
               comm.try_recv(parallel::kAnySource, kTagObserveRequest)) {
      comm.send_untracked(request->source, kTagObserveReply,
                          {static_cast<double>(choice)});
    }
    comm.barrier();  // all replies delivered
    if (observing) {
      const auto reply = comm.try_recv(parallel::kAnySource, kTagObserveReply);
      if (!reply)
        throw std::logic_error("distributed SPMD: missing observe reply");
      observed = static_cast<std::size_t>(reply->payload.at(0));
    }

    // --- Update: evaluate the observed option once and adopt
    // stochastically (beta on success, alpha on failure).
    const bool success = counted.sample(observed, rng) > 0.0;
    ++rank_probes;
    const double adopt_probability =
        success ? config.adopt_success : config.adopt_failure;
    if (rng.bernoulli(adopt_probability)) choice = observed;
    if (rank_state != nullptr)
      rank_state[rank] = static_cast<std::uint32_t>(choice);

    // --- Convergence snapshot (bookkeeping, untracked): every rank
    // contributes a one-hot choice vector to a binomial-tree allreduce,
    // so the popularity census reaches all ranks with O(log n) messages
    // per node instead of the O(population) recv loop rank 0 used to
    // absorb.  Each rank then applies the plurality test to the same
    // reduced vector, so no continue/stop broadcast is needed.
    std::vector<double> census(config.num_options, 0.0);
    census[choice] = 1.0;
    std::vector<double> popularity;
    {
      const obs::ScopedTimer wait(metrics.collective_wait_seconds);
      popularity = comm.allreduce_sum_tree_untracked(std::move(census));
    }
    const double max_count =
        *std::max_element(popularity.begin(), popularity.end());
    const bool stop = max_count >= config.plurality_threshold *
                                       static_cast<double>(population);
    if (comm.rank() == report_rank) {
      out.result.best_option = static_cast<std::size_t>(
          std::max_element(popularity.begin(), popularity.end()) -
          popularity.begin());
      out.result.probabilities.assign(config.num_options, 0.0);
      for (std::size_t i = 0; i < config.num_options; ++i) {
        out.result.probabilities[i] =
            popularity[i] / static_cast<double>(population);
      }
    }
    ++iterations;
    if (comm.rank() == 0) metrics.cycles.add(1);
    // Close the tracked (request) congestion cycle inside the barrier —
    // one synchronization per cycle, statistics unchanged.
    comm.barrier_close_cycle();
    if (stop) {
      converged = true;
      break;
    }
  }
  metrics.probes.add(rank_probes);
  metrics.worker_probes.observe(static_cast<double>(rank_probes));

  // Trajectory fingerprint: one more untracked tree reduction after the
  // last cycle closed — it adds no tracked messages, no RNG draws, and no
  // congestion, so the trajectory itself is untouched.
  const std::vector<double> hash_sum = comm.allreduce_sum_tree_untracked(
      {static_cast<double>(rank_choice_hash(rank, choice))});
  if (comm.rank() == report_rank) {
    out.result.converged = converged;
    out.result.iterations = iterations;
    out.trajectory_hash = hash_sum[0];
  }
}
}  // namespace

ParallelMwuResult run_standard_spmd(const CostOracle& oracle,
                                    const MwuConfig& config,
                                    std::uint64_t seed,
                                    parallel::RunPolicy policy) {
  const std::size_t n = config.num_agents;
  if (n == 0) throw std::invalid_argument("run_standard_spmd: no agents");
  parallel::CommWorld world(n, policy);
  const CountingOracle counted(oracle);

  // Each rank advances an identical replica of the weight state: sampling
  // uses the rank's private stream, updates use the allreduced counts, so
  // the replicas never diverge.
  MwuConfig rank_config = config;
  rank_config.num_agents = 1;

  ParallelMwuResult out;
  out.result.cpus_per_cycle = n;
  SpmdMetrics metrics("standard");

  world.run([&](parallel::Comm& comm) {
    util::RngStream rng(seed + 0x9e37 * static_cast<std::uint64_t>(comm.rank()));
    StandardMwu replica(rank_config);
    std::size_t iterations = 0;
    std::uint64_t rank_probes = 0;
    bool converged = false;
    for (std::size_t t = 0; t < config.max_iterations; ++t) {
      const auto probe = replica.sample(rng);
      std::vector<double> counts(config.num_options, 0.0);
      counts[probe[0]] += counted.sample(probe[0], rng);
      ++rank_probes;
      std::vector<double> total_counts;
      {
        const obs::ScopedTimer wait(metrics.collective_wait_seconds);
        total_counts = comm.allreduce_sum(std::move(counts));
      }
      replica.apply_reward_counts(total_counts);
      ++iterations;
      if (comm.rank() == 0) metrics.cycles.add(1);
      // The barrier's completion closes the congestion cycle — one
      // synchronization per cycle instead of the barrier/close/barrier
      // bracket, with identical statistics.
      comm.barrier_close_cycle();
      if (replica.converged()) {
        converged = true;
        break;
      }
    }
    metrics.probes.add(rank_probes);
    metrics.worker_probes.observe(static_cast<double>(rank_probes));
    if (comm.rank() == 0) {
      out.result.converged = converged;
      out.result.iterations = iterations;
      out.result.best_option = replica.best_option();
      out.result.probabilities = replica.probabilities();
    }
  });

  out.result.evaluations = counted.evaluations();
  out.max_congestion_per_cycle = world.congestion().max_per_cycle();
  out.total_messages = world.congestion().total_messages();
  return out;
}

ParallelMwuResult run_distributed_spmd(const CostOracle& oracle,
                                       const MwuConfig& config,
                                       std::uint64_t seed,
                                       std::size_t population_override,
                                       parallel::RunPolicy policy) {
  const std::size_t population = population_override
                                     ? population_override
                                     : distributed_population(config);
  if (population == 0)
    throw std::invalid_argument("run_distributed_spmd: empty population");
  parallel::CommWorld world(population, policy);
  const CountingOracle counted(oracle);

  ParallelMwuResult out;
  out.result.cpus_per_cycle = population;
  SpmdMetrics metrics("distributed");

  world.run([&](parallel::Comm& comm) {
    distributed_rank_body(comm, config, seed, counted, metrics, population,
                          /*report_rank=*/0, out, /*rank_state=*/nullptr);
  });

  out.result.evaluations = counted.evaluations();
  out.max_congestion_per_cycle = world.congestion().max_per_cycle();
  out.total_messages = world.congestion().total_messages();
  return out;
}

ParallelMwuResult run_distributed_spmd_multiprocess(
    const CostOracle& oracle, const MwuConfig& config, std::uint64_t seed,
    std::size_t population_override, const MultiprocessOptions& options) {
  namespace tp = parallel::transport;
  const std::size_t population = population_override
                                     ? population_override
                                     : distributed_population(config);
  if (population == 0)
    throw std::invalid_argument(
        "run_distributed_spmd_multiprocess: empty population");
  const std::size_t num_options = config.num_options;

  // Result-slot layout (doubles), written by each worker's report rank:
  //   [0] evaluations   [1] total tracked messages
  //   [2..6] congestion count/mean/m2/min/max (identical in every process:
  //          all of them record the same global per-cycle maxima)
  //   [7] iterations  [8] converged  [9] best option  [10] trajectory hash
  //   [11..11+options) final popularity fractions
  constexpr std::size_t kEval = 0, kMsgs = 1, kCcount = 2, kCmean = 3,
                        kCm2 = 4, kCmin = 5, kCmax = 6, kIters = 7, kConv = 8,
                        kBest = 9, kHash = 10, kProbs = 11;

  tp::ProcessWorldConfig pw;
  pw.global_ranks = population;
  pw.processes = options.processes;
  pw.kind = options.kind;
  pw.policy = options.policy;
  pw.ring_bytes = options.ring_bytes;
  pw.timeout_seconds = options.timeout_seconds;

  const auto outcome = tp::run_process_world(
      pw,
      [&config, seed, &oracle, population, num_options](
          parallel::CommWorld& world, const parallel::WorldLayout& layout,
          std::uint32_t* rank_state) {
        const CountingOracle counted(oracle);
        ParallelMwuResult local;
        SpmdMetrics metrics("distributed");
        const int report_rank = static_cast<int>(layout.local_begin());
        world.run([&](parallel::Comm& comm) {
          distributed_rank_body(comm, config, seed, counted, metrics,
                                population, report_rank, local, rank_state);
        });
        const auto& congestion = world.congestion().max_per_cycle();
        std::vector<double> packed(kProbs + num_options, 0.0);
        packed[kEval] = static_cast<double>(counted.evaluations());
        packed[kMsgs] =
            static_cast<double>(world.congestion().total_messages());
        packed[kCcount] = static_cast<double>(congestion.count());
        packed[kCmean] = congestion.mean();
        packed[kCm2] = congestion.variance() *
                       static_cast<double>(congestion.count() > 1
                                               ? congestion.count() - 1
                                               : 0);
        packed[kCmin] = congestion.min();
        packed[kCmax] = congestion.max();
        packed[kIters] = static_cast<double>(local.result.iterations);
        packed[kConv] = local.result.converged ? 1.0 : 0.0;
        packed[kBest] = static_cast<double>(local.result.best_option);
        packed[kHash] = local.trajectory_hash;
        for (std::size_t i = 0; i < num_options; ++i) {
          packed[kProbs + i] = i < local.result.probabilities.size()
                                   ? local.result.probabilities[i]
                                   : 0.0;
        }
        return packed;
      });
  if (!outcome.ok)
    throw std::runtime_error("run_distributed_spmd_multiprocess: " +
                             outcome.error);

  ParallelMwuResult out;
  out.result.cpus_per_cycle = population;
  for (const auto& packed : outcome.values) {
    if (packed.size() < kProbs + num_options)
      throw std::runtime_error(
          "run_distributed_spmd_multiprocess: short worker result");
    out.result.evaluations += static_cast<std::uint64_t>(packed[kEval]);
    out.total_messages += static_cast<std::uint64_t>(packed[kMsgs]);
  }
  // Congestion statistics and algorithm outcome are world-global and
  // identical in every worker; take process 0's copy.
  const auto& p0 = outcome.values.front();
  out.max_congestion_per_cycle = util::RunningStats::from_moments(
      static_cast<std::size_t>(p0[kCcount]), p0[kCmean], p0[kCm2], p0[kCmin],
      p0[kCmax]);
  out.result.iterations = static_cast<std::size_t>(p0[kIters]);
  out.result.converged = p0[kConv] != 0.0;
  out.result.best_option = static_cast<std::size_t>(p0[kBest]);
  out.trajectory_hash = p0[kHash];
  out.result.probabilities.assign(p0.begin() + kProbs,
                                  p0.begin() + kProbs + num_options);
  return out;
}

}  // namespace mwr::core
