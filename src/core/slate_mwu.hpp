// Slate MWU (bandit slate selection; paper Fig 2, after [13]).
//
// Global-memory variant specialized for choosing a fixed-size subset of
// options per cycle.  The mixing parameter gamma both floors exploration
// (probabilities are (1 - gamma) * w / sum(w) + gamma / k) and fixes the
// slate size as a fraction of the option set — the paper observes that the
// fixed gamma "sets the k/n ratio to a constant" (§IV-F), which is why the
// CPU count of Slate grows with instance size in Table IV.
//
// Only slate members receive weight updates, and the exploration floor caps
// how much probability the leader can accumulate; both effects make Slate
// the slowest variant in update cycles (Table II) while the persistent
// exploration gives it the consistently high accuracy of Table III.
#pragma once

#include <vector>

#include "core/mwu.hpp"
#include "util/fenwick_sampler.hpp"

namespace mwr::core {

class SlateMwu final : public MwuStrategy {
 public:
  explicit SlateMwu(const MwuConfig& config);

  void init() override;
  [[nodiscard]] std::vector<std::size_t> sample(util::RngStream& rng) override;
  void update(std::span<const std::size_t> options,
              std::span<const double> rewards, util::RngStream& rng) override;
  [[nodiscard]] std::vector<double> probabilities() const override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::size_t best_option() const override;
  [[nodiscard]] std::size_t cpus_per_cycle() const override {
    return slate_size_;
  }
  [[nodiscard]] MwuKind kind() const override { return MwuKind::kSlate; }

  [[nodiscard]] std::size_t slate_size() const noexcept { return slate_size_; }

  /// The slate size gamma implies for a k-option instance:
  /// max(1, round(gamma * k)), clamped to k.
  [[nodiscard]] static std::size_t slate_size_for(std::size_t num_options,
                                                  double gamma);

  /// Selects the sampler realizing the capped marginals.  Systematic
  /// sampling (default) is O(k) per cycle; the explicit convex
  /// decomposition is the O(k^2) construction the paper describes in
  /// §II-C — build the mixture of slate vertices, then draw one component
  /// by its coefficient.  Both realize identical inclusion marginals.
  enum class Sampler { kSystematic, kDecomposition };
  void set_sampler(Sampler sampler) noexcept { sampler_ = sampler; }
  [[nodiscard]] Sampler sampler() const noexcept { return sampler_; }

  /// Highest probability any single option can reach given the gamma floor:
  /// (1 - gamma) + gamma / k.  Convergence is measured against this.
  [[nodiscard]] double max_achievable_probability() const noexcept;

  /// Raw weights — exposed for checkpointing.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  /// Replaces the weight state (checkpoint restore).
  void set_weights(std::vector<double> weights);

 private:
  MwuConfig config_;
  std::size_t slate_size_ = 1;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  Sampler sampler_ = Sampler::kSystematic;
  /// Decomposition mode's coefficient draw (kept as a member so repeated
  /// sample() calls reuse its storage).
  util::FenwickSampler coefficient_sampler_;
};

}  // namespace mwr::core
