// SPMD drivers: the MWU algorithms executed for real over the
// message-passing substrate, one rank per agent.
//
// The sequential MwuStrategy implementations are the fast path the
// evaluation harness sweeps with (Tables II-IV); these drivers exist to
// demonstrate and *measure* the communication patterns the paper analyzes
// in Table I:
//
//   Standard    — every cycle ends in a centralized reduction of the
//                 per-option reward counts (gather to rank 0 + broadcast),
//                 so the heaviest-hit node receives O(n) messages;
//   Distributed — every cycle each agent sends one observation request to
//                 a uniformly random neighbor, so the heaviest-hit node
//                 receives the balls-into-bins maximum,
//                 O(ln n / ln ln n) with high probability.
//
// Both drivers return the standard MwuResult plus the measured per-cycle
// maximum congestion so benches/tests can check the bounds empirically.
#pragma once

#include <cstddef>

#include "core/mwu.hpp"
#include "parallel/comm.hpp"
#include "parallel/transport/process_world.hpp"
#include "util/stats.hpp"

namespace mwr::core {

/// Result of an SPMD run: the algorithm outcome plus congestion statistics
/// (per-cycle maximum over nodes, aggregated over cycles).
struct ParallelMwuResult {
  MwuResult result;
  util::RunningStats max_congestion_per_cycle;
  std::uint64_t total_messages = 0;
  /// Order-independent fingerprint of the final per-rank choices: the sum
  /// over ranks of a 32-bit hash of (rank, final choice).  Exact in a
  /// double up to ~2^20 ranks; equal across transports iff every rank
  /// ended on the same choice — the cross-backend bit-identity pin.
  double trajectory_hash = 0.0;
};

/// Runs Standard MWU with `num_agents` ranks, each evaluating one probe per
/// cycle; weights are replicated and advanced identically on every rank from
/// the allreduced reward counts.  The oracle must be safe for concurrent
/// sampling (distinct RngStreams per rank).
///
/// `policy` selects the execution substrate (thread-per-rank or the bounded
/// superstep engine); the trajectory is bit-identical either way because
/// every recv is (source, tag)-filtered over non-overtaking channels and
/// all randomness lives in per-rank streams — the schedule cannot reorder
/// what any rank observes.
[[nodiscard]] ParallelMwuResult run_standard_spmd(
    const CostOracle& oracle, const MwuConfig& config, std::uint64_t seed,
    parallel::RunPolicy policy = {});

/// Runs Distributed MWU with one rank per population member.  Population is
/// taken from config via distributed_population() unless
/// `population_override` is nonzero (tests keep it small).  Under the
/// default (auto) policy, populations beyond the worker pool run on the
/// superstep engine — thousands of logical ranks on hardware_concurrency
/// OS threads — with the same bit-identical-trajectory guarantee as above.
/// Only observation requests are congestion-tracked; replies and
/// convergence snapshots are harness bookkeeping.
[[nodiscard]] ParallelMwuResult run_distributed_spmd(
    const CostOracle& oracle, const MwuConfig& config, std::uint64_t seed,
    std::size_t population_override = 0, parallel::RunPolicy policy = {});

/// How run_distributed_spmd_multiprocess splits the population across
/// worker processes and which fabric carries the cross-process traffic.
struct MultiprocessOptions {
  std::size_t processes = 2;
  parallel::transport::TransportKind kind =
      parallel::transport::TransportKind::kShmRing;
  parallel::RunPolicy policy{};
  std::size_t ring_bytes = parallel::transport::ShmFabric::kDefaultRingBytes;
  double timeout_seconds = 120.0;
};

/// Distributed MWU across forked worker processes: the identical per-rank
/// program as run_distributed_spmd — same per-rank RngStreams, same
/// message pattern — executed over the shm-ring or UDS transport, one
/// contiguous rank block per process.  Congestion statistics are the
/// world-wide per-cycle maxima (every process records the same reduction),
/// evaluations and total_messages are summed across processes, and the
/// trajectory_hash is pinned equal to the in-process run by test.  The
/// oracle must be process-independent (pure function of (option, rng)) —
/// each worker holds its own copy-on-write instance.
[[nodiscard]] ParallelMwuResult run_distributed_spmd_multiprocess(
    const CostOracle& oracle, const MwuConfig& config, std::uint64_t seed,
    std::size_t population_override, const MultiprocessOptions& options);

}  // namespace mwr::core
