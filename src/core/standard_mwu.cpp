#include "core/standard_mwu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mwr::core {

StandardMwu::StandardMwu(const MwuConfig& config) : config_(config) {
  if (config.num_options == 0)
    throw std::invalid_argument("StandardMwu: num_options == 0");
  if (config.num_agents == 0)
    throw std::invalid_argument("StandardMwu: num_agents == 0");
  if (config.learning_rate <= 0.0 || config.learning_rate > 0.5)
    throw std::invalid_argument("StandardMwu: eta must be in (0, 1/2]");
  init();
}

void StandardMwu::init() {
  weights_.assign(config_.num_options, 1.0);
  total_weight_ = static_cast<double>(config_.num_options);
  sampler_.rebuild(weights_);
}

std::vector<std::size_t> StandardMwu::sample(util::RngStream& rng) {
  if (config_.full_information) {
    // Weighted majority proper: one probe per option, every cycle.
    std::vector<std::size_t> assigned(config_.num_options);
    std::iota(assigned.begin(), assigned.end(), std::size_t{0});
    return assigned;
  }
  // O(log k) per draw instead of the O(k) linear scan; the sampler tracks
  // weights_ exactly, so the draw distribution is unchanged.
  std::vector<std::size_t> assigned(config_.num_agents);
  for (auto& option : assigned) {
    option = sampler_.sample(rng);
  }
  return assigned;
}

void StandardMwu::update(std::span<const std::size_t> options,
                         std::span<const double> rewards,
                         util::RngStream& /*rng*/) {
  if (options.size() != rewards.size())
    throw std::invalid_argument("StandardMwu::update: size mismatch");
  if (config_.full_information) {
    // Classic penalty update on the full cost vector: w *= (1 - eta)^cost.
    const double decay = 1.0 - config_.learning_rate;
    double max_weight = 0.0;
    for (std::size_t j = 0; j < options.size(); ++j) {
      const double cost = 1.0 - rewards[j];
      if (cost > 0.0) weights_[options[j]] *= std::pow(decay, cost);
    }
    for (const double w : weights_) max_weight = std::max(max_weight, w);
    total_weight_ = 0.0;
    for (auto& w : weights_) {
      w /= max_weight;
      total_weight_ += w;
    }
    sampler_.rebuild(weights_);
    return;
  }
  std::vector<double> counts(config_.num_options, 0.0);
  for (std::size_t j = 0; j < options.size(); ++j) {
    counts[options[j]] += rewards[j];
  }
  apply_reward_counts(counts);
}

void StandardMwu::apply_reward_counts(std::span<const double> counts) {
  if (counts.size() != weights_.size())
    throw std::invalid_argument("StandardMwu: counts width != k");
  const double growth = 1.0 + config_.learning_rate;
  double max_weight = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (counts[i] > 0.0) weights_[i] *= std::pow(growth, counts[i]);
    max_weight = std::max(max_weight, weights_[i]);
  }
  // Renormalize by the maximum: ratios (hence probabilities) are preserved
  // and the state stays in floating-point range indefinitely.
  total_weight_ = 0.0;
  for (auto& w : weights_) {
    w /= max_weight;
    total_weight_ += w;
  }
  sampler_.rebuild(weights_);
}

void StandardMwu::set_weights(std::vector<double> weights) {
  if (weights.size() != config_.num_options)
    throw std::invalid_argument("StandardMwu::set_weights: wrong width");
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("StandardMwu::set_weights: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("StandardMwu::set_weights: zero total");
  weights_ = std::move(weights);
  total_weight_ = total;
  sampler_.rebuild(weights_);
}

std::vector<double> StandardMwu::probabilities() const {
  std::vector<double> p(weights_.size());
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = weights_[i] / total_weight_;
  return p;
}

bool StandardMwu::converged() const {
  const double max_w = *std::max_element(weights_.begin(), weights_.end());
  // Maximum possible probability is 1 (no exploration floor); the paper's
  // criterion is a 1e-5 tolerance relative to that maximum (§IV-C).
  return max_w / total_weight_ >= 1.0 - config_.convergence_tol;
}

std::size_t StandardMwu::best_option() const {
  return static_cast<std::size_t>(
      std::max_element(weights_.begin(), weights_.end()) - weights_.begin());
}

}  // namespace mwr::core
