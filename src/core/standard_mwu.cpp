#include "core/standard_mwu.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/simd/weight_kernels.hpp"

namespace mwr::core {

StandardMwu::StandardMwu(const MwuConfig& config) : config_(config) {
  if (config.num_options == 0)
    throw std::invalid_argument("StandardMwu: num_options == 0");
  if (config.num_agents == 0)
    throw std::invalid_argument("StandardMwu: num_agents == 0");
  if (config.learning_rate <= 0.0 || config.learning_rate > 0.5)
    throw std::invalid_argument("StandardMwu: eta must be in (0, 1/2]");
  init();
}

void StandardMwu::init() {
  const std::vector<double> uniform(config_.num_options, 1.0);
  sampler_.rebuild(uniform);
  counts_scratch_.assign(config_.num_options, 0.0);
}

std::vector<std::size_t> StandardMwu::sample(util::RngStream& rng) {
  if (config_.full_information) {
    // Weighted majority proper: one probe per option, every cycle.
    std::vector<std::size_t> assigned(config_.num_options);
    std::iota(assigned.begin(), assigned.end(), std::size_t{0});
    return assigned;
  }
  // O(log k) per draw instead of the O(k) linear scan; the sampler tracks
  // the weights exactly, so the draw distribution is unchanged.
  std::vector<std::size_t> assigned(config_.num_agents);
  for (auto& option : assigned) {
    option = sampler_.sample(rng);
  }
  return assigned;
}

void StandardMwu::update(std::span<const std::size_t> options,
                         std::span<const double> rewards,
                         util::RngStream& /*rng*/) {
  if (options.size() != rewards.size())
    throw std::invalid_argument("StandardMwu::update: size mismatch");
  const auto& kernels = util::simd::active();
  if (config_.full_information) {
    // Classic penalty update on the full cost vector: w *= (1 - eta)^cost.
    // The probe list may index options sparsely and repeatedly, so the
    // update stays a scalar scatter; max + renormalize + tree rebuild run
    // through the fused kernel pass.
    const double decay = 1.0 - config_.learning_rate;
    const std::span<double> w = sampler_.mutable_weights();
    for (std::size_t j = 0; j < options.size(); ++j) {
      const double cost = 1.0 - rewards[j];
      if (cost > 0.0) w[options[j]] *= std::pow(decay, cost);
    }
    const double max_weight = kernels.max_reduce(w.data(), w.size());
    sampler_.rebuild_in_place(max_weight);
    return;
  }
  // Bandit path: accumulate this cycle's rewards sparsely into the
  // persistent scratch (same index order as the historical dense pass),
  // apply, then clear only the touched entries — no O(k) memset per cycle.
  for (std::size_t j = 0; j < options.size(); ++j) {
    counts_scratch_[options[j]] += rewards[j];
  }
  apply_reward_counts(counts_scratch_);
  for (std::size_t j = 0; j < options.size(); ++j) {
    counts_scratch_[options[j]] = 0.0;
  }
}

void StandardMwu::apply_reward_counts(std::span<const double> counts) {
  const std::span<double> w = sampler_.mutable_weights();
  if (counts.size() != w.size())
    throw std::invalid_argument("StandardMwu: counts width != k");
  const auto& kernels = util::simd::active();
  const double growth = 1.0 + config_.learning_rate;
  kernels.pow_update(w.data(), counts.data(), w.size(), growth);
  // Renormalize by the maximum: ratios (hence probabilities) are preserved
  // and the state stays in floating-point range indefinitely.  The divide,
  // total fold, and Fenwick reconstruction are one fused pass.
  const double max_weight = kernels.max_reduce(w.data(), w.size());
  sampler_.rebuild_in_place(max_weight);
}

void StandardMwu::set_weights(std::vector<double> weights) {
  if (weights.size() != config_.num_options)
    throw std::invalid_argument("StandardMwu::set_weights: wrong width");
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("StandardMwu::set_weights: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("StandardMwu::set_weights: zero total");
  sampler_.rebuild(weights);
}

std::vector<double> StandardMwu::probabilities() const {
  const std::vector<double>& w = sampler_.raw_weights();
  std::vector<double> p(w.size());
  util::simd::active().materialize_affine(p.data(), w.data(), w.size(), 1.0,
                                          sampler_.total(), 0.0);
  return p;
}

bool StandardMwu::converged() const {
  const std::vector<double>& w = sampler_.raw_weights();
  const double max_w = util::simd::active().max_reduce(w.data(), w.size());
  // Maximum possible probability is 1 (no exploration floor); the paper's
  // criterion is a 1e-5 tolerance relative to that maximum (§IV-C).
  return max_w / sampler_.total() >= 1.0 - config_.convergence_tol;
}

std::size_t StandardMwu::best_option() const {
  const std::vector<double>& w = sampler_.raw_weights();
  return util::simd::active().argmax(w.data(), w.size());
}

}  // namespace mwr::core
