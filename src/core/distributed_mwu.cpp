#include "core/distributed_mwu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/simd/weight_kernels.hpp"

namespace mwr::core {

DistributedMwu::DistributedMwu(const MwuConfig& config) : config_(config) {
  if (config.num_options == 0)
    throw std::invalid_argument("DistributedMwu: num_options == 0");
  if (config.exploration < 0.0 || config.exploration > 1.0)
    throw std::invalid_argument("DistributedMwu: mu must be in [0, 1]");
  if (config.adopt_failure > config.adopt_success)
    throw std::invalid_argument("DistributedMwu: requires alpha <= beta");
  if (config.adopt_success > 1.0 || config.adopt_failure < 0.0)
    throw std::invalid_argument("DistributedMwu: alpha/beta outside [0, 1]");
  const std::size_t pop = distributed_population(config);
  if (pop > config.max_population)
    throw std::length_error("DistributedMwu: population " +
                            std::to_string(pop) + " exceeds max_population");
  choices_.resize(pop);
  popularity_.resize(config.num_options);
  init();
}

void DistributedMwu::init() {
  // Round-robin initialization: each option starts with pop/k holders,
  // matching the paper's Fig 3 initialization loop.
  std::fill(popularity_.begin(), popularity_.end(), 0u);
  for (std::size_t j = 0; j < choices_.size(); ++j) {
    choices_[j] = static_cast<std::uint32_t>(j % config_.num_options);
    ++popularity_[choices_[j]];
  }
}

void DistributedMwu::set_choices(const std::vector<std::uint32_t>& choices) {
  if (choices.size() != choices_.size())
    throw std::invalid_argument("DistributedMwu::set_choices: wrong size");
  for (const auto c : choices) {
    if (c >= config_.num_options)
      throw std::invalid_argument(
          "DistributedMwu::set_choices: option out of range");
  }
  choices_ = choices;
  std::fill(popularity_.begin(), popularity_.end(), 0u);
  for (const auto c : choices_) ++popularity_[c];
}

std::vector<std::size_t> DistributedMwu::sample(util::RngStream& rng) {
  std::vector<std::size_t> observed(choices_.size());
  for (auto& option : observed) {
    if (rng.bernoulli(config_.exploration)) {
      option = rng.uniform_index(config_.num_options);  // random option
    } else {
      const std::size_t neighbor = rng.uniform_index(choices_.size());
      option = choices_[neighbor];  // observe a random neighbor
    }
  }
  return observed;
}

void DistributedMwu::update(std::span<const std::size_t> options,
                            std::span<const double> rewards,
                            util::RngStream& rng) {
  if (options.size() != choices_.size() || rewards.size() != choices_.size())
    throw std::invalid_argument("DistributedMwu::update: size mismatch");
  for (std::size_t j = 0; j < choices_.size(); ++j) {
    const bool success = rewards[j] > 0.0;
    const double adopt_probability =
        success ? config_.adopt_success : config_.adopt_failure;
    if (rng.bernoulli(adopt_probability)) {
      --popularity_[choices_[j]];
      choices_[j] = static_cast<std::uint32_t>(options[j]);
      ++popularity_[choices_[j]];
    }
  }
}

std::vector<double> DistributedMwu::probabilities() const {
  // Census materialization: p[i] = popularity[i] / population, through the
  // dispatched widening-convert + divide kernel (population < 2^31, so the
  // conversion is exact on both paths).
  std::vector<double> p(popularity_.size());
  util::simd::active().materialize_counts(p.data(), popularity_.data(),
                                          popularity_.size(),
                                          static_cast<double>(choices_.size()));
  return p;
}

bool DistributedMwu::converged() const {
  const auto max_count =
      *std::max_element(popularity_.begin(), popularity_.end());
  return static_cast<double>(max_count) >=
         config_.plurality_threshold * static_cast<double>(choices_.size());
}

std::size_t DistributedMwu::best_option() const {
  return static_cast<std::size_t>(
      std::max_element(popularity_.begin(), popularity_.end()) -
      popularity_.begin());
}

}  // namespace mwr::core
