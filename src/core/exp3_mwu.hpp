// Exp3 — an extension variant beyond the paper's three realizations.
//
// The paper's related work (§V-A) traces MWU through "hedge" and the
// adversarial-bandit literature; Exp3 (Auer et al.) is the canonical
// realization there, and practitioners reaching for this library will
// expect it.  Like Standard it is a global-memory algorithm whose n agents
// sample independently each cycle; unlike Standard, its update is
// importance-weighted — an observed reward r on option i counts as
// r / p_i — which makes the weight dynamics unbiased estimates of the full
// reward vector and yields the O(sqrt(T k ln k)) adversarial regret bound.
//
// It is excluded from the paper-table benches (those reproduce the
// published three-column layout) and compared separately in
// bench_exp3_extension.
#pragma once

#include <vector>

#include "core/mwu.hpp"
#include "util/fenwick_sampler.hpp"

namespace mwr::core {

class Exp3Mwu final : public MwuStrategy {
 public:
  explicit Exp3Mwu(const MwuConfig& config);

  void init() override;
  [[nodiscard]] std::vector<std::size_t> sample(util::RngStream& rng) override;
  void update(std::span<const std::size_t> options,
              std::span<const double> rewards, util::RngStream& rng) override;
  [[nodiscard]] std::vector<double> probabilities() const override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::size_t best_option() const override;
  [[nodiscard]] std::size_t cpus_per_cycle() const override {
    return config_.num_agents;
  }
  [[nodiscard]] MwuKind kind() const override { return MwuKind::kExp3; }

  /// Highest probability the gamma floor admits: (1 - gamma) + gamma / k.
  [[nodiscard]] double max_achievable_probability() const noexcept;

  /// Raw weights — exposed for checkpointing.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  /// Replaces the weight state (checkpoint restore).
  void set_weights(std::vector<double> weights);

 private:
  /// Materializes the exploration-floored probabilities into `p` (resized
  /// to k) without allocating after the first call.
  void materialize_probabilities(std::vector<double>& p) const;

  MwuConfig config_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  /// Rebuilt from the exploration-floored probabilities at each sample()
  /// call; amortizes the build over the n per-agent draws.
  util::FenwickSampler sampler_;
  /// Persistent per-cycle scratch: probability vector (sample + update) and
  /// importance-weighted exponents (update, accumulated and cleared
  /// sparsely).  Never reallocated after init().
  std::vector<double> prob_scratch_;
  std::vector<double> exp_scratch_;
};

}  // namespace mwr::core
