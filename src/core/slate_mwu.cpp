#include "core/slate_mwu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/slate_projection.hpp"
#include "util/simd/weight_kernels.hpp"

namespace mwr::core {

std::size_t SlateMwu::slate_size_for(std::size_t num_options, double gamma) {
  const auto k = static_cast<double>(num_options);
  auto s = static_cast<std::size_t>(std::lround(gamma * k));
  s = std::max<std::size_t>(1, s);
  return std::min(s, num_options);
}

SlateMwu::SlateMwu(const MwuConfig& config) : config_(config) {
  if (config.num_options == 0)
    throw std::invalid_argument("SlateMwu: num_options == 0");
  if (config.exploration <= 0.0 || config.exploration > 1.0)
    throw std::invalid_argument("SlateMwu: gamma must be in (0, 1]");
  if (config.learning_rate <= 0.0 || config.learning_rate > 0.5)
    throw std::invalid_argument("SlateMwu: eta must be in (0, 1/2]");
  slate_size_ = slate_size_for(config.num_options, config.exploration);
  init();
}

void SlateMwu::init() {
  weights_.assign(config_.num_options, 1.0);
  total_weight_ = static_cast<double>(config_.num_options);
}

std::vector<double> SlateMwu::probabilities() const {
  const double gamma = config_.exploration;
  const double floor = gamma / static_cast<double>(weights_.size());
  std::vector<double> p(weights_.size());
  // p[i] = (1 - gamma) * w[i] / total + floor, via the dispatched kernel
  // (same operation order as the historical scalar loop, no contraction).
  util::simd::active().materialize_affine(p.data(), weights_.data(),
                                          weights_.size(), 1.0 - gamma,
                                          total_weight_, floor);
  return p;
}

std::vector<std::size_t> SlateMwu::sample(util::RngStream& rng) {
  const auto p = probabilities();
  const auto q = cap_to_slate_marginals(p, slate_size_);
  if (sampler_ == Sampler::kDecomposition) {
    // The paper's construction: decompose q into a convex combination of
    // slate vertices and draw one vertex by its coefficient.
    const auto components = decompose_into_slates(q, slate_size_);
    std::vector<double> coefficients;
    coefficients.reserve(components.size());
    for (const auto& component : components) {
      coefficients.push_back(component.coefficient);
    }
    // Same one-uniform draw as weighted_choice; routed through the Fenwick
    // sampler so every MWU realization shares one weighted-draw code path
    // (the decomposition can yield up to 2k components).
    coefficient_sampler_.rebuild(coefficients);
    const std::size_t pick = coefficient_sampler_.sample(rng);
    return components[std::min(pick, components.size() - 1)].members;
  }
  return systematic_sample(q, slate_size_, rng);
}

void SlateMwu::update(std::span<const std::size_t> options,
                      std::span<const double> rewards,
                      util::RngStream& /*rng*/) {
  if (options.size() != rewards.size())
    throw std::invalid_argument("SlateMwu::update: size mismatch");
  const double growth = 1.0 + config_.learning_rate;
  for (std::size_t j = 0; j < options.size(); ++j) {
    if (rewards[j] > 0.0) weights_[options[j]] *= growth;
  }
  // Fused max + renormalize + total: the divide is the dispatched kernel's
  // op-for-op twin of the historical loop, and the total keeps the strict
  // left-to-right fold (reduction-order contract).
  const auto& kernels = util::simd::active();
  const double max_weight = kernels.max_reduce(weights_.data(), weights_.size());
  total_weight_ = util::simd::normalize_sum(weights_.data(), weights_.size(),
                                            max_weight);
}

void SlateMwu::set_weights(std::vector<double> weights) {
  if (weights.size() != config_.num_options)
    throw std::invalid_argument("SlateMwu::set_weights: wrong width");
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0))
      throw std::invalid_argument("SlateMwu::set_weights: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("SlateMwu::set_weights: zero total");
  weights_ = std::move(weights);
  total_weight_ = total;
}

double SlateMwu::max_achievable_probability() const noexcept {
  const double gamma = config_.exploration;
  return (1.0 - gamma) + gamma / static_cast<double>(weights_.size());
}

bool SlateMwu::converged() const {
  const double max_w =
      util::simd::active().max_reduce(weights_.data(), weights_.size());
  const double gamma = config_.exploration;
  const double p_max = (1.0 - gamma) * max_w / total_weight_ +
                       gamma / static_cast<double>(weights_.size());
  return p_max >= max_achievable_probability() - config_.convergence_tol;
}

std::size_t SlateMwu::best_option() const {
  return util::simd::active().argmax(weights_.data(), weights_.size());
}

}  // namespace mwr::core
