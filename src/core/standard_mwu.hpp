// Standard MWU (the weighted-majority realization; paper Fig 1).
//
// Global-memory variant: one shared weight vector, all n agents sample
// options proportionally to it each cycle, and every observed reward is
// folded into the shared weights at the end-of-cycle synchronization point.
// The update is multiplicative in the reward, w_i <- w_i * (1 + eta)^r,
// which with weight-proportional sampling produces the rich-get-richer
// concentration the algorithm is known for: fast convergence, but an early
// lucky streak on a near-best option can lock the search in — exactly the
// accuracy profile the paper measures for Standard (lowest of the three,
// §IV-D).
//
// Weights are renormalized by the maximum after each cycle, which preserves
// all probability ratios while keeping the state in floating-point range
// over arbitrarily long runs.
#pragma once

#include <vector>

#include "core/mwu.hpp"
#include "util/fenwick_sampler.hpp"

namespace mwr::core {

class StandardMwu final : public MwuStrategy {
 public:
  explicit StandardMwu(const MwuConfig& config);

  void init() override;
  /// Bandit mode: num_agents weight-proportional draws.  Full-information
  /// mode: every option exactly once (0, 1, ..., k-1).
  [[nodiscard]] std::vector<std::size_t> sample(util::RngStream& rng) override;
  void update(std::span<const std::size_t> options,
              std::span<const double> rewards, util::RngStream& rng) override;
  [[nodiscard]] std::vector<double> probabilities() const override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::size_t best_option() const override;
  [[nodiscard]] std::size_t cpus_per_cycle() const override {
    return config_.full_information ? config_.num_options
                                    : config_.num_agents;
  }
  [[nodiscard]] MwuKind kind() const override { return MwuKind::kStandard; }

  /// Raw (renormalized) weights — exposed for tests and the parallel driver.
  /// The sampler owns the canonical SoA array; there is no duplicate copy.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return sampler_.raw_weights();
  }

  /// Replaces the weight state (checkpoint restore).  Throws
  /// std::invalid_argument on wrong width or non-positive total.
  void set_weights(std::vector<double> weights);

  /// Applies one cycle's aggregated per-option reward counts directly.
  /// This is the reduction form used by the message-passing driver, where
  /// each rank contributes its local counts through an allreduce.
  void apply_reward_counts(std::span<const double> counts_per_option);

 private:
  MwuConfig config_;
  /// Canonical weight storage AND the O(log k) weight-proportional sampler.
  /// The fused rebuild_in_place() pass renormalizes and reconstructs the
  /// tree in one sweep, so weights are touched once per cycle.
  util::FenwickSampler sampler_;
  /// Persistent per-cycle reward-count scratch (bandit path): accumulated
  /// sparsely, cleared sparsely, never reallocated after the first cycle.
  std::vector<double> counts_scratch_;
};

}  // namespace mwr::core
