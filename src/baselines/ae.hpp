// AE (Adaptive Equivalence) — the deterministic single-edit baseline of
// §IV-G.
//
// Weimer et al.'s AE replaces stochastic search with a systematic
// enumeration of single-edit patches, pruned by semantic-equivalence
// checks so no two equivalent edits are ever both tested.  Our surrogate
// enumerates the covered-statement edit universe in a deterministic order
// and prunes by an equivalence-class key: delete(s) is one class per
// statement; insert/swap collapse donors with identical modeled semantics
// (donor statements hash into a bounded number of semantic classes,
// reflecting how often real statements are duplicates — the source of AE's
// savings).  AE is single-edit by construction, so multi-edit defects are
// out of its reach no matter the budget.
#pragma once

#include <cstdint>

#include "baselines/genprog.hpp"

namespace mwr::baselines {

struct AeConfig {
  std::uint64_t max_suite_runs = 10000;
  /// Modeled number of distinct semantic classes donor statements fall
  /// into; smaller = more aggressive equivalence pruning.
  std::size_t semantic_classes = 64;
  std::uint64_t seed = 17;
};

struct AeOutcome : SearchOutcome {
  std::uint64_t enumerated = 0;  ///< candidate edits considered.
  std::uint64_t pruned = 0;      ///< skipped as equivalent to a tested edit.
};

[[nodiscard]] AeOutcome run_ae(const apr::TestOracle& oracle,
                               const AeConfig& config);

}  // namespace mwr::baselines
