#include "baselines/comparison.hpp"

#include <algorithm>

namespace mwr::baselines {

ScenarioComparison compare_on_scenario(const datasets::ScenarioSpec& spec,
                                       const ComparisonConfig& config) {
  ScenarioComparison comparison;
  comparison.scenario = spec.name;
  comparison.language = spec.language;

  // --- MWRepair: phase 1 (amortized precompute) + phase 2 (online).
  {
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    apr::PoolConfig pool_config;
    pool_config.target_size = config.pool_target;
    pool_config.max_attempts = 8 * config.pool_target;
    pool_config.threads = 4;
    pool_config.seed = config.seed ^ spec.seed;
    const auto pool = apr::MutationPool::precompute(oracle, pool_config);
    comparison.precompute_runs = oracle.suite_runs();

    apr::MwRepairConfig repair_config;
    repair_config.agents = config.mwrepair_agents;
    repair_config.max_count = std::min<std::size_t>(256, pool.size());
    repair_config.max_iterations =
        static_cast<std::size_t>(config.budget / config.mwrepair_agents);
    repair_config.seed = config.seed ^ (spec.seed * 3);

    ToolResult result;
    result.tool = "MWRepair";
    if (!pool.empty()) {
      const apr::MwRepair repair(repair_config);
      const auto outcome = repair.run(oracle, pool);
      result.repaired = outcome.repaired;
      result.suite_runs = outcome.probes;
      result.patch_edits = outcome.patch.size();
      // One probe per agent per cycle runs in parallel, so the online phase
      // costs one suite-run time per cycle.  The precompute is a one-time
      // per-program cost amortized across bugs (§III-C) and is reported
      // separately in ScenarioComparison::precompute_runs, exactly as the
      // fitness-evaluation accounting treats it.
      result.latency_units = static_cast<double>(outcome.iterations);
    }
    comparison.tools.push_back(result);
  }

  // --- GenProg (jGenProg on the Java scenarios: same policy).
  {
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    GenProgConfig genprog_config;
    genprog_config.max_suite_runs = config.budget;
    genprog_config.seed = config.seed ^ (spec.seed * 5);
    const auto outcome = run_genprog(oracle, genprog_config);
    comparison.tools.push_back({spec.language == "Java" ? "jGenProg"
                                                        : "GenProg",
                                outcome.repaired, outcome.suite_runs,
                                outcome.latency_units, outcome.patch.size()});
  }

  // --- RSRepair.
  {
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    RsRepairConfig rs_config;
    rs_config.max_suite_runs = config.budget;
    rs_config.seed = config.seed ^ (spec.seed * 7);
    const auto outcome = run_rsrepair(oracle, rs_config);
    comparison.tools.push_back({"RSRepair", outcome.repaired,
                                outcome.suite_runs, outcome.latency_units,
                                outcome.patch.size()});
  }

  // --- AE.
  {
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    AeConfig ae_config;
    ae_config.max_suite_runs = config.budget;
    ae_config.seed = config.seed ^ (spec.seed * 11);
    const auto outcome = run_ae(oracle, ae_config);
    comparison.tools.push_back({"AE", outcome.repaired, outcome.suite_runs,
                                outcome.latency_units, outcome.patch.size()});
  }

  // --- Island GA (Schulte-DiLorenzo-style partitioned search, §V-B).
  {
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    IslandGaConfig island_config;
    island_config.max_suite_runs = config.budget;
    island_config.seed = config.seed ^ (spec.seed * 13);
    const auto outcome = run_island_ga(oracle, island_config);
    comparison.tools.push_back({"IslandGA", outcome.repaired,
                                outcome.suite_runs, outcome.latency_units,
                                outcome.patch.size()});
  }

  return comparison;
}

std::vector<ToolTally> tally(
    const std::vector<ScenarioComparison>& comparisons) {
  std::vector<ToolTally> tallies;
  const auto find = [&](const std::string& tool) -> ToolTally& {
    for (auto& t : tallies) {
      if (t.tool == tool) return t;
    }
    tallies.push_back({tool, 0, 0, 0, 0.0});
    return tallies.back();
  };
  for (const auto& comparison : comparisons) {
    for (const auto& result : comparison.tools) {
      // GenProg and jGenProg are the same policy on different languages;
      // keep them distinct in the tally, as the paper does.
      ToolTally& t = find(result.tool);
      ++t.attempted;
      if (result.repaired) ++t.repaired;
      t.total_suite_runs += result.suite_runs;
      t.total_latency += result.latency_units;
    }
  }
  return tallies;
}

}  // namespace mwr::baselines
