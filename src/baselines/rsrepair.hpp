// RSRepair — the random-search baseline of §IV-G.
//
// Qi et al.'s observation was that GenProg's genetic machinery often adds
// little over unguided random search; RSRepair therefore samples candidate
// patches independently (here: one or two fresh random edits per trial,
// matching the one-to-two-edit radius the paper attributes to existing
// tools in §III-A) and keeps no state between trials.  It parallelizes
// trivially because no information is shared — and it fails precisely on
// the scenarios where repairs are sparse or need more combined edits than
// its radius reaches.
#pragma once

#include <cstdint>

#include "baselines/genprog.hpp"

namespace mwr::baselines {

struct RsRepairConfig {
  std::uint64_t max_suite_runs = 10000;
  double two_edit_rate = 0.3;   ///< chance a trial uses two edits instead of one.
  std::uint64_t seed = 13;
};

[[nodiscard]] SearchOutcome run_rsrepair(const apr::TestOracle& oracle,
                                         const RsRepairConfig& config);

}  // namespace mwr::baselines
