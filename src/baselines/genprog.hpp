// GenProg-style genetic repair search — the evolutionary-computation
// baseline of §IV-G.
//
// Faithful to the published search *policy* at the granularity the paper
// compares on: a population of patch variants, fitness = tests passed
// (bug-inducing test weighted like a required test), tournament selection,
// one-point crossover over edit lists, and mutation operators drawn from
// the same statement-level space as every other tool here.  New mutations
// are generated on demand inside the search loop — GenProg has no
// precomputed pool, which is exactly the inefficiency MWRepair's phase 1
// removes.  jGenProg is this same policy run on the Java scenarios.
#pragma once

#include <cstdint>

#include "apr/mutation.hpp"
#include "apr/test_oracle.hpp"

namespace mwr::baselines {

/// Shared result shape for all baseline searches and MWRepair in the
/// §IV-G comparison.
struct SearchOutcome {
  bool repaired = false;
  apr::Patch patch;
  std::uint64_t suite_runs = 0;   ///< fitness evaluations consumed.
  /// Modeled wall-clock in suite-run units: evaluations divided by the
  /// tool's parallel evaluation width (1 for the serial baselines).
  double latency_units = 0.0;
};

struct GenProgConfig {
  std::size_t population = 40;
  std::size_t max_generations = 250;
  std::uint64_t max_suite_runs = 10000;   ///< overall fitness-eval budget.
  double crossover_rate = 0.5;
  double mutation_rate = 0.9;   ///< chance a child gains a fresh random edit.
  double drop_rate = 0.1;       ///< chance a child loses one existing edit.
  std::size_t tournament = 2;
  std::uint64_t seed = 11;
};

/// Runs the genetic search until a repair, the generation limit, or the
/// suite-run budget.
[[nodiscard]] SearchOutcome run_genprog(const apr::TestOracle& oracle,
                                        const GenProgConfig& config);

}  // namespace mwr::baselines
