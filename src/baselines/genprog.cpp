#include "baselines/genprog.hpp"

#include <algorithm>

namespace mwr::baselines {

namespace {

struct Variant {
  apr::Patch patch;
  std::uint32_t fitness = 0;
};

apr::Patch crossover(const apr::Patch& a, const apr::Patch& b,
                     util::RngStream& rng) {
  // One-point crossover on the edit lists: prefix of one parent, suffix of
  // the other, then canonicalized (duplicate edits collapse).
  apr::Patch child;
  const std::size_t cut_a = a.empty() ? 0 : rng.uniform_index(a.size() + 1);
  const std::size_t cut_b = b.empty() ? 0 : rng.uniform_index(b.size() + 1);
  child.insert(child.end(), a.begin(),
               a.begin() + static_cast<std::ptrdiff_t>(cut_a));
  child.insert(child.end(), b.begin() + static_cast<std::ptrdiff_t>(cut_b),
               b.end());
  apr::canonicalize(child);
  return child;
}

}  // namespace

SearchOutcome run_genprog(const apr::TestOracle& oracle,
                          const GenProgConfig& config) {
  util::RngStream rng(config.seed);
  const apr::ProgramModel& program = oracle.program();
  const std::uint64_t runs_at_start = oracle.suite_runs();

  SearchOutcome outcome;
  const auto budget_left = [&] {
    return oracle.suite_runs() - runs_at_start < config.max_suite_runs;
  };
  const auto evaluate = [&](Variant& v) -> bool {
    const apr::Evaluation e = oracle.evaluate(v.patch);
    v.fitness = e.fitness();
    if (e.is_repair()) {
      outcome.repaired = true;
      outcome.patch = v.patch;
    }
    return outcome.repaired;
  };

  // Initial population: single random edits (GenProg's seeding).
  std::vector<Variant> population(config.population);
  for (auto& v : population) {
    v.patch = {apr::random_mutation(program, rng)};
    if (!budget_left() || evaluate(v)) goto done;
  }

  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    // Tournament selection into the next generation.
    std::vector<Variant> next;
    next.reserve(config.population);
    while (next.size() < config.population) {
      const auto pick = [&]() -> const Variant& {
        const Variant* best = &population[rng.uniform_index(population.size())];
        for (std::size_t t = 1; t < config.tournament; ++t) {
          const Variant& challenger =
              population[rng.uniform_index(population.size())];
          if (challenger.fitness > best->fitness) best = &challenger;
        }
        return *best;
      };
      Variant child;
      if (rng.bernoulli(config.crossover_rate)) {
        child.patch = crossover(pick().patch, pick().patch, rng);
      } else {
        child.patch = pick().patch;
      }
      // Mutation: gain a fresh random edit and/or lose an existing one.
      if (rng.bernoulli(config.mutation_rate)) {
        child.patch.push_back(apr::random_mutation(program, rng));
        apr::canonicalize(child.patch);
      }
      if (!child.patch.empty() && rng.bernoulli(config.drop_rate)) {
        child.patch.erase(child.patch.begin() + static_cast<std::ptrdiff_t>(
                                                    rng.uniform_index(
                                                        child.patch.size())));
      }
      next.push_back(std::move(child));
    }
    for (auto& v : next) {
      if (!budget_left() || evaluate(v)) {
        population = std::move(next);
        goto done;
      }
    }
    population = std::move(next);
  }

done:
  outcome.suite_runs = oracle.suite_runs() - runs_at_start;
  outcome.latency_units = static_cast<double>(outcome.suite_runs);  // serial
  return outcome;
}

}  // namespace mwr::baselines
