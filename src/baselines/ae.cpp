#include "baselines/ae.hpp"

#include <unordered_set>

namespace mwr::baselines {

AeOutcome run_ae(const apr::TestOracle& oracle, const AeConfig& config) {
  const apr::ProgramModel& program = oracle.program();
  const std::uint64_t runs_at_start = oracle.suite_runs();
  AeOutcome outcome;
  std::unordered_set<std::uint64_t> tested_classes;

  const auto semantic_class = [&](const apr::Mutation& m) -> std::uint64_t {
    // Donors collapse into a bounded number of semantic classes; the class
    // of an edit is (kind, target, donor-class).
    const std::uint64_t donor_class =
        (m.kind == apr::MutationKind::kDelete)
            ? 0
            : apr::stable_hash(program.spec().seed, 0xAE, m.donor) %
                  config.semantic_classes;
    return (static_cast<std::uint64_t>(m.kind) << 56) ^
           (static_cast<std::uint64_t>(m.target) << 24) ^ donor_class;
  };

  const auto budget_left = [&] {
    return oracle.suite_runs() - runs_at_start < config.max_suite_runs;
  };

  // Deterministic sweep: delete first (cheapest class), then insert/swap
  // with a deterministic donor stride so classes are visited evenly.
  for (const std::uint32_t target : program.covered_statements()) {
    for (const auto kind : {apr::MutationKind::kDelete,
                            apr::MutationKind::kInsert,
                            apr::MutationKind::kSwap}) {
      const std::size_t donor_steps =
          (kind == apr::MutationKind::kDelete) ? 1 : config.semantic_classes;
      for (std::size_t step = 0; step < donor_steps; ++step) {
        if (!budget_left()) goto done;
        apr::Mutation m;
        m.kind = kind;
        m.target = target;
        if (kind != apr::MutationKind::kDelete) {
          m.donor = static_cast<std::uint32_t>(
              apr::stable_hash(program.spec().seed, 0xD0408, target, step) %
              program.num_statements());
        }
        ++outcome.enumerated;
        if (!tested_classes.insert(semantic_class(m)).second) {
          ++outcome.pruned;
          continue;
        }
        const apr::Patch trial{m};
        const apr::Evaluation e = oracle.evaluate(trial);
        if (e.is_repair()) {
          outcome.repaired = true;
          outcome.patch = trial;
          goto done;
        }
      }
    }
  }

done:
  outcome.suite_runs = oracle.suite_runs() - runs_at_start;
  outcome.latency_units = static_cast<double>(outcome.suite_runs);  // serial
  return outcome;
}

}  // namespace mwr::baselines
