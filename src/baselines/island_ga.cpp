#include "baselines/island_ga.hpp"

#include <algorithm>

namespace mwr::baselines {

namespace {

struct Variant {
  apr::Patch patch;
  std::uint32_t fitness = 0;
};

struct Island {
  std::vector<apr::Mutation> universe;  // this partition's mutation targets
  std::vector<Variant> population;
  util::RngStream rng{0};
};

// A random mutation restricted to the island's statement partition.
apr::Mutation partition_mutation(const apr::ProgramModel& program,
                                 std::span<const std::uint32_t> targets,
                                 util::RngStream& rng) {
  apr::Mutation m;
  m.kind = static_cast<apr::MutationKind>(rng.uniform_index(3));
  m.target = targets[rng.uniform_index(targets.size())];
  if (m.kind != apr::MutationKind::kDelete) {
    m.donor =
        static_cast<std::uint32_t>(rng.uniform_index(program.num_statements()));
  }
  return m;
}

}  // namespace

IslandGaOutcome run_island_ga(const apr::TestOracle& oracle,
                              const IslandGaConfig& config) {
  const apr::ProgramModel& program = oracle.program();
  const std::uint64_t runs_at_start = oracle.suite_runs();
  util::RngStream master(config.seed);

  // Partition the covered statements round-robin across islands — the
  // "search space explicitly partitioned among the processors".
  const auto& covered = program.covered_statements();
  std::vector<std::vector<std::uint32_t>> partitions(config.islands);
  for (std::size_t i = 0; i < covered.size(); ++i) {
    partitions[i % config.islands].push_back(covered[i]);
  }

  IslandGaOutcome outcome;
  const auto budget_left = [&] {
    return oracle.suite_runs() - runs_at_start < config.max_suite_runs;
  };

  std::vector<Island> islands(config.islands);
  for (std::size_t i = 0; i < config.islands; ++i) {
    islands[i].rng = master.split();
    islands[i].population.resize(config.population_per_island);
  }

  const auto evaluate = [&](Variant& v, std::size_t island) -> bool {
    const apr::Evaluation e = oracle.evaluate(v.patch);
    v.fitness = e.fitness();
    if (e.is_repair()) {
      outcome.repaired = true;
      outcome.patch = v.patch;
      outcome.winning_island = island;
    }
    return outcome.repaired;
  };

  // Seed each island with single edits from its own partition.
  for (std::size_t i = 0; i < config.islands; ++i) {
    if (partitions[i].empty()) continue;
    for (auto& v : islands[i].population) {
      v.patch = {partition_mutation(program, partitions[i], islands[i].rng)};
      if (!budget_left() || evaluate(v, i)) goto done;
    }
  }

  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    for (std::size_t i = 0; i < config.islands; ++i) {
      if (partitions[i].empty()) continue;
      Island& island = islands[i];
      std::vector<Variant> next;
      next.reserve(island.population.size());
      while (next.size() < island.population.size()) {
        const auto pick = [&]() -> const Variant& {
          const Variant& a =
              island.population[island.rng.uniform_index(
                  island.population.size())];
          const Variant& b =
              island.population[island.rng.uniform_index(
                  island.population.size())];
          return a.fitness >= b.fitness ? a : b;
        };
        Variant child;
        if (island.rng.bernoulli(config.crossover_rate)) {
          const apr::Patch& pa = pick().patch;
          const apr::Patch& pb = pick().patch;
          const std::size_t cut_a =
              pa.empty() ? 0 : island.rng.uniform_index(pa.size() + 1);
          const std::size_t cut_b =
              pb.empty() ? 0 : island.rng.uniform_index(pb.size() + 1);
          child.patch.assign(pa.begin(),
                             pa.begin() + static_cast<std::ptrdiff_t>(cut_a));
          child.patch.insert(child.patch.end(),
                             pb.begin() + static_cast<std::ptrdiff_t>(cut_b),
                             pb.end());
          apr::canonicalize(child.patch);
        } else {
          child.patch = pick().patch;
        }
        if (island.rng.bernoulli(config.mutation_rate)) {
          child.patch.push_back(
              partition_mutation(program, partitions[i], island.rng));
          apr::canonicalize(child.patch);
        }
        if (!child.patch.empty() && island.rng.bernoulli(config.drop_rate)) {
          child.patch.erase(
              child.patch.begin() +
              static_cast<std::ptrdiff_t>(
                  island.rng.uniform_index(child.patch.size())));
        }
        next.push_back(std::move(child));
      }
      for (auto& v : next) {
        if (!budget_left() || evaluate(v, i)) {
          island.population = std::move(next);
          goto done;
        }
      }
      island.population = std::move(next);
    }

    // Ring migration: each island's best variant replaces its neighbor's
    // worst — how partitioned islands can eventually assemble multi-
    // partition patches.
    if ((gen + 1) % config.migration_interval == 0 && config.islands > 1) {
      for (std::size_t i = 0; i < config.islands; ++i) {
        Island& from = islands[i];
        Island& to = islands[(i + 1) % config.islands];
        if (from.population.empty() || to.population.empty()) continue;
        const auto best = std::max_element(
            from.population.begin(), from.population.end(),
            [](const Variant& a, const Variant& b) {
              return a.fitness < b.fitness;
            });
        const auto worst = std::min_element(
            to.population.begin(), to.population.end(),
            [](const Variant& a, const Variant& b) {
              return a.fitness < b.fitness;
            });
        *worst = *best;
        ++outcome.migrations;
      }
    }
  }

done:
  outcome.suite_runs = oracle.suite_runs() - runs_at_start;
  // Islands evaluate concurrently.
  outcome.latency_units = static_cast<double>(outcome.suite_runs) /
                          static_cast<double>(std::max<std::size_t>(
                              1, config.islands));
  return outcome;
}

}  // namespace mwr::baselines
