// Island-model distributed GA — the Schulte–DiLorenzo-style baseline the
// paper's related work singles out (§V-B: "the Schulte-DiLorenzo
// distributed algorithm, which uses a distributed genetic algorithm to
// coordinate exploration, but the search space is explicitly partitioned
// among the processors").
//
// Our surrogate keeps the two defining properties: (1) each island runs an
// independent GenProg-style population whose *mutation targets are
// restricted to its own partition* of the covered statements, and (2)
// islands periodically migrate their best variant to a ring neighbor.
// Partitioning is the contrast with MWRepair: a defect whose repair needs
// edits from multiple partitions can only be assembled after migration,
// and a partition that doesn't contain the repair-relevant statement can
// never find it locally.
#pragma once

#include <cstdint>

#include "baselines/genprog.hpp"

namespace mwr::baselines {

struct IslandGaConfig {
  std::size_t islands = 4;
  std::size_t population_per_island = 10;
  std::size_t max_generations = 250;
  std::uint64_t max_suite_runs = 10000;  ///< shared across all islands.
  std::size_t migration_interval = 10;   ///< generations between migrations.
  double crossover_rate = 0.5;
  double mutation_rate = 0.9;
  double drop_rate = 0.1;
  std::uint64_t seed = 23;
};

struct IslandGaOutcome : SearchOutcome {
  std::size_t migrations = 0;
  std::size_t winning_island = 0;  ///< island that found the repair (if any).
};

/// Runs the partitioned island GA against the oracle.  Latency is modeled
/// as suite runs divided by the island count (islands evaluate in
/// parallel; migration is a cheap synchronization).
[[nodiscard]] IslandGaOutcome run_island_ga(const apr::TestOracle& oracle,
                                            const IslandGaConfig& config);

}  // namespace mwr::baselines
