#include "baselines/rsrepair.hpp"

namespace mwr::baselines {

SearchOutcome run_rsrepair(const apr::TestOracle& oracle,
                           const RsRepairConfig& config) {
  util::RngStream rng(config.seed);
  const std::uint64_t runs_at_start = oracle.suite_runs();
  SearchOutcome outcome;
  while (oracle.suite_runs() - runs_at_start < config.max_suite_runs) {
    const std::size_t edits = rng.bernoulli(config.two_edit_rate) ? 2 : 1;
    const apr::Patch trial =
        apr::random_patch(oracle.program(), edits, rng);
    const apr::Evaluation e = oracle.evaluate(trial);
    if (e.is_repair()) {
      outcome.repaired = true;
      outcome.patch = trial;
      break;
    }
  }
  outcome.suite_runs = oracle.suite_runs() - runs_at_start;
  outcome.latency_units = static_cast<double>(outcome.suite_runs);  // serial
  return outcome;
}

}  // namespace mwr::baselines
