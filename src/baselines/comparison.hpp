// The §IV-G comparison harness: every repair tool, same scenarios, same
// mutation space, same simulated test oracle.
//
// Cost accounting follows the paper's conventions:
//   - fitness evaluations = suite runs consumed by the *online* search
//     (MWRepair's precompute is a one-time, per-program cost "amortized
//     over the cost of repairing multiple bugs", §III-C, and is reported
//     separately);
//   - latency = suite runs divided by the tool's parallel evaluation
//     width: the serial baselines evaluate one candidate at a time, while
//     MWRepair evaluates one probe per agent per cycle and precomputes the
//     pool embarrassingly parallel.
#pragma once

#include <string>
#include <vector>

#include "apr/mwrepair.hpp"
#include "baselines/ae.hpp"
#include "baselines/genprog.hpp"
#include "baselines/island_ga.hpp"
#include "baselines/rsrepair.hpp"

namespace mwr::baselines {

struct ComparisonConfig {
  std::uint64_t budget = 10000;       ///< per-tool online suite-run budget.
  std::size_t mwrepair_agents = 64;   ///< MWRepair's parallel width.
  /// Precomputed safe mutations per program.  Deliberately large: the pool
  /// is a one-time cost amortized over every bug repaired in the program
  /// (§III-C), and sparse-repair scenarios need it to contain the rare
  /// repair-relevant edits at all.
  std::size_t pool_target = 12000;
  std::uint64_t seed = 20210525;
};

struct ToolResult {
  std::string tool;
  bool repaired = false;
  std::uint64_t suite_runs = 0;   ///< online fitness evaluations.
  double latency_units = 0.0;     ///< modeled parallel wall-clock.
  std::size_t patch_edits = 0;    ///< size of the repairing patch (0 if none).
};

struct ScenarioComparison {
  std::string scenario;
  std::string language;
  std::uint64_t precompute_runs = 0;  ///< MWRepair phase-1 cost (amortized).
  /// MWRepair, GenProg (jGenProg on Java), RSRepair, AE, IslandGA — in
  /// that order.
  std::vector<ToolResult> tools;
};

/// Runs all four tools on one scenario.
[[nodiscard]] ScenarioComparison compare_on_scenario(
    const datasets::ScenarioSpec& spec, const ComparisonConfig& config);

/// Aggregate across scenarios: repairs found and total cost per tool.
struct ToolTally {
  std::string tool;
  std::size_t repaired = 0;
  std::size_t attempted = 0;
  std::uint64_t total_suite_runs = 0;
  double total_latency = 0.0;
};

[[nodiscard]] std::vector<ToolTally> tally(
    const std::vector<ScenarioComparison>& comparisons);

}  // namespace mwr::baselines
