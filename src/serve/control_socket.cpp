// The only file in src/serve allowed to touch raw IPC syscalls — see the
// raw-ipc whitelist in tools/mwr_lint.py.  Keep every socket(2)-family
// call here; the rest of the subsystem trades in WireFrames.
#include "serve/control_socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mwr::serve {

using parallel::transport::WireFrame;

namespace {

constexpr std::size_t kReadChunkBytes = 64 * 1024;

[[noreturn]] void raise_errno(const std::string& what) {
  throw std::runtime_error("serve control socket: " + what + ": " +
                           std::strerror(errno));
}

void fill_addr(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw std::runtime_error("serve control socket: path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

}  // namespace

ControlConn::ControlConn(int fd) : fd_(fd) {}

ControlConn::~ControlConn() {
  if (fd_ >= 0) ::close(fd_);
}

bool ControlConn::send_frame(const WireFrame& frame) {
  std::vector<std::uint8_t> bytes;
  parallel::transport::encode_frame(frame, bytes);
  std::size_t written = 0;
  while (written < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      raise_errno("send");
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool ControlConn::fill_buffer(bool blocking) {
  if (consumed_ == staged_.size()) {
    staged_.clear();
    consumed_ = 0;
  }
  const std::size_t old = staged_.size();
  staged_.resize(old + kReadChunkBytes);
  for (;;) {
    const ssize_t n = ::recv(fd_, staged_.data() + old, kReadChunkBytes,
                             blocking ? 0 : MSG_DONTWAIT);
    if (n > 0) {
      staged_.resize(old + static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) {
      staged_.resize(old);
      return false;  // orderly EOF
    }
    if (errno == EINTR) continue;
    if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      staged_.resize(old);
      return true;  // nothing buffered right now
    }
    staged_.resize(old);
    if (errno == ECONNRESET) return false;
    raise_errno("recv");
  }
}

std::optional<WireFrame> ControlConn::recv_frame() {
  for (;;) {
    WireFrame frame;
    const std::size_t used = parallel::transport::decode_frame(
        staged_.data() + consumed_, staged_.size() - consumed_, frame);
    if (used != 0) {
      consumed_ += used;
      return frame;
    }
    if (!fill_buffer(/*blocking=*/true)) {
      if (consumed_ != staged_.size())
        throw std::runtime_error(
            "serve control socket: EOF mid-frame (peer died)");
      return std::nullopt;
    }
  }
}

bool ControlConn::pump(std::vector<WireFrame>& out) {
  const bool alive = fill_buffer(/*blocking=*/false);
  for (;;) {
    WireFrame frame;
    const std::size_t used = parallel::transport::decode_frame(
        staged_.data() + consumed_, staged_.size() - consumed_, frame);
    if (used == 0) break;
    consumed_ += used;
    out.push_back(std::move(frame));
  }
  // On EOF the decoded frames above still get serviced by the caller,
  // but any bytes left over are a mid-frame truncation from a dead peer
  // and can never complete — report the connection dead rather than let
  // poll() spin hot on an EOF'd fd forever.
  return alive;
}

ControlListener::ControlListener(const std::string& path) : path_(path) {
  // SOCK_NONBLOCK on the listener makes accept_one() poll-friendly; the
  // accepted connections themselves stay blocking.
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) raise_errno("socket");
  ::unlink(path.c_str());  // stale socket from a killed daemon
  sockaddr_un addr;
  fill_addr(path, addr);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    raise_errno("bind " + path);
  }
  if (::listen(fd_, 128) != 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    raise_errno("listen " + path);
  }
}

ControlListener::~ControlListener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<ControlConn> ControlListener::accept_one() {
  for (;;) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return std::make_unique<ControlConn>(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return nullptr;
    raise_errno("accept");
  }
}

bool ControlListener::wait_readable(const std::vector<ControlConn*>& conns,
                                    int timeout_ms) const {
  std::vector<pollfd> fds;
  fds.reserve(conns.size() + 1);
  fds.push_back(pollfd{fd_, POLLIN, 0});
  for (const ControlConn* conn : conns)
    fds.push_back(pollfd{conn->fd(), POLLIN, 0});
  for (;;) {
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n >= 0) return n > 0;
    if (errno == EINTR) continue;
    raise_errno("poll");
  }
}

std::unique_ptr<ControlConn> connect_control(const std::string& path,
                                             int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) raise_errno("socket");
    sockaddr_un addr;
    fill_addr(path, addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return std::make_unique<ControlConn>(fd);
    }
    const int saved = errno;
    ::close(fd);
    // A daemon still booting shows up as "no such file" or a bound but
    // not yet listening socket; retry until the deadline.
    if ((saved == ENOENT || saved == ECONNREFUSED) &&
        std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    errno = saved;
    raise_errno("connect " + path);
  }
}

}  // namespace mwr::serve
