#include "serve/control.hpp"

#include <stdexcept>

#include "serve/payload_codec.hpp"

namespace mwr::serve {

using parallel::transport::FrameKind;

namespace {

constexpr std::int32_t kRequest = 0;
constexpr std::int32_t kReply = 1;

WireFrame control_frame(FrameKind kind, std::int32_t direction,
                        std::uint64_t value, std::vector<double> payload) {
  WireFrame f;
  f.kind = kind;
  f.source = direction;
  f.value = value;
  f.payload = std::move(payload);
  return f;
}

void expect(const WireFrame& frame, FrameKind kind, std::int32_t direction,
            const char* what) {
  if (frame.kind != kind)
    throw std::runtime_error(std::string("serve control: ") + what +
                             ": unexpected frame kind");
  if (frame.source != direction)
    throw std::runtime_error(std::string("serve control: ") + what +
                             ": wrong direction");
}

void expect_drained(const PayloadReader& reader, const char* what) {
  if (!reader.done())
    throw std::runtime_error(std::string("serve control: ") + what +
                             ": trailing payload");
}

}  // namespace

CampaignPlan plan_campaign(const SubmitRequest& request) {
  // Admission-time validation: every knob that MwRepair, the MWU
  // strategies, or the oracle would reject later must be refused here,
  // at SUBMIT, so a malformed submission is a client error instead of an
  // exception thrown inside a running epoch fiber.
  if (request.bugs == 0)
    throw std::invalid_argument("plan_campaign: bugs == 0");
  if (request.arms == 0)
    throw std::invalid_argument("plan_campaign: arms == 0");
  if (request.max_count == 0)
    throw std::invalid_argument("plan_campaign: max_count == 0");
  if (request.agents == 0)
    throw std::invalid_argument("plan_campaign: agents == 0");
  if (request.max_iterations == 0)
    throw std::invalid_argument("plan_campaign: max_iterations == 0");
  if (request.tests > 64)
    throw std::invalid_argument(
        "plan_campaign: tests > 64 (oracle bitmask limit)");
  if (request.mwu > static_cast<std::uint8_t>(core::MwuKind::kExp3))
    throw std::invalid_argument("plan_campaign: unknown MWU kind index");

  CampaignPlan plan;
  plan.spec = datasets::scenario_by_name(request.scenario);
  if (request.tests != 0) plan.spec.tests = request.tests;

  apr::CampaignConfig& config = plan.config;
  config.bugs = request.bugs;
  config.grow_suite = request.grow_suite;
  config.pool.target_size = request.pool_target;
  config.pool.max_attempts = request.pool_attempts;
  config.pool.seed = request.pool_seed;
  config.pool.threads = 1;
  config.repair.mwu = static_cast<core::MwuKind>(request.mwu);
  config.repair.arms = request.arms;
  config.repair.max_count = request.max_count;
  config.repair.agents = request.agents;
  config.repair.max_iterations = request.max_iterations;
  config.repair.seed = request.repair_seed;
  config.repair.eval_threads = 1;
  return plan;
}

WireFrame encode_submit_request(const SubmitRequest& request) {
  PayloadWriter w;
  w.str(request.scenario);
  w.u64(request.bugs);
  w.u64(request.tests);
  w.u64(request.pool_target);
  w.u64(request.pool_attempts);
  w.u64(request.pool_seed);
  w.u64(request.mwu);
  w.u64(request.arms);
  w.u64(request.max_count);
  w.u64(request.agents);
  w.u64(request.max_iterations);
  w.u64(request.repair_seed);
  w.boolean(request.grow_suite);
  return control_frame(FrameKind::kSubmit, kRequest, 0, w.take());
}

SubmitRequest decode_submit_request(const WireFrame& frame) {
  expect(frame, FrameKind::kSubmit, kRequest, "submit request");
  PayloadReader r(frame.payload);
  SubmitRequest request;
  request.scenario = r.str();
  request.bugs = static_cast<std::uint32_t>(r.u64());
  request.tests = static_cast<std::uint32_t>(r.u64());
  request.pool_target = static_cast<std::uint32_t>(r.u64());
  request.pool_attempts = static_cast<std::uint32_t>(r.u64());
  request.pool_seed = r.u64();
  request.mwu = static_cast<std::uint8_t>(r.u64());
  request.arms = static_cast<std::uint32_t>(r.u64());
  request.max_count = static_cast<std::uint32_t>(r.u64());
  request.agents = static_cast<std::uint32_t>(r.u64());
  request.max_iterations = static_cast<std::uint32_t>(r.u64());
  request.repair_seed = r.u64();
  request.grow_suite = r.boolean();
  expect_drained(r, "submit request");
  return request;
}

WireFrame encode_submit_reply(const SubmitReply& reply) {
  PayloadWriter w;
  w.boolean(reply.accepted);
  w.u64(reply.resident);
  return control_frame(FrameKind::kSubmit, kReply, reply.campaign_id,
                       w.take());
}

SubmitReply decode_submit_reply(const WireFrame& frame) {
  expect(frame, FrameKind::kSubmit, kReply, "submit reply");
  PayloadReader r(frame.payload);
  SubmitReply reply;
  reply.campaign_id = frame.value;
  reply.accepted = r.boolean();
  reply.resident = r.u64();
  expect_drained(r, "submit reply");
  return reply;
}

WireFrame encode_status_request(std::uint64_t campaign_id) {
  return control_frame(FrameKind::kStatus, kRequest, campaign_id, {});
}

std::uint64_t decode_status_request(const WireFrame& frame) {
  expect(frame, FrameKind::kStatus, kRequest, "status request");
  return frame.value;
}

WireFrame encode_status_reply(std::uint64_t campaign_id,
                              const StatusReply& reply) {
  PayloadWriter w;
  w.boolean(reply.known);
  w.boolean(reply.done);
  w.u64(reply.bug_index);
  w.u64(reply.bugs_total);
  w.u64(reply.online_cycles);
  w.u64(reply.online_probes);
  w.u64(reply.repaired);
  w.u64(reply.trajectory_hash);
  return control_frame(FrameKind::kStatus, kReply, campaign_id, w.take());
}

StatusReply decode_status_reply(const WireFrame& frame) {
  expect(frame, FrameKind::kStatus, kReply, "status reply");
  PayloadReader r(frame.payload);
  StatusReply reply;
  reply.known = r.boolean();
  reply.done = r.boolean();
  reply.bug_index = r.u64();
  reply.bugs_total = r.u64();
  reply.online_cycles = r.u64();
  reply.online_probes = r.u64();
  reply.repaired = r.u64();
  reply.trajectory_hash = r.u64();
  expect_drained(r, "status reply");
  return reply;
}

WireFrame encode_result_request(std::uint64_t campaign_id) {
  return control_frame(FrameKind::kResult, kRequest, campaign_id, {});
}

std::uint64_t decode_result_request(const WireFrame& frame) {
  expect(frame, FrameKind::kResult, kRequest, "result request");
  return frame.value;
}

WireFrame encode_result_reply(const ResultReply& reply) {
  PayloadWriter w;
  w.boolean(reply.ready);
  w.str(reply.outcome_json);
  return control_frame(FrameKind::kResult, kReply, reply.campaign_id,
                       w.take());
}

ResultReply decode_result_reply(const WireFrame& frame) {
  expect(frame, FrameKind::kResult, kReply, "result reply");
  PayloadReader r(frame.payload);
  ResultReply reply;
  reply.campaign_id = frame.value;
  reply.ready = r.boolean();
  reply.outcome_json = r.str();
  expect_drained(r, "result reply");
  return reply;
}

WireFrame encode_checkpoint_request() {
  return control_frame(FrameKind::kCheckpoint, kRequest, 0, {});
}

WireFrame encode_checkpoint_reply(const CheckpointReply& reply) {
  PayloadWriter w;
  w.u64(reply.campaigns);
  return control_frame(FrameKind::kCheckpoint, kReply, reply.bytes, w.take());
}

CheckpointReply decode_checkpoint_reply(const WireFrame& frame) {
  expect(frame, FrameKind::kCheckpoint, kReply, "checkpoint reply");
  PayloadReader r(frame.payload);
  CheckpointReply reply;
  reply.bytes = frame.value;
  reply.campaigns = r.u64();
  expect_drained(r, "checkpoint reply");
  return reply;
}

WireFrame encode_shutdown_request() {
  return control_frame(FrameKind::kShutdown, kRequest, 0, {});
}

WireFrame encode_shutdown_reply(std::uint64_t remaining) {
  return control_frame(FrameKind::kShutdown, kReply, remaining, {});
}

std::uint64_t decode_shutdown_reply(const WireFrame& frame) {
  expect(frame, FrameKind::kShutdown, kReply, "shutdown reply");
  return frame.value;
}

}  // namespace mwr::serve
