// Deficit-round-robin fair scheduling over resident campaigns.
//
// The serving problem: campaign work units are wildly uneven — one
// tenant's precompute unit costs thousands of suite runs while another's
// online cycle costs eight — and campaign lengths span two orders of
// magnitude.  A naive run-to-completion or FIFO policy lets one huge
// campaign monopolize the engine while small ones starve.
//
// DeficitScheduler applies the classic DRR discipline at unit (not
// byte) granularity.  Every scheduling epoch, each resident campaign's
// deficit counter is credited one quantum of work units; the epoch then
// grants each campaign a budget equal to its accumulated deficit, and
// settle() debits what the campaign actually consumed.  Unused credit
// carries over (a campaign whose single unit is enormous still gets its
// fair share across epochs) but is capped at a small multiple of the
// quantum so an idle tenant cannot hoard an unbounded burst.
//
// Fairness invariants (asserted by tests/test_serve.cpp and watched by
// the server's serve.starved_epochs counter):
//   * every resident campaign receives a grant of >= 1 unit every epoch
//     (quantum >= 1 and credits precede grants), so no campaign can be
//     starved by any mix of co-tenants — the zero-starvation guarantee;
//   * no campaign can consume more than (quantum + carried deficit)
//     units in one epoch, bounding how far a huge campaign can pull
//     ahead between grants to everyone else.
//
// Grant order is ascending campaign id — a deterministic order so a
// server epoch is reproducible given the same resident set.
#pragma once

#include <cstdint>
#include <cstddef>
#include <map>
#include <vector>

namespace mwr::serve {

class DeficitScheduler {
 public:
  /// `quantum`: work units credited per campaign per epoch (>= 1
  /// enforced).  `max_carry_quanta`: cap on accumulated deficit, in
  /// quanta.
  explicit DeficitScheduler(std::size_t quantum,
                            std::size_t max_carry_quanta = 4);

  /// Registers a campaign with zero deficit.  Duplicate admission of a
  /// live id is a logic error (throws std::invalid_argument).
  void admit(std::uint64_t id);
  /// Forgets a campaign (done or evicted); unknown ids are ignored.
  void remove(std::uint64_t id);

  [[nodiscard]] std::size_t resident() const noexcept;
  [[nodiscard]] std::size_t quantum() const noexcept { return quantum_; }

  struct Grant {
    std::uint64_t id = 0;
    std::size_t budget = 0;
  };

  /// Credits every resident campaign one quantum and returns this
  /// epoch's grants in ascending id order.  Every grant's budget is
  /// >= quantum >= 1.
  [[nodiscard]] std::vector<Grant> begin_epoch();

  /// Debits `used` units from `id`'s deficit after its grant ran.
  /// Consuming more than the granted budget throws std::logic_error
  /// (the engine-side contract is budget-bounded stepping).
  void settle(std::uint64_t id, std::size_t used);

  /// Current deficit for a campaign (0 for unknown ids) — test hook.
  [[nodiscard]] std::size_t deficit(std::uint64_t id) const;

 private:
  std::size_t quantum_;
  std::size_t max_deficit_;
  std::map<std::uint64_t, std::size_t> deficit_;
  std::map<std::uint64_t, std::size_t> granted_;  ///< live epoch's budgets.
};

}  // namespace mwr::serve
