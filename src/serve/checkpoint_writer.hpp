// Asynchronous checkpoint writer: the durability half of the epoch
// pipeline (DESIGN.md §14).
//
// The server's epoch critical path only *serializes* dirty campaigns —
// encode_checkpoint into an in-memory buffer — and hands the bytes here.
// This writer's dedicated thread then does the slow half off-path: tmp
// write, fsync, rename.  Ordering rules that keep retirement safe:
//
//   per-id FIFO     — operations for one campaign id execute in enqueue
//                     order, so a retire's remove can never be overtaken
//                     by an older write resurrecting the file.
//   latest-wins     — a newer write (or remove) for an id replaces the
//                     id's pending operation in place; only the newest
//                     state ever reaches disk.  Combined with FIFO this
//                     means a retiring campaign simply *cancels* its
//                     in-flight write: enqueue_remove drops the pending
//                     bytes and queues the unlink.
//   flush() barrier — blocks until every queued and in-flight operation
//                     has completed; an explicit checkpoint (the control
//                     plane's kCheckpoint) flushes before replying so the
//                     reply's durability promise is real.  Periodic epoch
//                     checkpoints enqueue without flushing — that is the
//                     whole point of the async path.
//
// Failures never propagate into the writer thread's demise: they are
// counted, the last message is kept, and the next flush() throws so an
// explicit checkpoint reports the loss while periodic ones keep going.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::serve {

class CheckpointWriter {
 public:
  struct Stats {
    std::uint64_t writes = 0;     ///< files renamed into place.
    std::uint64_t removes = 0;    ///< unlinks performed.
    std::uint64_t coalesced = 0;  ///< pending ops replaced before running.
    std::uint64_t failures = 0;   ///< ops that raised an I/O error.
    std::uint64_t bytes = 0;      ///< payload bytes written.
    double writer_seconds = 0.0;  ///< wall time inside file operations.
  };

  CheckpointWriter();
  /// Drains the queue (best-effort; failures are counted, not thrown)
  /// and joins the thread.
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Queues `bytes` to be written to `path` (tmp + fsync + rename).
  /// Replaces any pending operation for `id`.
  void enqueue_write(std::uint64_t id, std::string path,
                     std::vector<std::uint8_t> bytes);
  /// Queues the removal of `path`, dropping any pending write for `id`
  /// (retire ordering: the campaign's file must not reappear).
  void enqueue_remove(std::uint64_t id, std::string path);

  /// Durability barrier: returns once every operation enqueued before
  /// the call has completed.  Throws std::runtime_error if any operation
  /// failed since the previous flush (the error tally then resets).
  void flush();

  [[nodiscard]] Stats stats() const;

 private:
  struct Op {
    bool remove = false;
    std::string path;
    std::vector<std::uint8_t> bytes;
  };

  void writer_loop();

  mutable util::Mutex mutex_;
  util::CondVar work_cv_;  // writer: queue non-empty or shutting down.
  util::CondVar idle_cv_;  // flush(): queue empty and nothing in flight.
  std::deque<std::uint64_t> fifo_ MWR_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, Op> pending_ MWR_GUARDED_BY(mutex_);
  bool in_flight_ MWR_GUARDED_BY(mutex_) = false;
  bool stop_ MWR_GUARDED_BY(mutex_) = false;
  std::uint64_t failures_since_flush_ MWR_GUARDED_BY(mutex_) = 0;
  std::string last_error_ MWR_GUARDED_BY(mutex_);
  Stats stats_ MWR_GUARDED_BY(mutex_);
  std::thread thread_;  // last member: starts after everything above.
};

}  // namespace mwr::serve
