#include "serve/client.hpp"

#include <stdexcept>

#include "serve/control_socket.hpp"

namespace mwr::serve {

using parallel::transport::FrameKind;
using parallel::transport::WireFrame;

ServeClient::ServeClient(const std::string& socket_path,
                         int connect_timeout_ms)
    : conn_(connect_control(socket_path, connect_timeout_ms)) {}

ServeClient::~ServeClient() = default;

WireFrame ServeClient::roundtrip(const WireFrame& request,
                                 FrameKind expected) {
  if (!conn_->send_frame(request))
    throw std::runtime_error("ServeClient: daemon closed the connection");
  std::optional<WireFrame> reply = conn_->recv_frame();
  if (!reply)
    throw std::runtime_error("ServeClient: daemon closed before replying");
  if (reply->kind != expected)
    throw std::runtime_error("ServeClient: mismatched reply kind");
  return *std::move(reply);
}

SubmitReply ServeClient::submit(const SubmitRequest& request) {
  return decode_submit_reply(
      roundtrip(encode_submit_request(request), FrameKind::kSubmit));
}

StatusReply ServeClient::status(std::uint64_t campaign_id) {
  return decode_status_reply(
      roundtrip(encode_status_request(campaign_id), FrameKind::kStatus));
}

ResultReply ServeClient::result(std::uint64_t campaign_id) {
  return decode_result_reply(
      roundtrip(encode_result_request(campaign_id), FrameKind::kResult));
}

CheckpointReply ServeClient::checkpoint() {
  return decode_checkpoint_reply(
      roundtrip(encode_checkpoint_request(), FrameKind::kCheckpoint));
}

std::uint64_t ServeClient::shutdown() {
  return decode_shutdown_reply(
      roundtrip(encode_shutdown_request(), FrameKind::kShutdown));
}

}  // namespace mwr::serve
