#include "serve/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/serialization.hpp"
#include "serve/payload_codec.hpp"

namespace mwr::serve {

namespace {

constexpr std::uint64_t kFormatVersion = 1;

enum Section : std::int32_t {
  kHeader = 0,
  kRequest = 1,
  kBugs = 2,
  kPool = 3,
  kRepair = 4,
};

/// The frame's source field for checkpoint sections — a marker so a
/// checkpoint frame pasted into a live transport stream is recognizably
/// foreign ('CK').
constexpr std::int32_t kSectionSource = 0x434b;

void append_section(std::vector<std::uint8_t>& out, std::uint64_t campaign_id,
                    Section section, std::vector<double> payload) {
  parallel::Message message;
  message.source = kSectionSource;
  message.tag = section;
  message.payload = parallel::PayloadVec(std::move(payload));
  const auto bytes = core::serialize_message(
      message, static_cast<int>(campaign_id & 0x7fffffffull),
      /*tracked=*/false);
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void write_bug(PayloadWriter& w, const apr::BugOutcome& bug) {
  w.u64(bug.bug_id);
  w.boolean(bug.repaired);
  w.u64(bug.patch_edits);
  w.u64(bug.maintenance_runs);
  w.u64(bug.pool_dropped);
  w.u64(bug.pool_size);
  w.u64(bug.online_probes);
  w.u64(bug.online_cycles);
}

apr::BugOutcome read_bug(PayloadReader& r) {
  apr::BugOutcome bug;
  bug.bug_id = static_cast<std::size_t>(r.u64());
  bug.repaired = r.boolean();
  bug.patch_edits = static_cast<std::size_t>(r.u64());
  bug.maintenance_runs = r.u64();
  bug.pool_dropped = static_cast<std::size_t>(r.u64());
  bug.pool_size = static_cast<std::size_t>(r.u64());
  bug.online_probes = r.u64();
  bug.online_cycles = static_cast<std::size_t>(r.u64());
  return bug;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(
    const CampaignCheckpoint& checkpoint) {
  const apr::CampaignSnapshot& snap = checkpoint.snapshot;
  std::vector<std::uint8_t> out;

  PayloadWriter header;
  header.u64(kFormatVersion);
  header.u64(checkpoint.campaign_id);
  header.u64(snap.fingerprint);
  header.u64(snap.phase);
  header.u64(snap.bug_index);
  header.u64(snap.repaired_so_far);
  header.u64(snap.current_tests);
  header.u64(snap.precompute_runs);
  header.u64(snap.initial_pool_size);
  header.u64(snap.trajectory_hash);
  header.boolean(snap.has_repair_state);
  header.u64(snap.finished_bugs.size());
  header.u64(snap.working_pool.size());
  append_section(out, checkpoint.campaign_id, kHeader, header.take());

  const SubmitRequest& request = checkpoint.request;
  PayloadWriter req;
  req.str(request.scenario);
  req.u64(request.bugs);
  req.u64(request.tests);
  req.u64(request.pool_target);
  req.u64(request.pool_attempts);
  req.u64(request.pool_seed);
  req.u64(request.mwu);
  req.u64(request.arms);
  req.u64(request.max_count);
  req.u64(request.agents);
  req.u64(request.max_iterations);
  req.u64(request.repair_seed);
  req.boolean(request.grow_suite);
  append_section(out, checkpoint.campaign_id, kRequest, req.take());

  PayloadWriter bugs;
  for (const apr::BugOutcome& bug : snap.finished_bugs) write_bug(bugs, bug);
  write_bug(bugs, snap.current_bug);
  append_section(out, checkpoint.campaign_id, kBugs, bugs.take());

  PayloadWriter pool;
  for (const apr::Mutation& m : snap.working_pool) {
    pool.u64(static_cast<std::uint64_t>(m.kind));
    pool.u64(m.target);
    pool.u64(m.donor);
  }
  append_section(out, checkpoint.campaign_id, kPool, pool.take());

  if (snap.has_repair_state) {
    const apr::RepairSession::State& repair = snap.repair;
    PayloadWriter rs;
    rs.u64(repair.rng_seed);
    for (const std::uint64_t word : repair.rng_state) rs.u64(word);
    rs.u64(repair.iterations);
    rs.u64(repair.probes);
    rs.u64(repair.trajectory_hash);
    rs.u64(repair.strategy.size());
    for (const double v : repair.strategy) rs.f64(v);
    append_section(out, checkpoint.campaign_id, kRepair, rs.take());
  }
  return out;
}

CampaignCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  CampaignCheckpoint checkpoint;
  apr::CampaignSnapshot& snap = checkpoint.snapshot;
  bool have_header = false;
  bool have_request = false;
  bool have_bugs = false;
  bool have_pool = false;
  bool have_repair = false;
  std::uint64_t want_bugs = 0;
  std::uint64_t want_pool = 0;

  std::size_t offset = 0;
  while (offset < bytes.size()) {
    parallel::transport::WireFrame frame;
    const std::size_t used =
        parallel::transport::decode_frame(bytes.data() + offset,
                                          bytes.size() - offset, frame);
    if (used == 0)
      throw std::runtime_error("checkpoint: truncated section frame");
    offset += used;
    if (frame.kind != parallel::transport::FrameKind::kMessage ||
        frame.source != kSectionSource)
      throw std::runtime_error("checkpoint: not a checkpoint section frame");
    if (!have_header && frame.tag != kHeader)
      throw std::runtime_error("checkpoint: header section must come first");

    PayloadReader r(frame.payload);
    switch (frame.tag) {
      case kHeader: {
        const std::uint64_t version = r.u64();
        if (version != kFormatVersion)
          throw std::runtime_error("checkpoint: unsupported format version " +
                                   std::to_string(version));
        checkpoint.campaign_id = r.u64();
        snap.fingerprint = r.u64();
        snap.phase = static_cast<std::uint32_t>(r.u64());
        snap.bug_index = r.u64();
        snap.repaired_so_far = r.u64();
        snap.current_tests = r.u64();
        snap.precompute_runs = r.u64();
        snap.initial_pool_size = r.u64();
        snap.trajectory_hash = r.u64();
        snap.has_repair_state = r.boolean();
        want_bugs = r.u64();
        want_pool = r.u64();
        have_header = true;
        break;
      }
      case kRequest: {
        SubmitRequest& request = checkpoint.request;
        request.scenario = r.str();
        request.bugs = static_cast<std::uint32_t>(r.u64());
        request.tests = static_cast<std::uint32_t>(r.u64());
        request.pool_target = static_cast<std::uint32_t>(r.u64());
        request.pool_attempts = static_cast<std::uint32_t>(r.u64());
        request.pool_seed = r.u64();
        request.mwu = static_cast<std::uint8_t>(r.u64());
        request.arms = static_cast<std::uint32_t>(r.u64());
        request.max_count = static_cast<std::uint32_t>(r.u64());
        request.agents = static_cast<std::uint32_t>(r.u64());
        request.max_iterations = static_cast<std::uint32_t>(r.u64());
        request.repair_seed = r.u64();
        request.grow_suite = r.boolean();
        have_request = true;
        break;
      }
      case kBugs: {
        snap.finished_bugs.clear();
        for (std::uint64_t i = 0; i < want_bugs; ++i)
          snap.finished_bugs.push_back(read_bug(r));
        snap.current_bug = read_bug(r);
        have_bugs = true;
        break;
      }
      case kPool: {
        snap.working_pool.clear();
        snap.working_pool.reserve(static_cast<std::size_t>(want_pool));
        for (std::uint64_t i = 0; i < want_pool; ++i) {
          const std::uint64_t kind = r.u64();
          if (kind > static_cast<std::uint64_t>(apr::MutationKind::kSwap))
            throw std::runtime_error("checkpoint: bad mutation kind");
          apr::Mutation m;
          m.kind = static_cast<apr::MutationKind>(kind);
          m.target = static_cast<std::uint32_t>(r.u64());
          m.donor = static_cast<std::uint32_t>(r.u64());
          snap.working_pool.push_back(m);
        }
        have_pool = true;
        break;
      }
      case kRepair: {
        apr::RepairSession::State& repair = snap.repair;
        repair.rng_seed = r.u64();
        for (std::uint64_t& word : repair.rng_state) word = r.u64();
        repair.iterations = r.u64();
        repair.probes = r.u64();
        repair.trajectory_hash = r.u64();
        const std::uint64_t n = r.u64();
        if (n > r.remaining())
          throw std::runtime_error("checkpoint: truncated strategy state");
        repair.strategy.clear();
        repair.strategy.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
          repair.strategy.push_back(r.f64());
        have_repair = true;
        break;
      }
      default:
        throw std::runtime_error("checkpoint: unknown section tag " +
                                 std::to_string(frame.tag));
    }
    if (!r.done())
      throw std::runtime_error("checkpoint: trailing bytes in section " +
                               std::to_string(frame.tag));
  }

  if (!have_header || !have_request || !have_bugs || !have_pool)
    throw std::runtime_error("checkpoint: missing required section");
  if (snap.has_repair_state && !have_repair)
    throw std::runtime_error("checkpoint: repair section missing");
  return checkpoint;
}

std::size_t write_checkpoint_bytes(std::span<const std::uint8_t> bytes,
                                   const std::string& path, bool sync) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw std::runtime_error("checkpoint: cannot open " + tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("checkpoint: write failed: " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // Durability before visibility: the rename must never publish a file
  // whose data is still only in the page cache.
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    throw std::runtime_error("checkpoint: fsync failed: " + tmp);
  }
  if (::close(fd) != 0)
    throw std::runtime_error("checkpoint: close failed: " + tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("checkpoint: rename failed: " + path);
  return bytes.size();
}

std::size_t write_checkpoint_file(const CampaignCheckpoint& checkpoint,
                                  const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  return write_checkpoint_bytes(bytes, path, /*sync=*/false);
}

CampaignCheckpoint read_checkpoint_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  return decode_checkpoint(bytes);
}

}  // namespace mwr::serve
