#include "serve/checkpoint_writer.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "serve/checkpoint.hpp"
#include "util/timer.hpp"

namespace mwr::serve {

CheckpointWriter::CheckpointWriter() : thread_([this] { writer_loop(); }) {}

CheckpointWriter::~CheckpointWriter() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
    work_cv_.notify_all();
  }
  thread_.join();
}

void CheckpointWriter::enqueue_write(std::uint64_t id, std::string path,
                                     std::vector<std::uint8_t> bytes) {
  util::MutexLock lock(mutex_);
  auto [it, fresh] = pending_.try_emplace(id);
  if (!fresh) ++stats_.coalesced;  // latest-wins: replace in place.
  it->second.remove = false;
  it->second.path = std::move(path);
  it->second.bytes = std::move(bytes);
  if (fresh) fifo_.push_back(id);
  work_cv_.notify_one();
}

void CheckpointWriter::enqueue_remove(std::uint64_t id, std::string path) {
  util::MutexLock lock(mutex_);
  auto [it, fresh] = pending_.try_emplace(id);
  if (!fresh) ++stats_.coalesced;  // drops the campaign's pending write.
  it->second.remove = true;
  it->second.path = std::move(path);
  it->second.bytes.clear();
  if (fresh) fifo_.push_back(id);
  work_cv_.notify_one();
}

void CheckpointWriter::flush() {
  util::MutexLock lock(mutex_);
  while (!fifo_.empty() || in_flight_) idle_cv_.wait(mutex_);
  if (failures_since_flush_ != 0) {
    const std::string error = last_error_;
    failures_since_flush_ = 0;
    throw std::runtime_error("checkpoint writer: " + error);
  }
}

CheckpointWriter::Stats CheckpointWriter::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

void CheckpointWriter::writer_loop() {
  util::MutexLock lock(mutex_);
  for (;;) {
    while (fifo_.empty() && !stop_) work_cv_.wait(mutex_);
    if (fifo_.empty() && stop_) return;  // drained, then shut down.
    const std::uint64_t id = fifo_.front();
    fifo_.pop_front();
    const auto it = pending_.find(id);
    Op op = std::move(it->second);
    pending_.erase(it);
    in_flight_ = true;
    lock.unlock();

    const util::WallTimer timer;
    bool failed = false;
    std::string error;
    std::size_t written = 0;
    try {
      if (op.remove) {
        // Best-effort unlink (the file may never have been written).
        std::remove(op.path.c_str());
      } else {
        written = write_checkpoint_bytes(op.bytes, op.path, /*sync=*/true);
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    const double seconds = timer.elapsed_seconds();

    lock.lock();
    in_flight_ = false;
    stats_.writer_seconds += seconds;
    if (failed) {
      ++stats_.failures;
      ++failures_since_flush_;
      last_error_ = error;
    } else if (op.remove) {
      ++stats_.removes;
    } else {
      ++stats_.writes;
      stats_.bytes += written;
    }
    if (fifo_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace mwr::serve
