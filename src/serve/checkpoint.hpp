// Durable campaign checkpoints: CampaignSnapshot <-> MWRW wire frames.
//
// A daemon restart must not forfeit the suite runs already paid for by
// thousands of in-flight campaigns.  Each resident campaign therefore
// serializes, between update cycles, to a self-contained file that a
// fresh daemon can load and resume *bit-identically*: the restored
// session replays the exact stochastic trajectory (same RNG stream
// state, same MWU weights, same working pool) the uninterrupted run
// would have produced, verified end-to-end by the trajectory-hash pin in
// tests/test_serve.cpp.
//
// The encoding deliberately reuses the core::serialize_message seam —
// the checkpoint file is a sequence of ordinary versioned MWRW message
// frames, one per section, with the section id in the message tag and
// the campaign id in the frame's dest field:
//
//   tag 0 header   — format version, campaign id, snapshot scalars;
//   tag 1 request  — the original SubmitRequest (the campaign definition,
//                    so resume needs no side channel);
//   tag 2 bugs     — finished-bug ledgers plus the in-flight bug's;
//   tag 3 pool     — the working pool as (kind, target, donor) triples;
//   tag 4 repair   — RNG stream state, MWU strategy state (bit-exact
//                    doubles), online counters; present only when a
//                    RepairSession was live.
//
// Using message frames means the bytes inherit the wire format's
// versioning, endianness discipline, and length-prefixed framing for
// free, and any tooling that can read a transport trace can read a
// checkpoint.  Fields wider than a double use the payload_codec.hpp
// conventions (u64 as two u32 halves, strings char-per-double).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apr/campaign_session.hpp"
#include "serve/control.hpp"

namespace mwr::serve {

struct CampaignCheckpoint {
  std::uint64_t campaign_id = 0;
  SubmitRequest request;          ///< definition: replan on resume.
  apr::CampaignSnapshot snapshot; ///< execution state between cycles.
};

/// Encodes to the framed byte sequence described above.
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    const CampaignCheckpoint& checkpoint);

/// Decodes a byte sequence produced by encode_checkpoint.  Throws
/// std::runtime_error on truncation, unknown sections, or a format
/// version from the future.
[[nodiscard]] CampaignCheckpoint decode_checkpoint(
    std::span<const std::uint8_t> bytes);

/// Atomic-ish file write: encodes to `path + ".tmp"` then renames over
/// `path`, so a crash mid-write never leaves a torn checkpoint under the
/// canonical name.  Returns the encoded size in bytes.  Throws
/// std::runtime_error on I/O failure.
std::size_t write_checkpoint_file(const CampaignCheckpoint& checkpoint,
                                  const std::string& path);

/// The raw byte layer of write_checkpoint_file: writes `bytes` to
/// `path + ".tmp"` (fsync'd before the rename when `sync` — the async
/// writer's durability discipline; a kill -9 mid-flush leaves only the
/// tmp file, which restore_from_dir ignores), then renames over `path`.
/// Returns bytes.size().  Throws std::runtime_error on I/O failure.
std::size_t write_checkpoint_bytes(std::span<const std::uint8_t> bytes,
                                   const std::string& path, bool sync);

/// Reads and decodes one checkpoint file.
[[nodiscard]] CampaignCheckpoint read_checkpoint_file(const std::string& path);

}  // namespace mwr::serve
