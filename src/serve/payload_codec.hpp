// Typed accessors over a WireFrame's double payload.
//
// The MWRW wire format carries exactly one payload shape — a vector of
// IEEE-754 doubles — because that is what substrate messages are.  The
// campaign-server control plane and the checkpoint files reuse the same
// frames (one codec, one fuzz surface, one version field), so every
// richer field they need is spelled in doubles:
//
//   f64  — as is (bit-exact; strategy weights round-trip unchanged);
//   u64  — two u32 halves, low then high (each half is exactly
//          representable; the full 64-bit range round-trips);
//   str  — u64 length, then one code unit per double.
//
// Readers bounds-check every access and throw std::runtime_error on
// truncated or malformed payloads — control frames arrive from other
// processes and checkpoint files from disk, neither trusted to be
// well-formed.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mwr::serve {

class PayloadWriter {
 public:
  void f64(double v) { out_.push_back(v); }

  void u64(std::uint64_t v) {
    out_.push_back(static_cast<double>(v & 0xffffffffull));
    out_.push_back(static_cast<double>(v >> 32));
  }

  void boolean(bool v) { out_.push_back(v ? 1.0 : 0.0); }

  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s)
      out_.push_back(static_cast<double>(static_cast<unsigned char>(c)));
  }

  [[nodiscard]] std::vector<double> take() { return std::move(out_); }

 private:
  std::vector<double> out_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const double> in) : in_(in) {}

  [[nodiscard]] double f64() {
    if (pos_ >= in_.size())
      throw std::runtime_error("serve payload: truncated (f64)");
    return in_[pos_++];
  }

  [[nodiscard]] std::uint64_t u64() {
    const double lo = f64();
    const double hi = f64();
    if (lo < 0.0 || lo > 4294967295.0 || lo != static_cast<double>(
                                                   static_cast<std::uint64_t>(lo)) ||
        hi < 0.0 || hi > 4294967295.0 ||
        hi != static_cast<double>(static_cast<std::uint64_t>(hi)))
      throw std::runtime_error("serve payload: malformed u64 halves");
    return static_cast<std::uint64_t>(lo) |
           (static_cast<std::uint64_t>(hi) << 32);
  }

  [[nodiscard]] bool boolean() { return f64() != 0.0; }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    if (n > remaining())
      throw std::runtime_error("serve payload: truncated (str)");
    std::string s;
    s.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const double c = f64();
      if (c < 0.0 || c > 255.0 || c != static_cast<double>(
                                           static_cast<std::uint32_t>(c)))
        throw std::runtime_error("serve payload: malformed str code unit");
      s.push_back(static_cast<char>(static_cast<unsigned char>(c)));
    }
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return in_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == in_.size(); }

 private:
  std::span<const double> in_;
  std::size_t pos_ = 0;
};

}  // namespace mwr::serve
