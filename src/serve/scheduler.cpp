#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mwr::serve {

DeficitScheduler::DeficitScheduler(std::size_t quantum,
                                   std::size_t max_carry_quanta)
    : quantum_(std::max<std::size_t>(1, quantum)),
      max_deficit_(quantum_ * std::max<std::size_t>(1, max_carry_quanta)) {}

void DeficitScheduler::admit(std::uint64_t id) {
  const auto [it, inserted] = deficit_.emplace(id, 0);
  (void)it;
  if (!inserted)
    throw std::invalid_argument("DeficitScheduler: campaign " +
                                std::to_string(id) + " already resident");
}

void DeficitScheduler::remove(std::uint64_t id) {
  deficit_.erase(id);
  granted_.erase(id);
}

std::size_t DeficitScheduler::resident() const noexcept {
  return deficit_.size();
}

std::vector<DeficitScheduler::Grant> DeficitScheduler::begin_epoch() {
  granted_.clear();
  std::vector<Grant> grants;
  grants.reserve(deficit_.size());
  for (auto& [id, deficit] : deficit_) {
    deficit = std::min(max_deficit_, deficit + quantum_);
    grants.push_back(Grant{id, deficit});
    granted_.emplace(id, deficit);
  }
  return grants;
}

void DeficitScheduler::settle(std::uint64_t id, std::size_t used) {
  const auto deficit = deficit_.find(id);
  if (deficit == deficit_.end()) return;  // removed mid-epoch
  const auto granted = granted_.find(id);
  const std::size_t budget = granted == granted_.end() ? 0 : granted->second;
  if (used > budget)
    throw std::logic_error("DeficitScheduler: campaign " + std::to_string(id) +
                           " consumed " + std::to_string(used) +
                           " units against a budget of " +
                           std::to_string(budget));
  deficit->second = budget - used;
  if (granted != granted_.end()) granted_.erase(granted);
}

std::size_t DeficitScheduler::deficit(std::uint64_t id) const {
  const auto it = deficit_.find(id);
  return it == deficit_.end() ? 0 : it->second;
}

}  // namespace mwr::serve
