// The campaign-server control plane: request/reply structs and their
// wire-frame codecs.
//
// Clients talk to mwr_served over a Unix-domain stream socket carrying
// ordinary MWRW frames (parallel/transport/wire.hpp) — the same
// length-prefixed, versioned codec the SPMD transports use, extended
// with four additive kinds:
//
//   kSubmit      submit a campaign / admission verdict;
//   kStatus      poll one campaign's progress (value = campaign id);
//   kCheckpoint  ask the daemon to checkpoint every resident campaign;
//   kResult      fetch a finished campaign's outcome JSON
//                (mwr-campaign-outcome-v1 — byte-identical to what
//                repair_tool --outcome-out writes for the same run).
//
// kShutdown is reused as the drain-and-exit command.  Frames set
// `source` to 0 for requests and 1 for replies so a mismatched
// direction fails loudly instead of being misparsed.  Every connection
// is strictly request/reply; the daemon never pushes unsolicited frames.
//
// This header is IPC-free (pure structs + codecs) — the socket calls
// live only in serve/control_socket.cpp, the one file the raw-ipc lint
// whitelists for this subsystem.
#pragma once

#include <cstdint>
#include <string>

#include "apr/campaign.hpp"
#include "datasets/scenario.hpp"
#include "parallel/transport/wire.hpp"

namespace mwr::serve {

/// A campaign submission: a named scenario plus the knobs a tenant may
/// turn.  Defaults are sized for serving (small pools, short online
/// budgets, single-threaded phases — concurrency comes from running many
/// campaigns as fibers, not from intra-campaign thread pools).
struct SubmitRequest {
  std::string scenario = "gzip-2009-08-16";  ///< scenario_by_name key.
  std::uint32_t bugs = 2;          ///< defects repaired in sequence.
  std::uint32_t tests = 0;         ///< base suite size; 0 = scenario default.
  std::uint32_t pool_target = 300; ///< phase-1 safe mutations to collect.
  std::uint32_t pool_attempts = 20000;  ///< phase-1 candidate budget.
  std::uint64_t pool_seed = 1;
  std::uint8_t mwu = 0;            ///< core::MwuKind index.
  std::uint32_t arms = 32;
  std::uint32_t max_count = 256;
  std::uint32_t agents = 8;
  std::uint32_t max_iterations = 200;
  std::uint64_t repair_seed = 7;
  bool grow_suite = true;

  bool operator==(const SubmitRequest&) const = default;
};

/// The resolved execution plan for a submission.
struct CampaignPlan {
  datasets::ScenarioSpec spec;
  apr::CampaignConfig config;
};

/// Maps a submission onto (scenario spec, campaign config).  Forces
/// pool.threads = 1 and repair.eval_threads = 1: a served campaign is one
/// fiber among thousands, so intra-campaign thread fan-out would
/// oversubscribe the engine's workers.  Throws std::invalid_argument for
/// an unknown scenario name, an unknown MWU kind, or degenerate repair
/// knobs (zero bugs/arms/max_count/agents/max_iterations, tests > 64) —
/// everything a later phase would throw on must be rejected at SUBMIT so
/// a malformed request can never detonate inside an epoch fiber.
[[nodiscard]] CampaignPlan plan_campaign(const SubmitRequest& request);

struct SubmitReply {
  bool accepted = false;           ///< false = admission control rejected.
  std::uint64_t campaign_id = 0;   ///< valid when accepted.
  std::uint64_t resident = 0;      ///< campaigns resident after the verdict.

  bool operator==(const SubmitReply&) const = default;
};

struct StatusReply {
  bool known = false;              ///< id matches a resident or finished campaign.
  bool done = false;
  std::uint64_t bug_index = 0;     ///< bugs completed so far.
  std::uint64_t bugs_total = 0;
  std::uint64_t online_cycles = 0;
  std::uint64_t online_probes = 0;
  std::uint64_t repaired = 0;
  std::uint64_t trajectory_hash = 0;  ///< the bit-identity fingerprint.

  bool operator==(const StatusReply&) const = default;
};

struct ResultReply {
  bool ready = false;              ///< campaign finished; JSON present.
  std::uint64_t campaign_id = 0;
  std::string outcome_json;        ///< mwr-campaign-outcome-v1 document.

  bool operator==(const ResultReply&) const = default;
};

struct CheckpointReply {
  std::uint64_t bytes = 0;         ///< checkpoint bytes written.
  std::uint64_t campaigns = 0;     ///< campaigns checkpointed.

  bool operator==(const CheckpointReply&) const = default;
};

// --- frame codecs -------------------------------------------------------
// Encoders are total; decoders validate kind + direction + payload shape
// and throw std::runtime_error on anything malformed.

using parallel::transport::WireFrame;

[[nodiscard]] WireFrame encode_submit_request(const SubmitRequest& request);
[[nodiscard]] SubmitRequest decode_submit_request(const WireFrame& frame);
[[nodiscard]] WireFrame encode_submit_reply(const SubmitReply& reply);
[[nodiscard]] SubmitReply decode_submit_reply(const WireFrame& frame);

[[nodiscard]] WireFrame encode_status_request(std::uint64_t campaign_id);
[[nodiscard]] std::uint64_t decode_status_request(const WireFrame& frame);
[[nodiscard]] WireFrame encode_status_reply(std::uint64_t campaign_id,
                                            const StatusReply& reply);
[[nodiscard]] StatusReply decode_status_reply(const WireFrame& frame);

[[nodiscard]] WireFrame encode_result_request(std::uint64_t campaign_id);
[[nodiscard]] std::uint64_t decode_result_request(const WireFrame& frame);
[[nodiscard]] WireFrame encode_result_reply(const ResultReply& reply);
[[nodiscard]] ResultReply decode_result_reply(const WireFrame& frame);

[[nodiscard]] WireFrame encode_checkpoint_request();
[[nodiscard]] WireFrame encode_checkpoint_reply(const CheckpointReply& reply);
[[nodiscard]] CheckpointReply decode_checkpoint_reply(const WireFrame& frame);

/// Drain-and-exit: the daemon stops admitting, finishes every resident
/// campaign, then exits.  The reply reports how many campaigns remained
/// at the moment the request was accepted.
[[nodiscard]] WireFrame encode_shutdown_request();
[[nodiscard]] WireFrame encode_shutdown_reply(std::uint64_t remaining);
[[nodiscard]] std::uint64_t decode_shutdown_reply(const WireFrame& frame);

}  // namespace mwr::serve
