// Cross-campaign sharing of programs, oracles, and base pools.
//
// Co-resident campaigns frequently target the same scenario family: a
// thousand-tenant load over ten named scenarios means ~a hundred
// campaigns per (program, suite, bug) triple.  Building a private
// ProgramModel + TestOracle per campaign would duplicate both the model
// memory and — far worse — the oracle's sharded mask cache, so identical
// probes paid for by one tenant would be re-paid by every other.
//
// OracleHub is the ScenarioServices implementation the server hands its
// sessions.  It interns, keyed by a fingerprint of every spec field:
//
//   oracle_for()  — one shared TestOracle per exact (spec, bug, suite)
//                   triple.  All tenants' probes land in that oracle's
//                   sharded mutation-key cache, so "same scenario + same
//                   mask" dedups across campaigns by construction.  The
//                   hub primes a new oracle from an already-interned base
//                   pool of the same program when one exists (the common
//                   case: phase 1 runs before any bug starts), and marks
//                   the lease shared so tenants never call prime_cache on
//                   it — priming must not race concurrent evaluate()s.
//   base_pool()   — one phase-1 precompute per (spec, pool config).  The
//                   lease carries the analytic construction cost
//                   (suite runs == pool attempts) so each tenant's ledger
//                   charges the same precompute_runs a private build
//                   would have, while only the first tenant pays it.
//
// Thread model: sessions call in from engine fibers on many workers.
// Lookups take the hub mutex; a cache miss publishes a pending entry,
// builds outside the lock, then marks it ready under the lock. Callers
// that race the builder wait on a condition variable — an OS-thread
// block, acceptable because builders never suspend and therefore always
// retire.  A build failure poisons the entry and rethrows to all waiters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "apr/campaign_session.hpp"
#include "util/sync.hpp"

namespace mwr::obs {
class Counter;
}  // namespace mwr::obs

namespace mwr::serve {

class OracleHub final : public apr::ScenarioServices {
 public:
  OracleHub();

  OracleHub(const OracleHub&) = delete;
  OracleHub& operator=(const OracleHub&) = delete;

  OracleLease oracle_for(const datasets::ScenarioSpec& spec) override;
  PoolLease base_pool(const datasets::ScenarioSpec& spec,
                      const apr::PoolConfig& config) override;

  struct Stats {
    std::uint64_t oracle_builds = 0;
    std::uint64_t oracle_hits = 0;
    std::uint64_t pool_builds = 0;
    std::uint64_t pool_hits = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  template <typename LeaseT>
  struct Entry {
    bool ready = false;
    bool failed = false;
    LeaseT lease;
  };
  using OracleEntry = Entry<OracleLease>;
  using PoolEntry = Entry<PoolLease>;

  struct PoolSlot {
    std::uint64_t program_key = 0;  ///< spec identity minus (bug, suite).
    std::shared_ptr<PoolEntry> entry;
  };

  mutable util::Mutex mutex_;
  util::CondVar ready_cv_;
  std::map<std::uint64_t, std::shared_ptr<OracleEntry>> oracles_
      MWR_GUARDED_BY(mutex_);
  std::map<std::uint64_t, PoolSlot> pools_ MWR_GUARDED_BY(mutex_);
  Stats stats_ MWR_GUARDED_BY(mutex_);

  obs::Counter* oracle_builds_;
  obs::Counter* oracle_hits_;
  obs::Counter* pool_builds_;
  obs::Counter* pool_hits_;
};

}  // namespace mwr::serve
