#include "serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "apr/outcome_json.hpp"
#include "obs/registry.hpp"
#include "obs/serialization.hpp"
#include "parallel/superstep.hpp"
#include "serve/checkpoint.hpp"
#include "util/timer.hpp"

namespace mwr::serve {

CampaignServer::CampaignServer(ServerConfig config)
    : config_(std::move(config)),
      scheduler_(config_.quantum) {
  auto& metrics = obs::MetricsRegistry::global();
  submitted_ = &metrics.counter("serve.submitted");
  rejected_ = &metrics.counter("serve.admission_rejects");
  completed_ = &metrics.counter("serve.completed");
  epochs_counter_ = &metrics.counter("serve.epochs");
  starved_counter_ = &metrics.counter("serve.starved_epochs");
  failed_counter_ = &metrics.counter("serve.failed_campaigns");
  checkpoint_bytes_ = &metrics.counter("serve.checkpoint_bytes");
  resident_gauge_ = &metrics.gauge("serve.resident");
  probe_seconds_ = &metrics.histogram("serve.probe_seconds");
}

CampaignServer::~CampaignServer() = default;

std::optional<std::uint64_t> CampaignServer::submit(
    const SubmitRequest& request) {
  if (running_.size() >= config_.max_resident) {
    rejected_->add(1);
    return std::nullopt;
  }
  // Plan first: a malformed request must throw, not burn an id.
  CampaignPlan plan = plan_campaign(request);
  const std::uint64_t id = next_id_++;
  Campaign campaign;
  campaign.id = id;
  campaign.request = request;
  campaign.session = std::make_unique<apr::CampaignSession>(
      std::move(plan.spec), plan.config, &hub_);
  campaign.session->set_metric_scope("campaign/" + std::to_string(id));
  running_.emplace(id, std::move(campaign));
  scheduler_.admit(id);
  submitted_->add(1);
  resident_gauge_->set(static_cast<double>(running_.size()));
  return id;
}

bool CampaignServer::run_epoch() {
  const std::vector<DeficitScheduler::Grant> grants =
      scheduler_.begin_epoch();
  if (grants.empty()) return false;

  // One fiber per granted campaign on a bounded worker pool.  Sessions
  // are disjoint; the hub and the metrics registry synchronize
  // internally; the maps are not mutated until the engine has joined.
  std::vector<std::size_t> used(grants.size(), 0);
  std::vector<std::size_t> probes(grants.size(), 0);
  std::vector<double> seconds(grants.size(), 0.0);
  std::vector<std::string> errors(grants.size());
  parallel::SuperstepEngine engine(
      grants.size(), parallel::SuperstepEngine::Config{config_.workers});
  engine.run([&](int rank) {
    const auto i = static_cast<std::size_t>(rank);
    const DeficitScheduler::Grant& grant = grants[i];
    apr::CampaignSession& session = *running_.at(grant.id).session;
    const util::WallTimer timer;
    // A throwing session must fail only its own campaign.  The engine
    // rethrows fiber exceptions out of run_epoch, which would take every
    // resident tenant down with the one that misbehaved.
    try {
      used[i] = session.step(grant.budget, nullptr);
      probes[i] = session.probes_last_step();
    } catch (const std::exception& error) {
      errors[i] = error.what();
      if (errors[i].empty()) errors[i] = "campaign step failed";
    } catch (...) {
      errors[i] = "campaign step failed";
    }
    seconds[i] = timer.elapsed_seconds();
  });

  std::vector<std::uint64_t> retired;
  std::vector<std::uint64_t> failed;
  for (std::size_t i = 0; i < grants.size(); ++i) {
    const DeficitScheduler::Grant& grant = grants[i];
    scheduler_.settle(grant.id, used[i]);
    Campaign& campaign = running_.at(grant.id);
    campaign.online_cycles += used[i];
    campaign.online_probes += probes[i];
    if (probes[i] > 0) {
      const double per_probe =
          seconds[i] / static_cast<double>(probes[i]);
      probe_latency_seconds_.push_back(per_probe);
      probe_seconds_->observe(per_probe);
    }
    if (!errors[i].empty()) {
      campaign.error = errors[i];
      failed.push_back(grant.id);
    } else if (campaign.session->done()) {
      retired.push_back(grant.id);
    } else if (used[i] == 0) {
      // DRR guarantees budget >= 1 and sessions consume >= 1 unit while
      // unfinished, so this counter staying at zero is the no-starvation
      // proof obligation CI checks.
      ++starved_epochs_count_;
      starved_counter_->add(1);
    }
  }

  for (const std::uint64_t id : failed) {
    Campaign campaign = std::move(running_.at(id));
    running_.erase(id);
    fail_campaign(std::move(campaign));
  }
  for (const std::uint64_t id : retired) {
    Campaign campaign = std::move(running_.at(id));
    running_.erase(id);
    finish_campaign(std::move(campaign));
  }

  ++epochs_run_;
  epochs_counter_->add(1);
  resident_gauge_->set(static_cast<double>(running_.size()));
  if (!config_.checkpoint_dir.empty() && config_.checkpoint_every != 0 &&
      epochs_run_ % config_.checkpoint_every == 0 && !running_.empty()) {
    checkpoint_all();
  }
  return true;
}

void CampaignServer::drain() {
  while (run_epoch()) {
  }
}

void CampaignServer::finish_campaign(Campaign&& campaign) {
  const apr::CampaignOutcome& outcome = campaign.session->outcome();
  // dump(2) + newline: byte-identical to what repair_tool --outcome-out
  // writes for the same campaign (the one-schema satellite).
  campaign.result_json = apr::outcome_to_json(outcome).dump(/*indent=*/2);
  campaign.result_json += "\n";
  campaign.final_hash = campaign.session->trajectory_hash();
  campaign.repaired = outcome.repaired();
  campaign.bugs_done = outcome.bugs.size();
  campaign.session.reset();  // drop pool/lease memory; keep the ledger.
  scheduler_.remove(campaign.id);
  if (!config_.checkpoint_dir.empty()) {
    std::error_code ignored;
    std::filesystem::remove(checkpoint_path(campaign.id), ignored);
  }
  completed_->add(1);
  const std::uint64_t id = campaign.id;
  finished_.emplace(id, std::move(campaign));
}

void CampaignServer::fail_campaign(Campaign&& campaign) {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("schema", "mwr-campaign-error-v1");
  root.set("error", campaign.error);
  campaign.result_json = root.dump(/*indent=*/2);
  campaign.result_json += "\n";
  campaign.final_hash = campaign.session->trajectory_hash();
  campaign.repaired = campaign.session->bugs_repaired();
  campaign.bugs_done = campaign.session->bugs_completed();
  campaign.session.reset();
  scheduler_.remove(campaign.id);
  if (!config_.checkpoint_dir.empty()) {
    std::error_code ignored;
    std::filesystem::remove(checkpoint_path(campaign.id), ignored);
  }
  ++failed_count_;
  failed_counter_->add(1);
  const std::uint64_t id = campaign.id;
  finished_.emplace(id, std::move(campaign));
}

std::size_t CampaignServer::resident() const noexcept {
  return running_.size();
}

std::size_t CampaignServer::completed() const noexcept {
  return finished_.size();
}

void CampaignServer::fill_status(const Campaign& campaign,
                                 StatusReply& reply) const {
  reply.known = true;
  reply.bugs_total = campaign.request.bugs;
  reply.online_cycles = campaign.online_cycles;
  reply.online_probes = campaign.online_probes;
  if (campaign.session) {
    reply.done = false;
    reply.bug_index = campaign.session->bugs_completed();
    reply.repaired = campaign.session->bugs_repaired();
    reply.trajectory_hash = campaign.session->trajectory_hash();
  } else {
    reply.done = true;
    reply.bug_index = campaign.bugs_done;
    reply.repaired = campaign.repaired;
    reply.trajectory_hash = campaign.final_hash;
  }
}

StatusReply CampaignServer::status(std::uint64_t campaign_id) const {
  StatusReply reply;
  if (const auto it = running_.find(campaign_id); it != running_.end()) {
    fill_status(it->second, reply);
  } else if (const auto fin = finished_.find(campaign_id);
             fin != finished_.end()) {
    fill_status(fin->second, reply);
  }
  return reply;
}

ResultReply CampaignServer::result(std::uint64_t campaign_id) const {
  ResultReply reply;
  reply.campaign_id = campaign_id;
  if (const auto it = finished_.find(campaign_id); it != finished_.end()) {
    reply.ready = true;
    reply.outcome_json = it->second.result_json;
  }
  return reply;
}

std::string CampaignServer::checkpoint_path(std::uint64_t campaign_id) const {
  return config_.checkpoint_dir + "/campaign-" + std::to_string(campaign_id) +
         ".ckpt";
}

CheckpointReply CampaignServer::checkpoint_all() {
  if (config_.checkpoint_dir.empty())
    throw std::logic_error("CampaignServer: no checkpoint_dir configured");
  std::filesystem::create_directories(config_.checkpoint_dir);
  CheckpointReply reply;
  for (const auto& [id, campaign] : running_) {
    CampaignCheckpoint checkpoint;
    checkpoint.campaign_id = id;
    checkpoint.request = campaign.request;
    checkpoint.snapshot = campaign.session->snapshot();
    reply.bytes += write_checkpoint_file(checkpoint, checkpoint_path(id));
    ++reply.campaigns;
  }
  checkpoint_bytes_->add(reply.bytes);
  return reply;
}

std::size_t CampaignServer::restore_from_dir() {
  if (config_.checkpoint_dir.empty())
    throw std::logic_error("CampaignServer: no checkpoint_dir configured");
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.checkpoint_dir, ec)) {
    if (entry.path().extension() == ".ckpt") files.push_back(entry.path());
  }
  if (ec) return 0;  // missing directory: nothing to restore.
  std::sort(files.begin(), files.end());

  std::size_t restored = 0;
  for (const std::filesystem::path& path : files) {
    CampaignCheckpoint checkpoint = read_checkpoint_file(path.string());
    CampaignPlan plan = plan_campaign(checkpoint.request);
    Campaign campaign;
    campaign.id = checkpoint.campaign_id;
    campaign.request = checkpoint.request;
    campaign.session =
        apr::CampaignSession::resume(checkpoint.snapshot, std::move(plan.spec),
                                     plan.config, &hub_);
    campaign.session->set_metric_scope("campaign/" +
                                       std::to_string(campaign.id));
    next_id_ = std::max(next_id_, campaign.id + 1);
    if (campaign.session->done()) {
      finish_campaign(std::move(campaign));
    } else {
      const std::uint64_t id = campaign.id;
      running_.emplace(id, std::move(campaign));
      scheduler_.admit(id);
    }
    ++restored;
  }
  resident_gauge_->set(static_cast<double>(running_.size()));
  return restored;
}

}  // namespace mwr::serve
