#include "serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "apr/outcome_json.hpp"
#include "obs/registry.hpp"
#include "obs/serialization.hpp"
#include "parallel/superstep.hpp"
#include "serve/checkpoint.hpp"
#include "serve/checkpoint_writer.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace mwr::serve {

CampaignServer::CampaignServer(ServerConfig config)
    : config_(std::move(config)),
      scheduler_(config_.quantum) {
  auto& metrics = obs::MetricsRegistry::global();
  submitted_ = &metrics.counter("serve.submitted");
  rejected_ = &metrics.counter("serve.admission_rejects");
  completed_ = &metrics.counter("serve.completed");
  epochs_counter_ = &metrics.counter("serve.epochs");
  starved_counter_ = &metrics.counter("serve.starved_epochs");
  failed_counter_ = &metrics.counter("serve.failed_campaigns");
  checkpoint_bytes_ = &metrics.counter("serve.checkpoint_bytes");
  resident_gauge_ = &metrics.gauge("serve.resident");
  probe_seconds_ = &metrics.histogram("serve.probe_seconds");
}

CampaignServer::~CampaignServer() = default;

parallel::SuperstepEngine& CampaignServer::engine() {
  if (!engine_) {
    // One rank is a placeholder — epochs drive the engine exclusively
    // through parallel_for, whose geometry is the wave size.  The worker
    // pool persists for the server's lifetime: no per-epoch spawn/join.
    engine_ = std::make_unique<parallel::SuperstepEngine>(
        1, parallel::SuperstepEngine::Config{config_.workers});
  }
  return *engine_;
}

CheckpointWriter& CampaignServer::writer() {
  if (!writer_) {
    std::filesystem::create_directories(config_.checkpoint_dir);
    writer_ = std::make_unique<CheckpointWriter>();
  }
  return *writer_;
}

double CampaignServer::checkpoint_writer_seconds() const {
  return writer_ ? writer_->stats().writer_seconds : 0.0;
}

void CampaignServer::record_probe_latency(double seconds) {
  if (latency_window_.size() < kLatencyWindowCapacity) {
    latency_window_.push_back(seconds);
  } else {
    latency_window_[latency_next_] = seconds;
    latency_next_ = (latency_next_ + 1) % kLatencyWindowCapacity;
  }
  probe_seconds_->observe(seconds);
}

std::vector<double> CampaignServer::probe_latency_seconds() const {
  return latency_window_;
}

std::optional<std::uint64_t> CampaignServer::submit(
    const SubmitRequest& request) {
  if (running_.size() >= config_.max_resident) {
    rejected_->add(1);
    return std::nullopt;
  }
  // Plan first: a malformed request must throw, not burn an id.
  CampaignPlan plan = plan_campaign(request);
  const std::uint64_t id = next_id_++;
  Campaign campaign;
  campaign.id = id;
  campaign.request = request;
  campaign.session = std::make_unique<apr::CampaignSession>(
      std::move(plan.spec), plan.config, &hub_);
  campaign.session->set_metric_scope("campaign/" + std::to_string(id));
  running_.emplace(id, std::move(campaign));
  scheduler_.admit(id);
  submitted_->add(1);
  resident_gauge_->set(static_cast<double>(running_.size()));
  return id;
}

bool CampaignServer::run_epoch() {
  const std::vector<DeficitScheduler::Grant> grants =
      scheduler_.begin_epoch();
  if (grants.empty()) return false;

  // The epoch pipeline: stage / wave / complete rounds until every
  // grant's budget is consumed.  Per campaign the unit sequence is
  // exactly step(budget)'s — only the interleaving across campaigns
  // changes, and the batched evaluations are pure and order-free, so
  // trajectories are bit-identical to the unpipelined server's.
  const std::size_t n = grants.size();
  std::vector<apr::CampaignSession*> sessions(n);
  std::vector<std::size_t> remaining(n);
  std::vector<std::size_t> used(n, 0);
  std::vector<std::size_t> probes(n, 0);
  std::vector<std::string> errors(n);
  std::vector<char> active(n, 1);
  std::vector<char> staged(n, 0);
  std::vector<std::size_t> staged_probes(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    sessions[i] = running_.at(grants[i].id).session.get();
    remaining[i] = grants[i].budget;
  }

  struct WaveEntry {
    std::uint32_t campaign;
    std::uint32_t probe;
  };
  std::vector<WaveEntry> wave;
  util::Mutex error_mutex;  // only touched on the (cold) eval-error path.
  double wave_seconds_total = 0.0;
  std::uint64_t wave_probes_total = 0;

  for (;;) {
    // Stage: ascending grant order.  Setup units (precompute, bug start,
    // finalize) run inline; a campaign pauses once it has one online
    // cycle's probes staged, so each round contributes at most one MWU
    // cycle per campaign to the wave.
    wave.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      try {
        while (remaining[i] > 0) {
          std::size_t nprobes = 0;
          const std::size_t charge = sessions[i]->stage_unit(nprobes);
          if (charge == 0) {  // campaign finished during a setup unit.
            active[i] = 0;
            break;
          }
          used[i] += charge;
          remaining[i] -= charge;
          if (sessions[i]->unit_staged()) {
            staged[i] = 1;
            staged_probes[i] = nprobes;
            probes[i] += nprobes;
            for (std::size_t j = 0; j < nprobes; ++j) {
              wave.push_back({static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j)});
            }
            break;
          }
          if (sessions[i]->done()) {
            active[i] = 0;
            break;
          }
        }
        if (active[i] && !staged[i] && remaining[i] == 0) active[i] = 0;
      } catch (const std::exception& error) {
        errors[i] = error.what();
        if (errors[i].empty()) errors[i] = "campaign stage failed";
        active[i] = 0;
      } catch (...) {
        errors[i] = "campaign stage failed";
        active[i] = 0;
      }
    }
    if (wave.empty()) break;  // nothing staged: every budget drained.

    // Wave: the whole cross-campaign batch in one deterministic parallel
    // sweep (the split happened above, before fan-out).  A throwing
    // evaluation fails only its own campaign, never the sweep.
    const util::WallTimer wave_timer;
    engine().parallel_for(wave.size(), [&](std::size_t k) {
      const WaveEntry entry = wave[k];
      try {
        sessions[entry.campaign]->evaluate_staged(entry.probe);
      } catch (const std::exception& error) {
        util::MutexLock lock(error_mutex);
        std::string& slot = errors[entry.campaign];
        if (slot.empty()) slot = error.what();
        if (slot.empty()) slot = "campaign probe failed";
      } catch (...) {
        util::MutexLock lock(error_mutex);
        std::string& slot = errors[entry.campaign];
        if (slot.empty()) slot = "campaign probe failed";
      }
    });
    const double wave_seconds = wave_timer.elapsed_seconds();
    wave_seconds_total += wave_seconds;
    wave_probes_total += wave.size();

    // Complete: ascending grant order; rewards + MWU update, with wall
    // time attributed to each campaign in proportion to its probes
    // (telemetry only — never trajectory-relevant).
    for (std::size_t i = 0; i < n; ++i) {
      if (!staged[i]) continue;
      staged[i] = 0;
      if (!errors[i].empty()) {
        active[i] = 0;  // evaluation failed: do not complete on garbage.
        continue;
      }
      const double share =
          wave_seconds * static_cast<double>(staged_probes[i]) /
          static_cast<double>(wave.size());
      try {
        sessions[i]->complete_unit(share);
        if (sessions[i]->done() || remaining[i] == 0) active[i] = 0;
      } catch (const std::exception& error) {
        errors[i] = error.what();
        if (errors[i].empty()) errors[i] = "campaign update failed";
        active[i] = 0;
      } catch (...) {
        errors[i] = "campaign update failed";
        active[i] = 0;
      }
    }
  }

  // Settle and retire.  Per-probe latency is the epoch's aggregate wave
  // rate, sampled once per campaign-epoch that issued probes.
  const double per_probe =
      wave_probes_total != 0
          ? wave_seconds_total / static_cast<double>(wave_probes_total)
          : 0.0;
  std::vector<std::uint64_t> retired;
  std::vector<std::uint64_t> failed;
  for (std::size_t i = 0; i < n; ++i) {
    const DeficitScheduler::Grant& grant = grants[i];
    scheduler_.settle(grant.id, used[i]);
    Campaign& campaign = running_.at(grant.id);
    campaign.online_cycles += used[i];
    campaign.online_probes += probes[i];
    if (probes[i] > 0) record_probe_latency(per_probe);
    if (!errors[i].empty()) {
      campaign.error = errors[i];
      failed.push_back(grant.id);
    } else if (campaign.session->done()) {
      retired.push_back(grant.id);
    } else if (used[i] == 0) {
      // DRR guarantees budget >= 1 and sessions consume >= 1 unit while
      // unfinished, so this counter staying at zero is the no-starvation
      // proof obligation CI checks.
      ++starved_epochs_count_;
      starved_counter_->add(1);
    }
  }

  for (const std::uint64_t id : failed) {
    Campaign campaign = std::move(running_.at(id));
    running_.erase(id);
    fail_campaign(std::move(campaign));
  }
  for (const std::uint64_t id : retired) {
    Campaign campaign = std::move(running_.at(id));
    running_.erase(id);
    finish_campaign(std::move(campaign));
  }

  ++epochs_run_;
  epochs_counter_->add(1);
  resident_gauge_->set(static_cast<double>(running_.size()));
  if (!config_.checkpoint_dir.empty() && config_.checkpoint_every != 0 &&
      epochs_run_ % config_.checkpoint_every == 0 && !running_.empty()) {
    // Periodic checkpoints are fully async: serialize dirty campaigns,
    // queue the writes, keep scheduling.  No flush — durability at the
    // periodic cadence is best-effort by design; the explicit
    // checkpoint_all is the barrier.
    checkpoint_bytes_->add(enqueue_dirty_checkpoints());
  }
  return true;
}

void CampaignServer::drain() {
  while (run_epoch()) {
  }
}

void CampaignServer::finish_campaign(Campaign&& campaign) {
  const apr::CampaignOutcome& outcome = campaign.session->outcome();
  campaign.final_hash = campaign.session->trajectory_hash();
  campaign.repaired = outcome.repaired();
  campaign.bugs_done = outcome.bugs.size();
  // Keep the outcome; result() renders the document on first fetch.
  campaign.outcome = std::make_unique<apr::CampaignOutcome>(outcome);
  campaign.session.reset();  // drop pool/lease memory; keep the ledger.
  scheduler_.remove(campaign.id);
  if (!config_.checkpoint_dir.empty()) {
    // Route the removal through the writer so it orders after (and
    // cancels) any in-flight write for this campaign.
    writer().enqueue_remove(campaign.id, checkpoint_path(campaign.id));
  }
  completed_->add(1);
  const std::uint64_t id = campaign.id;
  finished_.emplace(id, std::move(campaign));
}

void CampaignServer::fail_campaign(Campaign&& campaign) {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("schema", "mwr-campaign-error-v1");
  root.set("error", campaign.error);
  campaign.result_json = root.dump(/*indent=*/2);
  campaign.result_json += "\n";
  campaign.final_hash = campaign.session->trajectory_hash();
  campaign.repaired = campaign.session->bugs_repaired();
  campaign.bugs_done = campaign.session->bugs_completed();
  campaign.session.reset();
  scheduler_.remove(campaign.id);
  if (!config_.checkpoint_dir.empty()) {
    writer().enqueue_remove(campaign.id, checkpoint_path(campaign.id));
  }
  ++failed_count_;
  failed_counter_->add(1);
  const std::uint64_t id = campaign.id;
  finished_.emplace(id, std::move(campaign));
}

std::size_t CampaignServer::resident() const noexcept {
  return running_.size();
}

std::size_t CampaignServer::completed() const noexcept {
  return finished_.size();
}

void CampaignServer::fill_status(const Campaign& campaign,
                                 StatusReply& reply) const {
  reply.known = true;
  reply.bugs_total = campaign.request.bugs;
  reply.online_cycles = campaign.online_cycles;
  reply.online_probes = campaign.online_probes;
  if (campaign.session) {
    reply.done = false;
    reply.bug_index = campaign.session->bugs_completed();
    reply.repaired = campaign.session->bugs_repaired();
    reply.trajectory_hash = campaign.session->trajectory_hash();
  } else {
    reply.done = true;
    reply.bug_index = campaign.bugs_done;
    reply.repaired = campaign.repaired;
    reply.trajectory_hash = campaign.final_hash;
  }
}

StatusReply CampaignServer::status(std::uint64_t campaign_id) const {
  StatusReply reply;
  if (const auto it = running_.find(campaign_id); it != running_.end()) {
    fill_status(it->second, reply);
  } else if (const auto fin = finished_.find(campaign_id);
             fin != finished_.end()) {
    fill_status(fin->second, reply);
  }
  return reply;
}

ResultReply CampaignServer::result(std::uint64_t campaign_id) const {
  ResultReply reply;
  reply.campaign_id = campaign_id;
  if (const auto it = finished_.find(campaign_id); it != finished_.end()) {
    const Campaign& campaign = it->second;
    if (campaign.result_json.empty() && campaign.outcome != nullptr) {
      // dump(2) + newline: byte-identical to what repair_tool
      // --outcome-out writes for the same campaign (the one-schema
      // satellite), just rendered on demand instead of at retirement.
      campaign.result_json =
          apr::outcome_to_json(*campaign.outcome).dump(/*indent=*/2);
      campaign.result_json += "\n";
    }
    reply.ready = true;
    reply.outcome_json = campaign.result_json;
  }
  return reply;
}

std::string CampaignServer::checkpoint_path(std::uint64_t campaign_id) const {
  return config_.checkpoint_dir + "/campaign-" + std::to_string(campaign_id) +
         ".ckpt";
}

std::uint64_t CampaignServer::enqueue_dirty_checkpoints() {
  // The critical path pays only for campaigns that progressed since
  // their last checkpoint: serialize the snapshot into a buffer and
  // queue it.  The encoded bytes are identical to the synchronous
  // write_checkpoint_file path — the writer adds durability (fsync), not
  // format.
  const util::WallTimer timer;
  std::uint64_t bytes = 0;
  CheckpointWriter& w = writer();
  for (auto& [id, campaign] : running_) {
    if (campaign.checkpointed_units == campaign.online_cycles) continue;
    CampaignCheckpoint checkpoint;
    checkpoint.campaign_id = id;
    checkpoint.request = campaign.request;
    checkpoint.snapshot = campaign.session->snapshot();
    std::vector<std::uint8_t> encoded = encode_checkpoint(checkpoint);
    bytes += encoded.size();
    w.enqueue_write(id, checkpoint_path(id), std::move(encoded));
    campaign.checkpointed_units = campaign.online_cycles;
  }
  checkpoint_critical_seconds_ += timer.elapsed_seconds();
  return bytes;
}

CheckpointReply CampaignServer::checkpoint_all() {
  if (config_.checkpoint_dir.empty())
    throw std::logic_error("CampaignServer: no checkpoint_dir configured");
  CheckpointReply reply;
  reply.bytes = enqueue_dirty_checkpoints();
  // Every resident campaign is covered after the flush: dirty ones by
  // the writes just queued, clean ones by the file already on disk.
  reply.campaigns = running_.size();
  writer().flush();  // the explicit checkpoint's durability barrier.
  checkpoint_bytes_->add(reply.bytes);
  return reply;
}

std::size_t CampaignServer::restore_from_dir() {
  if (config_.checkpoint_dir.empty())
    throw std::logic_error("CampaignServer: no checkpoint_dir configured");
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.checkpoint_dir, ec)) {
    // ".ckpt" only: a stray ".ckpt.tmp" from a crash mid-flush is not a
    // checkpoint (extension() of "x.ckpt.tmp" is ".tmp").
    if (entry.path().extension() == ".ckpt") files.push_back(entry.path());
  }
  if (ec) return 0;  // missing directory: nothing to restore.
  std::sort(files.begin(), files.end());

  std::size_t restored = 0;
  for (const std::filesystem::path& path : files) {
    CampaignCheckpoint checkpoint = read_checkpoint_file(path.string());
    CampaignPlan plan = plan_campaign(checkpoint.request);
    Campaign campaign;
    campaign.id = checkpoint.campaign_id;
    campaign.request = checkpoint.request;
    campaign.session =
        apr::CampaignSession::resume(checkpoint.snapshot, std::move(plan.spec),
                                     plan.config, &hub_);
    campaign.session->set_metric_scope("campaign/" +
                                       std::to_string(campaign.id));
    // The file just read IS the current state: clean until it progresses.
    campaign.checkpointed_units = campaign.online_cycles;
    next_id_ = std::max(next_id_, campaign.id + 1);
    if (campaign.session->done()) {
      finish_campaign(std::move(campaign));
    } else {
      const std::uint64_t id = campaign.id;
      running_.emplace(id, std::move(campaign));
      scheduler_.admit(id);
    }
    ++restored;
  }
  resident_gauge_->set(static_cast<double>(running_.size()));
  return restored;
}

}  // namespace mwr::serve
