#include "serve/oracle_hub.hpp"

#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/registry.hpp"

namespace mwr::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_fold(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_fold_string(std::uint64_t h, const std::string& s) noexcept {
  h = fnv_fold(h, s.size());
  for (const char c : s) h = fnv_fold(h, static_cast<unsigned char>(c));
  return h;
}

std::uint64_t fnv_fold_double(std::uint64_t h, double v) noexcept {
  return fnv_fold(h, std::bit_cast<std::uint64_t>(v));
}

/// Identity of the *program*: every spec field except the bug targeted
/// and the suite size.  Pools precomputed for any bug of the program can
/// warm an oracle for any other bug of the same program (coverage,
/// safety, and interference are program properties — the invariant the
/// whole amortization story rests on).
std::uint64_t program_fingerprint(const datasets::ScenarioSpec& spec) {
  std::uint64_t h = kFnvOffset;
  h = fnv_fold_string(h, spec.name);
  h = fnv_fold_string(h, spec.language);
  h = fnv_fold(h, spec.options);
  h = fnv_fold(h, spec.statements);
  h = fnv_fold_double(h, spec.coverage);
  h = fnv_fold_double(h, spec.safe_rate);
  h = fnv_fold_double(h, spec.repair_rate);
  h = fnv_fold(h, spec.optimum);
  h = fnv_fold(h, spec.min_repair_edits);
  h = fnv_fold_double(h, spec.value_noise);
  h = fnv_fold(h, spec.seed);
  h = fnv_fold(h, spec.relevance_localized ? 1u : 0u);
  return h;
}

/// Identity of one oracle: the program plus (suite size, bug).
std::uint64_t oracle_fingerprint(const datasets::ScenarioSpec& spec) {
  std::uint64_t h = program_fingerprint(spec);
  h = fnv_fold(h, spec.tests);
  h = fnv_fold(h, spec.bug_id);
  return h;
}

/// Identity of one precomputed base pool: the oracle it was validated
/// against plus the pool-shaping knobs.  `threads` is excluded — the
/// precompute result is bit-identical for any worker count.
std::uint64_t pool_fingerprint(const datasets::ScenarioSpec& spec,
                               const apr::PoolConfig& config) {
  std::uint64_t h = oracle_fingerprint(spec);
  h = fnv_fold(h, config.target_size);
  h = fnv_fold(h, config.max_attempts);
  h = fnv_fold(h, config.seed);
  return h;
}

}  // namespace

OracleHub::OracleHub() {
  auto& metrics = obs::MetricsRegistry::global();
  oracle_builds_ = &metrics.counter("serve.hub.oracle_builds");
  oracle_hits_ = &metrics.counter("serve.hub.oracle_hits");
  pool_builds_ = &metrics.counter("serve.hub.pool_builds");
  pool_hits_ = &metrics.counter("serve.hub.pool_hits");
}

OracleHub::Stats OracleHub::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

apr::ScenarioServices::OracleLease OracleHub::oracle_for(
    const datasets::ScenarioSpec& spec) {
  const std::uint64_t key = oracle_fingerprint(spec);
  std::shared_ptr<OracleEntry> entry;
  std::shared_ptr<const apr::MutationPool> warm;
  bool builder = false;
  {
    util::MutexLock lock(mutex_);
    auto& slot = oracles_[key];
    if (!slot) {
      slot = std::make_shared<OracleEntry>();
      builder = true;
    }
    entry = slot;
    if (builder) {
      // Prefer priming the fresh oracle from an interned base pool of
      // the same program (phase 1 has usually run by now): one batch of
      // cache inserts instead of per-tenant cold misses.
      const std::uint64_t program = program_fingerprint(spec);
      for (const auto& [pool_key, pool_slot] : pools_) {
        (void)pool_key;
        if (pool_slot.program_key == program && pool_slot.entry->ready &&
            !pool_slot.entry->failed) {
          warm = pool_slot.entry->lease.pool;
          break;
        }
      }
      ++stats_.oracle_builds;
    } else {
      while (!entry->ready) ready_cv_.wait(mutex_);
      if (entry->failed)
        throw std::runtime_error("OracleHub: oracle build failed for " +
                                 spec.name);
      ++stats_.oracle_hits;
      oracle_hits_->add(1);
      return entry->lease;
    }
  }

  OracleLease lease;
  try {
    auto program = std::make_shared<const apr::ProgramModel>(spec);
    auto oracle = std::make_shared<const apr::TestOracle>(*program);
    // Nothing else can see this oracle until `ready` flips below, so the
    // prime cannot race an evaluate().  prime_wave = prime_cache plus the
    // eager wave table (flat masks, safe/relevant bitsets, interference
    // CSR): every pair hash the pooled scenario can charge, paid once here
    // and amortized over every tenant's probe waves.
    if (warm) oracle->prime_wave(warm->mutations());
    lease.program = std::move(program);
    lease.oracle = std::move(oracle);
    lease.shared = true;
  } catch (...) {
    util::MutexLock lock(mutex_);
    entry->failed = true;
    entry->ready = true;
    // Waiters already parked on this entry observe the failure, but the
    // map slot is released so a later campaign retries the build instead
    // of hitting a permanently poisoned fingerprint (the failure may
    // have been transient — allocation pressure, say).
    oracles_.erase(key);
    ready_cv_.notify_all();
    throw;
  }
  {
    util::MutexLock lock(mutex_);
    entry->lease = lease;
    entry->ready = true;
    ready_cv_.notify_all();
  }
  oracle_builds_->add(1);
  return lease;
}

apr::ScenarioServices::PoolLease OracleHub::base_pool(
    const datasets::ScenarioSpec& spec, const apr::PoolConfig& config) {
  const std::uint64_t key = pool_fingerprint(spec, config);
  std::shared_ptr<PoolEntry> entry;
  bool builder = false;
  {
    util::MutexLock lock(mutex_);
    PoolSlot& slot = pools_[key];
    if (!slot.entry) {
      slot.entry = std::make_shared<PoolEntry>();
      slot.program_key = program_fingerprint(spec);
      builder = true;
    }
    entry = slot.entry;
    if (builder) {
      ++stats_.pool_builds;
    } else {
      while (!entry->ready) ready_cv_.wait(mutex_);
      if (entry->failed)
        throw std::runtime_error("OracleHub: pool build failed for " +
                                 spec.name);
      ++stats_.pool_hits;
      pool_hits_->add(1);
      return entry->lease;
    }
  }

  PoolLease lease;
  try {
    // The build uses a private oracle: precompute primes the oracle it is
    // given, and priming a shared one would race other tenants' probes.
    // The analytic identity (precompute suite runs == pool attempts)
    // makes the private counter transferable to every tenant's ledger.
    const apr::ProgramModel program(spec);
    const apr::TestOracle oracle(program);
    auto pool = std::make_shared<const apr::MutationPool>(
        apr::MutationPool::precompute(oracle, config));
    lease.pool = std::move(pool);
    lease.precompute_runs = oracle.suite_runs();
  } catch (...) {
    util::MutexLock lock(mutex_);
    entry->failed = true;
    entry->ready = true;
    // Same retry contract as oracle_for: fail the parked waiters, free
    // the slot so the next tenant rebuilds instead of inheriting a
    // permanently cached failure.
    pools_.erase(key);
    ready_cv_.notify_all();
    throw;
  }
  {
    util::MutexLock lock(mutex_);
    entry->lease = lease;
    entry->ready = true;
    ready_cv_.notify_all();
  }
  pool_builds_->add(1);
  return lease;
}

}  // namespace mwr::serve
