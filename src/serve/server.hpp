// CampaignServer: multiplexes many concurrent repair campaigns over one
// bounded superstep engine.
//
// Execution model — repair-as-a-service:
//
//   submit()     admission control: a campaign is admitted while the
//                resident count is below the configured cap, planned via
//                plan_campaign(), given "campaign/<id>/" scoped metrics,
//                and registered with the deficit-round-robin scheduler.
//   run_epoch()  one scheduling epoch: the DRR scheduler grants every
//                resident campaign a unit budget, and a one-shot
//                SuperstepEngine runs one fiber per granted campaign —
//                each fiber advances its CampaignSession by at most its
//                budget.  Thousands of campaigns co-schedule on a
//                bounded worker pool (fibers are cheap; workers are
//                cores), cross-campaign probes dedup through the shared
//                OracleHub, and the per-fiber wall time is attributed to
//                per-probe latency telemetry.  Campaigns that finish are
//                retired: result JSON rendered (the same
//                mwr-campaign-outcome-v1 document repair_tool emits),
//                scheduler slot released, checkpoint file removed.
//   checkpoint_all() / restore_from_dir()
//                durability: every resident campaign's snapshot is
//                written through serve/checkpoint.hpp; a fresh daemon
//                reloads the directory and resumes every campaign
//                bit-identically (the trajectory-hash pin).
//
// The server itself is single-threaded: submit/run_epoch/checkpoint are
// called from the daemon's control loop, never concurrently.  The only
// intra-epoch concurrency is the engine's fibers, which touch disjoint
// sessions plus the internally-synchronized hub and metrics registry.
//
// Fairness telemetry: serve.starved_epochs counts campaigns that ended
// an epoch with zero units consumed while unfinished.  The DRR invariant
// (every resident campaign gets budget >= 1 every epoch, and sessions
// always consume >= 1 unit when budgeted) keeps it at exactly zero; CI
// asserts that on every serve-lane run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apr/campaign_session.hpp"
#include "serve/control.hpp"
#include "serve/oracle_hub.hpp"
#include "serve/scheduler.hpp"

namespace mwr::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace mwr::obs

namespace mwr::serve {

struct ServerConfig {
  std::size_t max_resident = 256;   ///< admission-control cap.
  std::size_t quantum = 8;          ///< DRR work units per campaign-epoch.
  std::size_t workers = 0;          ///< engine workers; 0 = hardware.
  std::string checkpoint_dir;       ///< empty = durability disabled.
  std::size_t checkpoint_every = 0; ///< epochs between auto-checkpoints;
                                    ///< 0 = only explicit checkpoint_all().
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerConfig config);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Admission control: returns the campaign id, or nullopt when the
  /// resident cap is reached.  Throws std::invalid_argument for a
  /// malformed request (unknown scenario / MWU kind, degenerate repair
  /// knobs — see plan_campaign).
  std::optional<std::uint64_t> submit(const SubmitRequest& request);

  /// Runs one DRR epoch over the resident campaigns.  Returns false when
  /// there was nothing to run.
  bool run_epoch();

  /// Steps epochs until every resident campaign has finished.
  void drain();

  [[nodiscard]] std::size_t resident() const noexcept;
  [[nodiscard]] std::size_t completed() const noexcept;
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_run_; }
  /// Campaign-epochs that made zero progress (the starvation monitor;
  /// invariantly 0 under DRR).
  [[nodiscard]] std::uint64_t starved_epochs() const noexcept {
    return starved_epochs_count_;
  }
  /// Campaigns retired because their session threw mid-epoch (each one
  /// fails alone; the daemon and every other tenant keep running).
  [[nodiscard]] std::uint64_t failed_campaigns() const noexcept {
    return failed_count_;
  }

  [[nodiscard]] StatusReply status(std::uint64_t campaign_id) const;
  /// Result JSON for a finished campaign (ready=false while running or
  /// for unknown ids).
  [[nodiscard]] ResultReply result(std::uint64_t campaign_id) const;

  /// Per-fiber wall seconds divided by probes issued, one sample per
  /// campaign-epoch that issued probes — the distribution behind the
  /// bench's p50/p99 probe latency.
  [[nodiscard]] const std::vector<double>& probe_latency_seconds()
      const noexcept {
    return probe_latency_seconds_;
  }

  /// Writes every resident campaign's checkpoint; returns the reply the
  /// control plane sends (bytes written, campaigns covered).  Throws
  /// std::logic_error when no checkpoint_dir is configured.
  CheckpointReply checkpoint_all();
  /// Loads every "*.ckpt" in checkpoint_dir and resumes the campaigns;
  /// returns how many were restored.
  std::size_t restore_from_dir();

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const OracleHub& hub() const noexcept { return hub_; }

 private:
  struct Campaign {
    std::uint64_t id = 0;
    SubmitRequest request;
    std::unique_ptr<apr::CampaignSession> session;
    std::string result_json;        ///< rendered at completion.
    std::string error;              ///< non-empty = campaign failed.
    std::uint64_t final_hash = 0;
    std::uint64_t online_cycles = 0;
    std::uint64_t online_probes = 0;
    std::uint64_t repaired = 0;   ///< filled at completion.
    std::uint64_t bugs_done = 0;  ///< filled at completion.
  };

  void finish_campaign(Campaign&& campaign);
  /// Retires a campaign whose session threw (campaign.error holds the
  /// message): the result frame becomes an mwr-campaign-error-v1
  /// document and the scheduler slot is released, leaving every other
  /// tenant untouched.
  void fail_campaign(Campaign&& campaign);
  void fill_status(const Campaign& campaign, StatusReply& reply) const;
  [[nodiscard]] std::string checkpoint_path(std::uint64_t campaign_id) const;

  ServerConfig config_;
  OracleHub hub_;
  DeficitScheduler scheduler_;
  std::map<std::uint64_t, Campaign> running_;
  std::map<std::uint64_t, Campaign> finished_;
  std::uint64_t next_id_ = 1;
  std::uint64_t epochs_run_ = 0;
  std::uint64_t starved_epochs_count_ = 0;
  std::uint64_t failed_count_ = 0;
  std::vector<double> probe_latency_seconds_;

  obs::Counter* submitted_;
  obs::Counter* rejected_;
  obs::Counter* completed_;
  obs::Counter* epochs_counter_;
  obs::Counter* starved_counter_;
  obs::Counter* failed_counter_;
  obs::Counter* checkpoint_bytes_;
  obs::Gauge* resident_gauge_;
  obs::Histogram* probe_seconds_;
};

}  // namespace mwr::serve
