// CampaignServer: multiplexes many concurrent repair campaigns over one
// persistent bounded worker pool.
//
// Execution model — the epoch pipeline (DESIGN.md §14):
//
//   submit()     admission control: a campaign is admitted while the
//                resident count is below the configured cap, planned via
//                plan_campaign(), given "campaign/<id>/" scoped metrics,
//                and registered with the deficit-round-robin scheduler.
//   run_epoch()  one scheduling epoch, pipelined in stage/wave/complete
//                rounds over the resident SuperstepEngine (persistent
//                workers; no per-epoch thread spawn/join):
//                  stage    — in ascending grant order, each campaign
//                             advances through setup units inline until
//                             it stages one online MWU cycle's probes,
//                             finishes, or exhausts its DRR budget.  The
//                             unit sequence per campaign is exactly
//                             step(budget)'s.
//                  wave     — every staged probe across every campaign
//                             is batched into one deterministic parallel
//                             sweep (split before fan-out; evaluations
//                             are pure and order-free) over the shared
//                             workers and OracleHub caches.
//                  complete — in ascending grant order, each staged
//                             campaign applies rewards and its MWU
//                             update; rounds repeat until every grant's
//                             budget is consumed.  Trajectories are
//                             bit-identical to the unpipelined server's.
//                Campaigns that finish are retired: result JSON rendered
//                (the same mwr-campaign-outcome-v1 document repair_tool
//                emits), scheduler slot released, checkpoint removal
//                routed through the async writer.
//   checkpoint_all() / restore_from_dir()
//                durability: the epoch path serializes only *dirty*
//                campaigns (progress since their last checkpoint) into
//                in-memory buffers and hands them to the CheckpointWriter
//                thread, which does tmp + fsync + rename off the critical
//                path.  An explicit checkpoint_all flushes the writer
//                before replying; periodic epoch checkpoints do not.  A
//                fresh daemon reloads the directory and resumes every
//                campaign bit-identically (the trajectory-hash pin).
//
// The server itself is single-threaded: submit/run_epoch/checkpoint are
// called from the daemon's control loop, never concurrently.  The only
// intra-epoch concurrency is the engine's probe sweep, which touches
// disjoint staged evaluations plus the internally-synchronized hub and
// metrics registry — plus the writer thread, which only ever sees byte
// buffers the critical path has already sealed.
//
// Fairness telemetry: serve.starved_epochs counts campaigns that ended
// an epoch with zero units consumed while unfinished.  The DRR invariant
// (every resident campaign gets budget >= 1 every epoch, and sessions
// always consume >= 1 unit when budgeted) keeps it at exactly zero; CI
// asserts that on every serve-lane run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apr/campaign_session.hpp"
#include "serve/control.hpp"
#include "serve/oracle_hub.hpp"
#include "serve/scheduler.hpp"

namespace mwr::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace mwr::obs

namespace mwr::parallel {
class SuperstepEngine;
}  // namespace mwr::parallel

namespace mwr::serve {

class CheckpointWriter;

struct ServerConfig {
  std::size_t max_resident = 256;   ///< admission-control cap.
  std::size_t quantum = 8;          ///< DRR work units per campaign-epoch.
  std::size_t workers = 0;          ///< engine workers; 0 = hardware.
  std::string checkpoint_dir;       ///< empty = durability disabled.
  std::size_t checkpoint_every = 0; ///< epochs between auto-checkpoints;
                                    ///< 0 = only explicit checkpoint_all().
};

class CampaignServer {
 public:
  /// Probe-latency samples retained for percentile telemetry: a rolling
  /// window, so a long-lived daemon's memory does not grow with epochs.
  static constexpr std::size_t kLatencyWindowCapacity = 1024;

  explicit CampaignServer(ServerConfig config);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Admission control: returns the campaign id, or nullopt when the
  /// resident cap is reached.  Throws std::invalid_argument for a
  /// malformed request (unknown scenario / MWU kind, degenerate repair
  /// knobs — see plan_campaign).
  std::optional<std::uint64_t> submit(const SubmitRequest& request);

  /// Runs one DRR epoch over the resident campaigns.  Returns false when
  /// there was nothing to run.
  bool run_epoch();

  /// Steps epochs until every resident campaign has finished.
  void drain();

  [[nodiscard]] std::size_t resident() const noexcept;
  [[nodiscard]] std::size_t completed() const noexcept;
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_run_; }
  /// Campaign-epochs that made zero progress (the starvation monitor;
  /// invariantly 0 under DRR).
  [[nodiscard]] std::uint64_t starved_epochs() const noexcept {
    return starved_epochs_count_;
  }
  /// Campaigns retired because their session threw mid-epoch (each one
  /// fails alone; the daemon and every other tenant keep running).
  [[nodiscard]] std::uint64_t failed_campaigns() const noexcept {
    return failed_count_;
  }

  [[nodiscard]] StatusReply status(std::uint64_t campaign_id) const;
  /// Result JSON for a finished campaign (ready=false while running or
  /// for unknown ids).
  [[nodiscard]] ResultReply result(std::uint64_t campaign_id) const;

  /// Wave wall seconds divided by wave probes, one sample per
  /// campaign-epoch that issued probes — the distribution behind the
  /// bench's p50/p99 probe latency.  Returns the rolling window's
  /// contents (at most kLatencyWindowCapacity samples; order is not
  /// meaningful — consumers compute percentiles).
  [[nodiscard]] std::vector<double> probe_latency_seconds() const;

  /// Wall seconds the epoch/checkpoint critical path spent serializing
  /// snapshots and queueing them (everything checkpointing costs the
  /// control loop; file I/O is checkpoint_writer_seconds()).
  [[nodiscard]] double checkpoint_critical_seconds() const noexcept {
    return checkpoint_critical_seconds_;
  }
  /// Wall seconds the async writer thread spent in file operations
  /// (tmp write + fsync + rename), off the critical path.
  [[nodiscard]] double checkpoint_writer_seconds() const;

  /// Serializes every dirty resident campaign, queues the writes, and
  /// flushes the writer (the durability barrier an explicit checkpoint
  /// promises).  reply.campaigns counts every resident campaign whose
  /// durable state is current after the call — clean campaigns are
  /// covered by their existing file and cost no bytes; reply.bytes is
  /// what this call actually serialized.  Throws std::logic_error when
  /// no checkpoint_dir is configured, std::runtime_error when a write
  /// failed.
  CheckpointReply checkpoint_all();
  /// Loads every "*.ckpt" in checkpoint_dir and resumes the campaigns;
  /// returns how many were restored.  Stray "*.ckpt.tmp" files (a crash
  /// mid-flush) are ignored.
  std::size_t restore_from_dir();

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const OracleHub& hub() const noexcept { return hub_; }

 private:
  struct Campaign {
    std::uint64_t id = 0;
    SubmitRequest request;
    std::unique_ptr<apr::CampaignSession> session;
    /// Final outcome, kept so the result document can be rendered on
    /// first fetch instead of at retirement (most campaigns in a bulk
    /// load are never fetched; rendering them all on the epoch path was
    /// measurable).  Null for failed campaigns, which render their
    /// error document eagerly.
    std::unique_ptr<apr::CampaignOutcome> outcome;
    /// Result document; lazily rendered from `outcome` (single-threaded
    /// server, so the mutable cache is unsynchronized by design).
    mutable std::string result_json;
    std::string error;              ///< non-empty = campaign failed.
    std::uint64_t final_hash = 0;
    std::uint64_t online_cycles = 0;
    std::uint64_t online_probes = 0;
    std::uint64_t repaired = 0;   ///< filled at completion.
    std::uint64_t bugs_done = 0;  ///< filled at completion.
    /// online_cycles value at the last checkpoint of this campaign; the
    /// dirty predicate is checkpointed_units != online_cycles (units
    /// strictly increase every granted epoch while unfinished).  ~0 =
    /// never checkpointed.
    std::uint64_t checkpointed_units = ~0ull;
  };

  void finish_campaign(Campaign&& campaign);
  /// Retires a campaign whose session threw (campaign.error holds the
  /// message): the result frame becomes an mwr-campaign-error-v1
  /// document and the scheduler slot is released, leaving every other
  /// tenant untouched.
  void fail_campaign(Campaign&& campaign);
  void fill_status(const Campaign& campaign, StatusReply& reply) const;
  [[nodiscard]] std::string checkpoint_path(std::uint64_t campaign_id) const;
  /// The resident engine (created on first use; persistent worker pool).
  parallel::SuperstepEngine& engine();
  /// The async writer (created on first use; also makes checkpoint_dir).
  CheckpointWriter& writer();
  /// Serializes dirty campaigns and queues their writes (no flush).
  /// Returns the bytes serialized; accumulates the critical-path timer.
  std::uint64_t enqueue_dirty_checkpoints();
  void record_probe_latency(double seconds);

  ServerConfig config_;
  OracleHub hub_;
  DeficitScheduler scheduler_;
  std::map<std::uint64_t, Campaign> running_;
  std::map<std::uint64_t, Campaign> finished_;
  std::uint64_t next_id_ = 1;
  std::uint64_t epochs_run_ = 0;
  std::uint64_t starved_epochs_count_ = 0;
  std::uint64_t failed_count_ = 0;
  std::unique_ptr<parallel::SuperstepEngine> engine_;
  std::unique_ptr<CheckpointWriter> writer_;
  double checkpoint_critical_seconds_ = 0.0;
  // Rolling latency window (ring buffer; latency_next_ wraps).
  std::vector<double> latency_window_;
  std::size_t latency_next_ = 0;

  obs::Counter* submitted_;
  obs::Counter* rejected_;
  obs::Counter* completed_;
  obs::Counter* epochs_counter_;
  obs::Counter* starved_counter_;
  obs::Counter* failed_counter_;
  obs::Counter* checkpoint_bytes_;
  obs::Gauge* resident_gauge_;
  obs::Histogram* probe_seconds_;
};

}  // namespace mwr::serve
