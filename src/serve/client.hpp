// ServeClient: the typed request/reply view of a daemon connection.
//
// One method per control-plane verb, each a strict roundtrip (send one
// request frame, block for the matching reply frame).  Used by the
// load-generator bench (bench/bench_serve.cpp --connect), the CI serve
// lane, and anything else that wants to drive mwr_served without
// hand-rolling frames.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "serve/control.hpp"

namespace mwr::serve {

class ControlConn;

class ServeClient {
 public:
  /// Connects to the daemon at `socket_path`, retrying while it boots.
  /// Throws std::runtime_error on timeout.
  explicit ServeClient(const std::string& socket_path,
                       int connect_timeout_ms = 5000);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  [[nodiscard]] SubmitReply submit(const SubmitRequest& request);
  [[nodiscard]] StatusReply status(std::uint64_t campaign_id);
  [[nodiscard]] ResultReply result(std::uint64_t campaign_id);
  [[nodiscard]] CheckpointReply checkpoint();
  /// Asks the daemon to drain and exit; returns the campaigns that were
  /// still resident when it accepted.
  std::uint64_t shutdown();

 private:
  [[nodiscard]] parallel::transport::WireFrame roundtrip(
      const parallel::transport::WireFrame& request,
      parallel::transport::FrameKind expected);

  std::unique_ptr<ControlConn> conn_;
};

}  // namespace mwr::serve
