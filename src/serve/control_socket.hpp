// The campaign server's Unix-domain control socket.
//
// This header is plain C++ (fds as ints, no <sys/...> types); every raw
// IPC syscall — socket/bind/listen/accept/connect/send/recv/poll — lives
// in control_socket.cpp, the single file the raw-ipc lint rule
// whitelists for src/serve.  Everything above this layer (serve/control,
// serve/server, tools/mwr_served) speaks WireFrames only.
//
// Framing: the stream carries back-to-back MWRW frames.  ControlConn
// accumulates bytes per connection and yields whole decoded frames;
// partial frames stay staged until more bytes arrive (decode_frame's
// zero-consumed contract).  Writes are blocking write-all with
// MSG_NOSIGNAL so a vanished peer surfaces as an error, not SIGPIPE.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "parallel/transport/wire.hpp"

namespace mwr::serve {

/// One accepted (or connected) control-plane stream.
class ControlConn {
 public:
  /// Takes ownership of `fd`.
  explicit ControlConn(int fd);
  ~ControlConn();

  ControlConn(const ControlConn&) = delete;
  ControlConn& operator=(const ControlConn&) = delete;

  /// Blocking write-all of one encoded frame.  Returns false when the
  /// peer is gone (EPIPE/ECONNRESET); throws on other errors.
  bool send_frame(const parallel::transport::WireFrame& frame);

  /// Blocks until one whole frame arrives; nullopt on orderly EOF.
  /// Throws std::runtime_error on a mid-frame EOF or a socket error.
  std::optional<parallel::transport::WireFrame> recv_frame();

  /// Non-blocking drain: appends every frame currently decodable from
  /// the kernel buffer to `out`.  Returns false when the peer closed —
  /// including a close mid-frame, whose truncated tail can never
  /// complete; frames appended in the same call are still valid and
  /// should be serviced before dropping the connection.
  bool pump(std::vector<parallel::transport::WireFrame>& out);

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  bool fill_buffer(bool blocking);  ///< false on EOF.

  int fd_;
  std::vector<std::uint8_t> staged_;
  std::size_t consumed_ = 0;
};

/// The daemon's listening socket.  Binding unlinks any stale socket file
/// at `path` first; the destructor unlinks it again.
class ControlListener {
 public:
  explicit ControlListener(const std::string& path);
  ~ControlListener();

  ControlListener(const ControlListener&) = delete;
  ControlListener& operator=(const ControlListener&) = delete;

  /// Accepts one pending connection, or nullptr when none is queued.
  std::unique_ptr<ControlConn> accept_one();

  /// Sleeps until the listener or one of `conns` is readable, or
  /// `timeout_ms` elapses.  Returns true when anything is readable.
  bool wait_readable(const std::vector<ControlConn*>& conns,
                     int timeout_ms) const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  int fd_;
  std::string path_;
};

/// Client side: connects to a daemon's socket.  Retries for up to
/// `timeout_ms` while the socket file does not exist yet (daemon still
/// booting); throws std::runtime_error on timeout or refusal.
std::unique_ptr<ControlConn> connect_control(const std::string& path,
                                             int timeout_ms = 5000);

}  // namespace mwr::serve
