#include "apr/oracle_cache.hpp"

#include <algorithm>

namespace mwr::apr {

std::optional<MutationSemantics> OracleCache::lookup(std::uint64_t key) const {
  Shard& shard = shard_for(key);
  const util::MutexLock lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

void OracleCache::store(std::uint64_t key, MutationSemantics value) {
  Shard& shard = shard_for(key);
  const util::MutexLock lock(shard.mutex);
  shard.map.emplace(key, value);
}

void OracleCache::prime(std::vector<std::uint64_t> sorted_keys,
                        std::vector<MutationSemantics> semantics) {
  if (primed() && sorted_keys == pool_keys_) return;
  primed_.store(false, std::memory_order_release);
  // A different pool invalidates any installed wave table with it.
  wave_ready_.store(false, std::memory_order_release);
  wave_ = WaveTable{};
  pool_keys_ = std::move(sorted_keys);
  pool_semantics_ = std::move(semantics);
  // Key -> pool-index table at load factor <= 1/4: one or two probes per
  // lookup in practice.
  std::size_t table_size = 16;
  while (table_size < pool_keys_.size() * 4) table_size <<= 1;
  table_mask_ = table_size - 1;
  index_table_.assign(table_size, IndexEntry{});
  for (std::size_t i = 0; i < pool_keys_.size(); ++i) {
    std::size_t slot = mix_key(pool_keys_[i]) & table_mask_;
    while (index_table_[slot].index_plus_one != 0) {
      slot = (slot + 1) & table_mask_;
    }
    index_table_[slot] =
        IndexEntry{pool_keys_[i], static_cast<std::uint32_t>(i + 1)};
  }
  pair_dimension_ = std::min(pool_keys_.size(), kMaxPairDimension);
  const std::size_t slots =
      pair_dimension_ * (pair_dimension_ > 0 ? pair_dimension_ - 1 : 0) / 2;
  // vector<atomic> cannot be resized through assignment; construct fresh
  // (zero-initialized == kPairUnknown).
  pairs_ = std::vector<std::atomic<std::uint8_t>>(slots);
  primed_.store(true, std::memory_order_release);
}

void OracleCache::install_wave(WaveTable table) {
  wave_ = std::move(table);
  wave_ready_.store(true, std::memory_order_release);
}

bool OracleCache::primed_with(std::span<const std::uint64_t> keys) const {
  return primed() && keys.size() == pool_keys_.size() &&
         std::equal(keys.begin(), keys.end(), pool_keys_.begin());
}

}  // namespace mwr::apr
