// Step-wise, checkpointable execution of a multi-bug repair campaign —
// run_campaign (§III-C) unrolled into a resumable state machine.
//
// A campaign server multiplexing thousands of tenants cannot afford
// run_campaign's shape (one blocking call per campaign): it needs to
// advance each campaign a bounded number of update cycles per scheduling
// quantum, snapshot a campaign between cycles, and resume it after a
// daemon restart bit-identically.  CampaignSession is that shape.  The
// phases mirror the historical loop exactly:
//
//   kPrecompute  — phase 1, once: build the safe-mutation pool.
//   kBugStart    — per bug: grow the suite, revalidate the working pool
//                  (incremental maintenance), construct the online search.
//   kOnline      — one MWU update cycle per step (RepairSession).
//   kFinishBug   — close the bug's ledger; next bug or kDone.
//
// Every stochastic draw happens in the same order as run_campaign, so a
// session stepped to completion produces the same CampaignOutcome —
// run_campaign is now implemented as exactly that loop.
//
// Sharing seam: by default a session builds private programs, oracles,
// and pools.  A ScenarioServices implementation (serve/oracle_hub.hpp)
// lets co-resident campaigns on the same scenario share them; suite-run
// accounting is analytic (precompute = pool attempts, maintenance = pool
// size per revalidation — both exact identities of the implementations),
// so a shared oracle's global counter never pollutes a tenant's ledger.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apr/campaign.hpp"
#include "apr/repair_session.hpp"
#include "datasets/scenario.hpp"

namespace mwr::obs {
class ScopedMetrics;
}  // namespace mwr::obs

namespace mwr::apr {

/// Provider of the heavyweight per-scenario resources a campaign needs.
/// Implementations may dedup across campaigns (the server's oracle hub);
/// the default used when none is supplied builds private instances,
/// reproducing single-tenant run_campaign exactly.
class ScenarioServices {
 public:
  /// A program + oracle pair; `program` owns the model `oracle` points
  /// into, so holders keep both alive together.  When `shared` is true
  /// the oracle is visible to other tenants: the lease owner has already
  /// primed its cache, and the tenant must not re-prime it (prime_cache
  /// racing evaluate() is undefined).
  struct OracleLease {
    std::shared_ptr<const ProgramModel> program;
    std::shared_ptr<const TestOracle> oracle;
    bool shared = false;
  };
  /// A base (phase-1) pool plus the suite runs its construction cost.
  struct PoolLease {
    std::shared_ptr<const MutationPool> pool;
    std::uint64_t precompute_runs = 0;
  };

  virtual ~ScenarioServices() = default;

  /// Program + oracle for `spec` (the full spec, bug_id and grown test
  /// count included).
  virtual OracleLease oracle_for(const datasets::ScenarioSpec& spec) = 0;

  /// The precomputed base pool for (spec, config).  Called once per
  /// campaign with the campaign's base spec.
  virtual PoolLease base_pool(const datasets::ScenarioSpec& spec,
                              const PoolConfig& config) = 0;
};

/// Everything needed to rebuild a mid-campaign session, as plain numbers
/// and mutation triples (serve/checkpoint.hpp encodes it into wire
/// frames).  Snapshots are taken between update cycles only.
struct CampaignSnapshot {
  /// Guards against resuming with a different scenario or configuration.
  std::uint64_t fingerprint = 0;
  std::uint32_t phase = 0;  ///< CampaignSession::Phase under the hood.
  std::uint64_t bug_index = 0;
  std::uint64_t repaired_so_far = 0;
  std::uint64_t current_tests = 0;
  std::uint64_t precompute_runs = 0;
  std::uint64_t initial_pool_size = 0;
  std::uint64_t trajectory_hash = 0;
  std::vector<BugOutcome> finished_bugs;
  BugOutcome current_bug;            ///< ledger-so-far (valid in kOnline).
  std::vector<Mutation> working_pool;
  bool has_repair_state = false;
  RepairSession::State repair;       ///< valid when has_repair_state.
};

class CampaignSession {
 public:
  /// `services` may be null (private resources) and must otherwise
  /// outlive the session.
  CampaignSession(datasets::ScenarioSpec base, CampaignConfig config,
                  ScenarioServices* services = nullptr);
  ~CampaignSession();

  CampaignSession(const CampaignSession&) = delete;
  CampaignSession& operator=(const CampaignSession&) = delete;

  /// Advances the campaign by at most `budget` units of work and returns
  /// the units consumed (>= 1 while not done; 0 once done).  One unit is
  /// one online MWU update cycle or one setup phase (precompute / bug
  /// start); the return value is the deficit-round-robin charge.
  /// `workers` optionally fans out suite runs inside a unit.
  std::size_t step(std::size_t budget,
                   parallel::ThreadPool* workers = nullptr);

  // --- staged execution (the serve probe wave, DESIGN.md §14) ---
  //
  // The pipeline twin of step(): the server stages one unit per campaign,
  // batches every staged probe into one deterministic parallel sweep, then
  // completes the units.  Unit-for-unit identical to step()'s loop — setup
  // units run inline during staging; an online unit splits around the
  // evaluation sweep.

  /// Stages the next work unit.  Setup units (precompute, bug start,
  /// finalize) execute inline and complete immediately; an online unit
  /// begins one MWU cycle and leaves its probes staged (`staged_probes`)
  /// for evaluate_staged() + complete_unit().  Returns the DRR charge:
  /// 1 per unit, 0 once the campaign is done.
  std::size_t stage_unit(std::size_t& staged_probes);
  /// True while an online cycle is staged and awaiting complete_unit().
  [[nodiscard]] bool unit_staged() const noexcept { return unit_staged_; }
  /// Evaluates staged probe `j` — safe to run concurrently for distinct j
  /// and interleaved with other campaigns' staged probes.
  void evaluate_staged(std::size_t j);
  /// Completes the staged online unit: rewards, MWU update, and — when the
  /// cycle ends the bug — ledger close / campaign finalization, exactly as
  /// step() would have.  `elapsed_seconds` attributes wall time to the
  /// bug's telemetry (never trajectory-relevant).
  void complete_unit(double elapsed_seconds = 0.0);

  [[nodiscard]] bool done() const noexcept { return phase_ == Phase::kDone; }
  /// Valid once done().
  [[nodiscard]] const CampaignOutcome& outcome() const noexcept {
    return outcome_;
  }
  /// Suite-run probes issued by the most recent step() call.
  [[nodiscard]] std::size_t probes_last_step() const noexcept {
    return probes_last_step_;
  }
  /// Bugs whose ledgers have closed so far (== bugs attempted when done).
  [[nodiscard]] std::size_t bugs_completed() const noexcept {
    return outcome_.bugs.size();
  }
  /// Of those, how many were repaired.
  [[nodiscard]] std::size_t bugs_repaired() const noexcept {
    return repaired_so_far_;
  }
  /// Campaign-level fingerprint: per-bug search trajectories plus the
  /// pool-maintenance ledger, folded in execution order.  Equal hashes
  /// mean bit-identical campaigns (the checkpoint/resume pin).
  [[nodiscard]] std::uint64_t trajectory_hash() const noexcept;

  /// Identity fold of (base spec, config); snapshots carry it so a resume
  /// against the wrong campaign definition fails loudly.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Snapshot between steps.  Valid in any phase; resuming a kDone
  /// snapshot yields a finished session.
  [[nodiscard]] CampaignSnapshot snapshot() const;
  /// Rebuilds a session from a snapshot taken for the same (base,
  /// config).  Throws std::invalid_argument on fingerprint mismatch.
  static std::unique_ptr<CampaignSession> resume(
      const CampaignSnapshot& snap, datasets::ScenarioSpec base,
      CampaignConfig config, ScenarioServices* services = nullptr);

  /// Extra per-campaign metric scope (e.g. "campaign/7"): when set, the
  /// session mirrors its cycle/probe/bug counters under that prefix in
  /// the global registry, giving the server per-tenant views.
  void set_metric_scope(const std::string& prefix);

 private:
  enum class Phase : std::uint32_t {
    kPrecompute = 0,
    kBugStart = 1,
    kOnline = 2,
    kFinishBug = 3,
    kDone = 4,
  };

  void do_precompute();
  void start_bug(parallel::ThreadPool* workers);
  void finish_bug();
  void finalize();
  void open_bug_oracle();  // (re)acquire program/oracle for bug_index_.
  [[nodiscard]] datasets::ScenarioSpec bug_spec() const;
  [[nodiscard]] MwRepairConfig bug_repair_config() const;

  datasets::ScenarioSpec base_;
  CampaignConfig config_;
  ScenarioServices* services_;  // null => private resources.
  std::uint64_t fingerprint_;

  Phase phase_ = Phase::kPrecompute;
  bool unit_staged_ = false;
  std::size_t bug_index_ = 0;
  std::size_t repaired_so_far_ = 0;
  std::size_t current_tests_;  // suite size the working pool is valid for.
  std::uint64_t trajectory_fold_;
  std::size_t probes_last_step_ = 0;

  MutationPool working_pool_;
  ScenarioServices::OracleLease bug_lease_;
  std::unique_ptr<RepairSession> repair_;
  BugOutcome current_bug_;
  double bug_seconds_ = 0.0;  // accumulated across steps for this bug.

  CampaignOutcome outcome_;

  // Global telemetry (same names as run_campaign) + optional tenant scope.
  obs::Counter* bugs_attempted_;
  obs::Counter* bugs_repaired_;
  obs::Counter* maintenance_runs_;
  obs::Histogram* bug_seconds_hist_;
  std::unique_ptr<obs::ScopedMetrics> scope_;
  // Per-cycle scoped counters, resolved once at set_metric_scope: the
  // string-keyed registry lookup is far too slow for the online loop.
  obs::Counter* scoped_cycles_ = nullptr;
  obs::Counter* scoped_probes_ = nullptr;
};

}  // namespace mwr::apr
