#include "apr/campaign.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "apr/campaign_session.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::apr {

std::size_t CampaignOutcome::repaired() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(bugs.begin(), bugs.end(),
                    [](const BugOutcome& b) { return b.repaired; }));
}

double CampaignOutcome::mean_bug_cost() const noexcept {
  if (bugs.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& bug : bugs) total += bug.suite_runs();
  return static_cast<double>(total) / static_cast<double>(bugs.size());
}

double CampaignOutcome::amortized_bug_cost() const noexcept {
  if (bugs.empty()) return 0.0;
  return mean_bug_cost() + static_cast<double>(precompute_runs) /
                               static_cast<double>(bugs.size());
}

CampaignOutcome run_campaign(const datasets::ScenarioSpec& base,
                             const CampaignConfig& config) {
  // The campaign is a CampaignSession stepped to completion: the session
  // performs every phase (precompute, per-bug revalidation, online MWU
  // cycles) in the same order — and with the same telemetry — as the
  // historical monolithic loop, so this wrapper is bit-identical to it.
  // Servers drive the same session a few cycles at a time instead
  // (serve/server.hpp).
  CampaignSession session(base, config);
  std::optional<parallel::ThreadPool> workers;
  if (config.repair.eval_threads > 1) workers.emplace(config.repair.eval_threads);
  while (!session.done()) {
    session.step(std::numeric_limits<std::size_t>::max(),
                 workers ? &*workers : nullptr);
  }
  return session.outcome();
}

}  // namespace mwr::apr
