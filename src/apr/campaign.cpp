#include "apr/campaign.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace mwr::apr {

std::size_t CampaignOutcome::repaired() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(bugs.begin(), bugs.end(),
                    [](const BugOutcome& b) { return b.repaired; }));
}

double CampaignOutcome::mean_bug_cost() const noexcept {
  if (bugs.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& bug : bugs) total += bug.suite_runs();
  return static_cast<double>(total) / static_cast<double>(bugs.size());
}

double CampaignOutcome::amortized_bug_cost() const noexcept {
  if (bugs.empty()) return 0.0;
  return mean_bug_cost() + static_cast<double>(precompute_runs) /
                               static_cast<double>(bugs.size());
}

CampaignOutcome run_campaign(const datasets::ScenarioSpec& base,
                             const CampaignConfig& config) {
  // End-of-run telemetry (exported by --metrics-out in the CLI): per-bug
  // outcomes and wall time, plus the §III-C maintenance cost the
  // amortization argument is about.
  auto& metrics = obs::MetricsRegistry::global();
  obs::Counter& bugs_attempted = metrics.counter("campaign.bugs_attempted");
  obs::Counter& bugs_repaired = metrics.counter("campaign.bugs_repaired");
  obs::Counter& maintenance_runs =
      metrics.counter("campaign.maintenance_runs");
  obs::Histogram& bug_seconds = metrics.histogram("campaign.bug_seconds");

  CampaignOutcome outcome;

  // Phase 1, once: the pool is a property of the program + current suite.
  datasets::ScenarioSpec current = base;
  {
    const ProgramModel program(current);
    const TestOracle oracle(program);
    auto pool = MutationPool::precompute(oracle, config.pool);
    outcome.precompute_runs = oracle.suite_runs();
    outcome.initial_pool_size = pool.size();

    std::size_t repaired_so_far = 0;
    MutationPool working_pool = std::move(pool);
    for (std::size_t bug = 0; bug < config.bugs; ++bug) {
      const obs::ScopedTimer bug_timer(bug_seconds);
      bugs_attempted.add(1);
      BugOutcome record;
      record.bug_id = bug;

      // The suite has grown by one trigger test per repaired bug.
      datasets::ScenarioSpec bug_spec = base;
      bug_spec.bug_id = bug;
      if (config.grow_suite) {
        bug_spec.tests = std::min<std::size_t>(64, base.tests + repaired_so_far);
      }
      const ProgramModel bug_program(bug_spec);
      const TestOracle bug_oracle(bug_program);

      // Incremental maintenance: revalidate the pool against the grown
      // suite (a no-op when nothing changed, a partial re-run otherwise).
      const std::uint64_t runs_before = bug_oracle.suite_runs();
      if (config.grow_suite && bug_spec.tests != current.tests) {
        record.pool_dropped =
            working_pool.revalidate(bug_oracle, config.pool.threads);
        current.tests = bug_spec.tests;
      }
      record.maintenance_runs = bug_oracle.suite_runs() - runs_before;
      record.pool_size = working_pool.size();

      if (!working_pool.empty()) {
        MwRepairConfig repair_config = config.repair;
        repair_config.max_count =
            std::min(repair_config.max_count, working_pool.size());
        repair_config.seed = config.repair.seed ^ (bug * 0x9e3779b9ULL);
        const MwRepair repair(repair_config);
        const auto result = repair.run(bug_oracle, working_pool);
        record.repaired = result.repaired;
        record.patch_edits = result.patch.size();
        record.online_probes = result.probes;
        record.online_cycles = result.iterations;
        if (result.repaired) ++repaired_so_far;
      }
      if (record.repaired) bugs_repaired.add(1);
      maintenance_runs.add(record.maintenance_runs);
      outcome.bugs.push_back(record);
    }
    metrics.gauge("campaign.converged")
        .set(repaired_so_far == config.bugs ? 1.0 : 0.0);
  }
  return outcome;
}

}  // namespace mwr::apr
