// MWRepair — the paper's algorithm (Fig 6): online statistical estimation
// of how many precomputed safe mutations to combine per probe.
//
// The bandit's arms are *mutation counts*, not individual mutations; that
// encoding is what keeps the option set small enough for MWU to converge
// while the underlying edit space stays super-exponential (DESIGN.md
// decision D1).  Each update cycle, the chosen MWU realization names one
// count per agent; each agent draws that many pooled mutations uniformly,
// applies them, and runs the suite once.  A probe that passes everything is
// a repair and terminates the search immediately (Fig 6 line 8).
//
// Reward (DESIGN.md decision D3): Fig 6 literally rewards fitness
// non-decrease, but that signal is monotone decreasing in the combination
// size, so taken alone it drives every MWU variant to the smallest arm.
// The paper's stated intent is to reward the *density of safe mutations*
// the probe validates (§III-B: "we use the density of safe mutations,
// which the search does sample, as a proxy").  kSafeDensityProxy therefore
// scales acceptance by the combination size so the expected reward of arm
// x is proportional to x * P(pass | x) — the per-probe count of validated
// safe mutations — whose mode tracks the repair-density optimum of Fig 4b.
// kFitnessNonDecrease implements the literal rule and is kept for the
// ablation bench.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "core/mwu.hpp"

namespace mwr::apr {

enum class RewardMode {
  kSafeDensityProxy,     ///< E[reward | arm x] proportional to x * P(pass | x).
  kFitnessNonDecrease,   ///< literal Fig 6: reward = [f(P') >= f(P)].
};

struct MwRepairConfig {
  core::MwuKind mwu = core::MwuKind::kStandard;
  std::size_t arms = 64;          ///< bandit arms (distinct counts).
  std::size_t max_count = 256;    ///< largest combination size considered.
  std::size_t agents = 16;        ///< parallel probes per cycle (Standard).
  std::size_t max_iterations = 500;
  RewardMode reward = RewardMode::kSafeDensityProxy;
  double learning_rate = 0.10;
  double exploration = 0.05;
  std::uint64_t seed = 7;
  /// Worker threads for probe evaluation within a cycle.  Patch sampling
  /// and reward draws stay sequential, so results are bit-identical for
  /// any thread count; only the (expensive, independent) suite runs fan
  /// out.  1 = evaluate inline.
  std::size_t eval_threads = 1;
};

struct RepairOutcome {
  bool repaired = false;
  Patch patch;                     ///< the repairing patch, if any.
  std::size_t iterations = 0;      ///< completed MWU update cycles.
  std::uint64_t probes = 0;        ///< online-phase suite runs.
  std::size_t preferred_count = 0; ///< combination size MWU favored at exit.
  std::vector<double> arm_probabilities;
};

class MwRepair {
 public:
  explicit MwRepair(MwRepairConfig config);

  /// Phase 2: runs the online search against a precomputed pool.
  /// The pool must be non-empty; counts are clamped to the pool size.
  [[nodiscard]] RepairOutcome run(const TestOracle& oracle,
                                  const MutationPool& pool) const;

  /// The mutation count arm `arm` stands for (linear grid over
  /// [1, max_count]).
  [[nodiscard]] std::size_t count_for_arm(std::size_t arm) const;

  [[nodiscard]] const MwRepairConfig& config() const noexcept {
    return config_;
  }

 private:
  MwRepairConfig config_;
};

/// End-to-end convenience: precompute a pool for the scenario, then run the
/// online phase.  Returns the outcome plus the pool statistics.
struct EndToEndOutcome {
  RepairOutcome repair;
  std::uint64_t precompute_attempts = 0;
  std::size_t pool_size = 0;
  std::uint64_t total_suite_runs = 0;   ///< precompute + online probes.
};

[[nodiscard]] EndToEndOutcome repair_scenario(
    const datasets::ScenarioSpec& spec, const MwRepairConfig& repair_config,
    const PoolConfig& pool_config);

}  // namespace mwr::apr
