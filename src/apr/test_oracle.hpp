// Simulated test-suite execution: the deterministic semantics of a bug
// scenario.
//
// The model (calibrated to the paper's published regularities, §III-B):
//
//   safety        — a mutation breaks each required test independently with
//                   a per-test rate b calibrated so that a single mutation
//                   passes the whole suite with probability safe_rate
//                   ((1-b)^T = safe_rate; ~55% for whole-statement edits on
//                   the C scenarios — the cross-benchmark figure the paper
//                   cites is ~30%, rising for coarse statement edits).
//                   "Safe" means it breaks none of the current tests.
//                   Breakage is a deterministic function of the mutation
//                   key, the test index, and the scenario seed, so the same
//                   edit always behaves identically — and a grown suite can
//                   expose a previously-safe mutation only through its new
//                   tests, which drives incremental pool maintenance.
//   interference  — every unordered pair of safe mutations interferes with
//                   probability q = spec.interference(), breaking one
//                   hash-chosen test.  This reproduces Fig 4a's decay:
//                   P(pass | x safe mutations) = (1-q)^(x choose 2).
//   repair        — a safe mutation is repair-relevant with probability
//                   repair_rate; the bug-inducing test passes iff the patch
//                   contains at least min_repair_edits relevant mutations.
//                   A *repair* passes the bug test AND the required suite.
//
// Because the semantics are a pure function of (spec, mutation key), the
// oracle memoizes them in an OracleCache (on by default; construct with
// enable_cache = false for the uncached reference path): per-mutation
// masks and relevance are computed once, and after prime_cache() installs
// a mutation pool, phase-2 probes skip all per-mutation re-hashing and
// resolve pair interference through a lock-free bounded cache.  Cache
// traffic is exported as the obs counters oracle.mask_cache_{hits,misses}
// and oracle.pair_cache_{hits,misses}.  Cached and uncached evaluation are
// bit-identical (golden-tested).
//
// Every evaluate() call counts one test-suite run — the unit in which the
// paper measures APR cost (§IV-G) — via a relaxed atomic, so concurrent
// probes from the thread pool can share one oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "apr/mutation.hpp"
#include "apr/oracle_cache.hpp"
#include "apr/program.hpp"
#include "obs/metrics.hpp"

namespace mwr::apr {

/// Outcome of running the suite on a patched program.
struct Evaluation {
  std::uint32_t required_passed = 0;
  std::uint32_t required_total = 0;
  bool bug_test_passed = false;

  /// GenProg-style fitness: passing required tests weighted 1, the
  /// bug-inducing test weighted like a required test.
  [[nodiscard]] std::uint32_t fitness() const noexcept {
    return required_passed + (bug_test_passed ? 1u : 0u);
  }
  /// A repair passes everything.
  [[nodiscard]] bool is_repair() const noexcept {
    return bug_test_passed && required_passed == required_total;
  }

  friend bool operator==(const Evaluation&, const Evaluation&) = default;
};

class TestOracle {
 public:
  /// `enable_cache = false` disables all memoization — the reference path
  /// the golden equivalence tests and the hot-path bench compare against.
  explicit TestOracle(const ProgramModel& program, bool enable_cache = true);

  /// Runs the (simulated) suite on original-program-plus-patch.
  [[nodiscard]] Evaluation evaluate(std::span<const Mutation> patch) const;

  /// Fitness of the unpatched program: passes all required tests, fails the
  /// bug-inducing test.
  [[nodiscard]] std::uint32_t baseline_fitness() const noexcept {
    return required_tests_;
  }

  [[nodiscard]] std::uint32_t required_tests() const noexcept {
    return required_tests_;
  }

  /// Model introspection (deterministic; does not count as a suite run).
  [[nodiscard]] bool is_safe(const Mutation& m) const;
  [[nodiscard]] bool is_repair_relevant(const Mutation& m) const;

  /// Eagerly memoizes the pooled mutations' masks/relevance and installs
  /// the lock-free pooled fast path (flat semantics array + bounded pair
  /// cache).  No-op when the cache is disabled or the same pool is already
  /// primed.  Must not race evaluate(); does not count suite runs.
  void prime_cache(std::span<const Mutation> pool) const;

  /// Builds the eager probe-wave table over `pool` (implies prime_cache):
  /// per-member broken masks flattened for the SIMD gather kernel,
  /// safe / repair-relevant bitsets with the localized-coverage predicate
  /// folded in, and the sparse CSR of interfering safe pairs — every pair
  /// hash the scenario can ever charge a pooled probe, paid once.  Pools
  /// larger than OracleCache::kMaxPairDimension skip the wave (the eager
  /// pair pass would not amortize); evaluate() works identically either
  /// way.  Same no-race contract as prime_cache; no suite runs counted.
  /// Opt-in: only multi-tenant owners (serve's OracleHub) call this —
  /// single-shot runs keep the lazy path and its cache-counter semantics.
  void prime_wave(std::span<const Mutation> pool) const;

  /// True once prime_wave has installed the table for the current pool.
  [[nodiscard]] bool wave_ready() const noexcept {
    return cache_ && cache_->wave_ready();
  }

  /// The wave's primed pool members (valid only while wave_ready()) —
  /// what mappers compare against for full-equality verification.
  [[nodiscard]] std::span<const Mutation> wave_pool() const noexcept {
    return cache_->wave().pool;
  }

  /// Pooled twin of evaluate() for wave-ready oracles: `pool_indices`
  /// names the patch as strictly ascending positions in the primed pool
  /// (the canonical patch in index space — see sample_from_pool_indexed).
  /// Bit-identical to evaluate() over the same mutations, counts one
  /// suite run, and books the same mask/pair cache-hit deltas a fully
  /// warm evaluate() would, so ledgers and telemetry cannot tell the
  /// paths apart.
  [[nodiscard]] Evaluation evaluate_pooled(
      std::span<const std::uint32_t> pool_indices) const;

  /// Pool position of `m` in the primed pool, or OracleCache::npos when
  /// not primed / not pooled.  Key lookup only — callers mapping working
  /// sets must verify full Mutation equality against the pool member (a
  /// swap's key orders its operands; coverage depends on the concrete
  /// target).
  [[nodiscard]] std::size_t pool_index_of(const Mutation& m) const {
    return cache_ ? cache_->pool_index(m.key()) : OracleCache::npos;
  }

  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_ != nullptr;
  }

  /// Total suite runs so far (the cost currency of §IV-G).
  [[nodiscard]] std::uint64_t suite_runs() const noexcept {
    return suite_runs_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ProgramModel& program() const noexcept {
    return *program_;
  }

 private:
  /// The raw (uncached) semantics computations.
  [[nodiscard]] std::uint64_t broken_mask_single(const Mutation& m) const;
  [[nodiscard]] MutationSemantics compute_semantics(const Mutation& m) const;
  /// Cached when possible; counts one mask-cache hit or miss.
  [[nodiscard]] MutationSemantics semantics_for(const Mutation& m) const;
  [[nodiscard]] std::uint64_t pair_interference_mask(std::uint64_t lo,
                                                     std::uint64_t hi) const;

  const ProgramModel* program_;
  std::uint32_t required_tests_;
  double interference_;
  double per_test_break_rate_ = 0.0;
  // The relevance-hash threshold, hoisted out of is_repair_relevant: the
  // plain repair_rate, or the region-rescaled rate when relevance is
  // localized (constant per scenario either way, so the hash check is a
  // pure function of the mutation key and therefore cacheable).
  double relevance_rate_ = 0.0;
  mutable std::atomic<std::uint64_t> suite_runs_{0};

  // Memoization (null when disabled).  The cache only ever stores pure
  // functions of the spec, so mutating it from const evaluate() preserves
  // logical constness.
  mutable std::unique_ptr<OracleCache> cache_;
  obs::Counter* mask_hits_ = nullptr;
  obs::Counter* mask_misses_ = nullptr;
  obs::Counter* pair_hits_ = nullptr;
  obs::Counter* pair_misses_ = nullptr;
};

}  // namespace mwr::apr
