// Simulated test-suite execution: the deterministic semantics of a bug
// scenario.
//
// The model (calibrated to the paper's published regularities, §III-B):
//
//   safety        — a mutation breaks each required test independently with
//                   a per-test rate b calibrated so that a single mutation
//                   passes the whole suite with probability safe_rate
//                   ((1-b)^T = safe_rate; ~55% for whole-statement edits on
//                   the C scenarios — the cross-benchmark figure the paper
//                   cites is ~30%, rising for coarse statement edits).
//                   "Safe" means it breaks none of the current tests.
//                   Breakage is a deterministic function of the mutation
//                   key, the test index, and the scenario seed, so the same
//                   edit always behaves identically — and a grown suite can
//                   expose a previously-safe mutation only through its new
//                   tests, which drives incremental pool maintenance.
//   interference  — every unordered pair of safe mutations interferes with
//                   probability q = spec.interference(), breaking one
//                   hash-chosen test.  This reproduces Fig 4a's decay:
//                   P(pass | x safe mutations) = (1-q)^(x choose 2).
//   repair        — a safe mutation is repair-relevant with probability
//                   repair_rate; the bug-inducing test passes iff the patch
//                   contains at least min_repair_edits relevant mutations.
//                   A *repair* passes the bug test AND the required suite.
//
// Every evaluate() call counts one test-suite run — the unit in which the
// paper measures APR cost (§IV-G) — via a relaxed atomic, so concurrent
// probes from the thread pool can share one oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "apr/mutation.hpp"
#include "apr/program.hpp"

namespace mwr::apr {

/// Outcome of running the suite on a patched program.
struct Evaluation {
  std::uint32_t required_passed = 0;
  std::uint32_t required_total = 0;
  bool bug_test_passed = false;

  /// GenProg-style fitness: passing required tests weighted 1, the
  /// bug-inducing test weighted like a required test.
  [[nodiscard]] std::uint32_t fitness() const noexcept {
    return required_passed + (bug_test_passed ? 1u : 0u);
  }
  /// A repair passes everything.
  [[nodiscard]] bool is_repair() const noexcept {
    return bug_test_passed && required_passed == required_total;
  }
};

class TestOracle {
 public:
  explicit TestOracle(const ProgramModel& program);

  /// Runs the (simulated) suite on original-program-plus-patch.
  [[nodiscard]] Evaluation evaluate(std::span<const Mutation> patch) const;

  /// Fitness of the unpatched program: passes all required tests, fails the
  /// bug-inducing test.
  [[nodiscard]] std::uint32_t baseline_fitness() const noexcept {
    return required_tests_;
  }

  [[nodiscard]] std::uint32_t required_tests() const noexcept {
    return required_tests_;
  }

  /// Model introspection (deterministic; does not count as a suite run).
  [[nodiscard]] bool is_safe(const Mutation& m) const;
  [[nodiscard]] bool is_repair_relevant(const Mutation& m) const;

  /// Total suite runs so far (the cost currency of §IV-G).
  [[nodiscard]] std::uint64_t suite_runs() const noexcept {
    return suite_runs_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ProgramModel& program() const noexcept {
    return *program_;
  }

 private:
  [[nodiscard]] std::uint64_t broken_mask_single(const Mutation& m) const;

  const ProgramModel* program_;
  std::uint32_t required_tests_;
  double interference_;
  double per_test_break_rate_ = 0.0;
  mutable std::atomic<std::uint64_t> suite_runs_{0};
};

}  // namespace mwr::apr
