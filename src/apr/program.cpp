#include "apr/program.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace mwr::apr {

std::uint64_t stable_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) noexcept {
  util::SplitMix64 sm(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                      (b * 0xc2b2ae3d27d4eb4fULL) ^ (c * 0x165667b19e3779f9ULL));
  sm.next();
  return sm.next();
}

double hash_to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

ProgramModel::ProgramModel(datasets::ScenarioSpec spec)
    : spec_(std::move(spec)) {
  if (spec_.statements == 0)
    throw std::invalid_argument("ProgramModel: scenario has no statements");
  if (spec_.coverage <= 0.0 || spec_.coverage > 1.0)
    throw std::invalid_argument("ProgramModel: coverage outside (0, 1]");
  covered_.reserve(
      static_cast<std::size_t>(spec_.coverage * static_cast<double>(spec_.statements)) + 1);
  for (std::size_t s = 0; s < spec_.statements; ++s) {
    if (is_covered(s)) covered_.push_back(static_cast<std::uint32_t>(s));
  }
  if (covered_.empty())
    throw std::invalid_argument("ProgramModel: no covered statements");
}

bool ProgramModel::is_covered(std::size_t statement) const {
  return hash_to_unit(stable_hash(spec_.seed, 0xC0FFEE, statement)) <
         spec_.coverage;
}

}  // namespace mwr::apr
