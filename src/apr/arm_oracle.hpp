// ArmProbeOracle — the APR probe semantics exposed through the generic
// core::CostOracle interface, so the SPMD drivers (including the
// multi-process transport worlds) can run the *repair* search, not just
// synthetic Bernoulli options.
//
// Each option is one MWRepair arm: a combination size from the same
// geometric grid MwRepair::count_for_arm uses.  sample(arm, rng) draws
// that many pooled mutations, runs the (simulated) suite once, and
// returns the safe-density-proxy reward (DESIGN.md decision D3) — the
// exact per-probe semantics of the Fig 6 online phase, minus the
// early-exit on repair (the SPMD drivers converge on arm popularity
// instead).
//
// Multi-process worlds fork after construction; the constructor primes
// the TestOracle's pooled cache so every worker inherits the warmed
// memoization read-only through copy-on-write pages instead of
// re-deriving mutation semantics per process.
#pragma once

#include <cstddef>

#include "apr/mutation_pool.hpp"
#include "apr/mwrepair.hpp"
#include "apr/test_oracle.hpp"
#include "core/mwu.hpp"

namespace mwr::apr {

class ArmProbeOracle final : public core::CostOracle {
 public:
  /// Both referents must outlive the oracle.  Primes `oracle`'s cache with
  /// the pool (one-time cost; no suite runs).  Throws std::invalid_argument
  /// on an empty pool.
  ArmProbeOracle(const TestOracle& oracle, const MutationPool& pool,
                 const MwRepairConfig& config);

  [[nodiscard]] std::size_t num_options() const override {
    return repair_.config().arms;
  }

  /// One probe: sample count_for_arm(option) pooled mutations, evaluate,
  /// reward 1.0 with the safe-density acceptance rule (or the literal
  /// fitness-non-decrease rule when so configured), else 0.0.
  [[nodiscard]] double sample(std::size_t option,
                              util::RngStream& rng) const override;

  /// Combination size the given arm stands for.
  [[nodiscard]] std::size_t count_for_arm(std::size_t arm) const {
    return repair_.count_for_arm(arm);
  }

  /// Suite runs the underlying oracle has paid so far.
  [[nodiscard]] std::uint64_t suite_runs() const noexcept {
    return oracle_->suite_runs();
  }

 private:
  const TestOracle* oracle_;
  const MutationPool* pool_;
  MwRepair repair_;  ///< arm-grid geometry + reward configuration.
};

}  // namespace mwr::apr
