#include "apr/arm_oracle.hpp"

#include <algorithm>
#include <stdexcept>

#include "apr/mutation.hpp"

namespace mwr::apr {

ArmProbeOracle::ArmProbeOracle(const TestOracle& oracle,
                               const MutationPool& pool,
                               const MwRepairConfig& config)
    : oracle_(&oracle), pool_(&pool), repair_(config) {
  if (pool.empty())
    throw std::invalid_argument("ArmProbeOracle: empty mutation pool");
  // Warm the pooled fast path before any fork: workers then share the
  // memoized semantics read-only (copy-on-write) instead of re-hashing.
  oracle.prime_cache(pool.mutations());
}

double ArmProbeOracle::sample(std::size_t option, util::RngStream& rng) const {
  const MwRepairConfig& config = repair_.config();
  if (option >= config.arms)
    throw std::out_of_range("ArmProbeOracle::sample: bad arm");
  const std::size_t count =
      std::min(repair_.count_for_arm(option), pool_->size());
  const Patch patch = sample_from_pool(pool_->mutations(), count, rng);
  const double acceptance = rng.uniform();
  const Evaluation evaluation = oracle_->evaluate(patch);
  const bool fitness_kept =
      evaluation.fitness() >= oracle_->baseline_fitness();
  switch (config.reward) {
    case RewardMode::kFitnessNonDecrease:
      return fitness_kept ? 1.0 : 0.0;
    case RewardMode::kSafeDensityProxy:
      // E[reward | arm x] proportional to x * P(pass | x): accept in
      // proportion to the validated combination size (MwRepair's rule).
      return (fitness_kept &&
              acceptance < static_cast<double>(patch.size()) /
                               static_cast<double>(config.max_count))
                 ? 1.0
                 : 0.0;
  }
  return 0.0;
}

}  // namespace mwr::apr
