// Multi-bug repair campaigns: the amortization workflow of §III-C made
// concrete.
//
// "Most deployed software has an associated regression test suite.  New
// tests may be added over time ... and the safe mutation pool can be
// updated incrementally whenever this occurs.  As defects are repaired,
// the failing test(s) that exposed the defect can be added to the test
// suite, [and] the precomputed pool can be run on the new test(s)."
//
// RepairCampaign runs that loop: one program, a sequence of bugs.  The
// pool is precomputed once; before each bug it is revalidated against the
// suite grown by every previously-repaired bug's trigger test (dropping
// members the new tests expose), and the online MWU phase then reuses it.
// The per-bug cost therefore falls from (precompute + search) for the
// first bug to (small maintenance + search) for every later one — the
// economics that justify phase 1.
#pragma once

#include <cstdint>
#include <vector>

#include "apr/mwrepair.hpp"

namespace mwr::apr {

struct CampaignConfig {
  std::size_t bugs = 5;            ///< defects to repair, in sequence.
  PoolConfig pool;                 ///< phase-1 configuration (run once).
  MwRepairConfig repair;           ///< per-bug online configuration.
  bool grow_suite = true;          ///< add each repaired bug's trigger test.
};

/// Cost ledger for one bug of the campaign.
struct BugOutcome {
  std::size_t bug_id = 0;
  bool repaired = false;
  std::size_t patch_edits = 0;
  std::uint64_t maintenance_runs = 0;  ///< pool revalidation suite runs.
  std::size_t pool_dropped = 0;        ///< members the grown suite exposed.
  std::size_t pool_size = 0;           ///< pool size used for this bug.
  std::uint64_t online_probes = 0;     ///< phase-2 suite runs.
  std::size_t online_cycles = 0;

  /// Total per-bug suite runs (maintenance + search; the one-time
  /// precompute is reported on the campaign).
  [[nodiscard]] std::uint64_t suite_runs() const noexcept {
    return maintenance_runs + online_probes;
  }
};

struct CampaignOutcome {
  std::uint64_t precompute_runs = 0;   ///< one-time phase-1 cost.
  std::size_t initial_pool_size = 0;
  std::vector<BugOutcome> bugs;

  [[nodiscard]] std::size_t repaired() const noexcept;
  /// Mean per-bug suite runs *excluding* the one-time precompute.
  [[nodiscard]] double mean_bug_cost() const noexcept;
  /// Mean per-bug suite runs with the precompute amortized evenly.
  [[nodiscard]] double amortized_bug_cost() const noexcept;
};

/// Runs the campaign on the program described by `base`: bug i uses
/// bug_id = i and a suite grown by one trigger test per previously-repaired
/// bug (when config.grow_suite).  The suite is capped at the oracle's
/// 64-test model limit.
[[nodiscard]] CampaignOutcome run_campaign(const datasets::ScenarioSpec& base,
                                           const CampaignConfig& config);

}  // namespace mwr::apr
