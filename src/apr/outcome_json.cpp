#include "apr/outcome_json.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace mwr::apr {

namespace {
constexpr const char* kSchema = "mwr-campaign-outcome-v1";

obs::JsonValue bug_to_json(const BugOutcome& bug) {
  obs::JsonValue b = obs::JsonValue::object();
  b.set("bug_id", static_cast<double>(bug.bug_id));
  b.set("repaired", bug.repaired);
  b.set("patch_edits", static_cast<double>(bug.patch_edits));
  b.set("maintenance_runs", static_cast<double>(bug.maintenance_runs));
  b.set("pool_dropped", static_cast<double>(bug.pool_dropped));
  b.set("pool_size", static_cast<double>(bug.pool_size));
  b.set("online_probes", static_cast<double>(bug.online_probes));
  b.set("online_cycles", static_cast<double>(bug.online_cycles));
  b.set("suite_runs", static_cast<double>(bug.suite_runs()));
  return b;
}

obs::JsonValue root_for(const CampaignOutcome& outcome, const char* mode) {
  obs::JsonValue root = obs::JsonValue::object();
  root.set("schema", kSchema);
  root.set("mode", mode);
  root.set("precompute_runs", static_cast<double>(outcome.precompute_runs));
  root.set("initial_pool_size",
           static_cast<double>(outcome.initial_pool_size));
  root.set("repaired", static_cast<double>(outcome.repaired()));
  root.set("mean_bug_cost", outcome.mean_bug_cost());
  root.set("amortized_bug_cost", outcome.amortized_bug_cost());
  obs::JsonValue bugs = obs::JsonValue::array();
  for (const BugOutcome& bug : outcome.bugs) bugs.push_back(bug_to_json(bug));
  root.set("bugs", std::move(bugs));
  return root;
}
}  // namespace

obs::JsonValue outcome_to_json(const CampaignOutcome& outcome) {
  return root_for(outcome, "campaign");
}

obs::JsonValue outcome_to_json(const EndToEndOutcome& outcome) {
  // A single-shot run is a one-bug campaign with no maintenance history;
  // mapping it through CampaignOutcome keeps the two modes field-for-field
  // comparable (satellite requirement: one schema for both).
  CampaignOutcome campaign;
  campaign.precompute_runs = outcome.precompute_attempts;
  campaign.initial_pool_size = outcome.pool_size;
  BugOutcome bug;
  bug.bug_id = 0;
  bug.repaired = outcome.repair.repaired;
  bug.patch_edits = outcome.repair.patch.size();
  bug.pool_size = outcome.pool_size;
  bug.online_probes = outcome.repair.probes;
  bug.online_cycles = outcome.repair.iterations;
  campaign.bugs.push_back(std::move(bug));
  return root_for(campaign, "single");
}

void write_outcome_json(const obs::JsonValue& outcome,
                        const std::string& path) {
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("write_outcome_json: cannot open " + path);
  file << outcome.dump(/*indent=*/2) << "\n";
  if (!file)
    throw std::runtime_error("write_outcome_json: write failed: " + path);
}

}  // namespace mwr::apr
