#include "apr/mutation_pool.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::apr {

MutationPool MutationPool::precompute(const TestOracle& oracle,
                                      const PoolConfig& config) {
  // Phase-1 telemetry: candidates tried vs found safe (the yield the
  // §III-C amortization argument depends on) and precompute wall time.
  auto& metrics = obs::MetricsRegistry::global();
  obs::Counter& tried = metrics.counter("pool.candidates_tried");
  obs::Counter& safe_found = metrics.counter("pool.safe_found");
  const obs::ScopedTimer phase_timer(
      metrics.histogram("phase.precompute.seconds"));

  MutationPool pool;
  std::unordered_set<std::uint64_t> seen;
  util::RngStream master(config.seed);
  parallel::ThreadPool workers(config.threads);

  // Validate candidates in parallel rounds sized to overshoot the expected
  // yield slightly, then merge; duplicates are skipped *before* validation
  // so a repeated candidate never costs a second suite run.
  const double expected_yield =
      std::max(0.05, oracle.program().spec().safe_rate);
  while (pool.pool_.size() < config.target_size &&
         pool.attempts_ < config.max_attempts) {
    const std::size_t missing = config.target_size - pool.pool_.size();
    std::size_t round = static_cast<std::size_t>(
                            static_cast<double>(missing) / expected_yield) +
                        config.threads;
    round = std::min(round, config.max_attempts -
                                static_cast<std::size_t>(pool.attempts_));

    // Candidate generation is sequential (cheap, keeps determinism simple);
    // validation — the expensive suite runs — fans out over the pool.
    std::vector<Mutation> candidates;
    candidates.reserve(round);
    while (candidates.size() < round) {
      const Mutation m = random_mutation(oracle.program(), master);
      if (seen.insert(m.key()).second) candidates.push_back(m);
    }
    std::vector<char> safe(candidates.size(), 0);
    workers.parallel_for_index(candidates.size(), [&](std::size_t i) {
      const Mutation& m = candidates[i];
      const Evaluation e = oracle.evaluate({&m, 1});
      safe[i] = (e.required_passed == e.required_total) ? 1 : 0;
    });
    pool.attempts_ += candidates.size();
    tried.add(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (safe[i]) {
        safe_found.add(1);
        if (pool.pool_.size() < config.target_size) {
          pool.pool_.push_back(candidates[i]);
        }
      }
    }
  }
  std::sort(pool.pool_.begin(), pool.pool_.end(),
            [](const Mutation& a, const Mutation& b) {
              return a.key() < b.key();
            });
  // Install the oracle's pooled fast path eagerly: phase-2 probes draw
  // exclusively from this pool, so memoizing its semantics now makes every
  // subsequent probe a cache hit.
  oracle.prime_cache(pool.pool_);
  return pool;
}

MutationPool MutationPool::from_mutations(std::vector<Mutation> mutations) {
  MutationPool pool;
  pool.pool_ = std::move(mutations);
  std::sort(pool.pool_.begin(), pool.pool_.end(),
            [](const Mutation& a, const Mutation& b) {
              return a.key() < b.key();
            });
  pool.pool_.erase(std::unique(pool.pool_.begin(), pool.pool_.end(),
                               [](const Mutation& a, const Mutation& b) {
                                 return a.key() == b.key();
                               }),
                   pool.pool_.end());
  pool.attempts_ = pool.pool_.size();
  return pool;
}

std::size_t MutationPool::revalidate(const TestOracle& oracle,
                                     std::size_t threads) {
  const std::size_t before = pool_.size();
  // Verdicts are independent per member, so fan the suite runs out over
  // the pool and erase serially afterwards — same survivors, same order,
  // as the historical serial erase_if.
  std::vector<char> keep(pool_.size(), 1);
  if (threads > 1 && pool_.size() > 1) {
    parallel::ThreadPool workers(threads);
    workers.parallel_for_index(pool_.size(), [&](std::size_t i) {
      const Evaluation e = oracle.evaluate({&pool_[i], 1});
      keep[i] = (e.required_passed == e.required_total) ? 1 : 0;
    });
  } else {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      const Evaluation e = oracle.evaluate({&pool_[i], 1});
      keep[i] = (e.required_passed == e.required_total) ? 1 : 0;
    }
  }
  std::size_t write = 0;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (keep[i]) pool_[write++] = pool_[i];
  }
  pool_.resize(write);
  const std::size_t dropped = before - pool_.size();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("pool.revalidation_runs").add(before);
  metrics.counter("pool.revalidation_dropped").add(dropped);
  return dropped;
}

}  // namespace mwr::apr
