// Synthetic program model: the substrate MWRepair and the baselines search
// over.
//
// Substitution (DESIGN.md §2): the paper mutates real C/Java programs and
// runs their regression suites.  What every search algorithm actually
// consumes is (a) a universe of statement-level edits restricted to covered
// code and (b) a deterministic mapping from a set of edits to test
// outcomes.  ProgramModel provides (a): statements with a coverage bitmap
// derived from the scenario's coverage fraction; TestOracle (test_oracle.hpp)
// provides (b).
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/scenario.hpp"

namespace mwr::apr {

/// Stable hashing for the scenario's deterministic semantics: the same
/// (seed, parts...) always produces the same 64-bit value, independent of
/// platform.  Used for coverage, safety, interference, and repair relevance.
[[nodiscard]] std::uint64_t stable_hash(std::uint64_t seed, std::uint64_t a,
                                        std::uint64_t b = 0,
                                        std::uint64_t c = 0) noexcept;

/// Maps a stable hash to a uniform double in [0, 1).
[[nodiscard]] double hash_to_unit(std::uint64_t h) noexcept;

/// The mutable program under repair.
class ProgramModel {
 public:
  explicit ProgramModel(datasets::ScenarioSpec spec);

  [[nodiscard]] const datasets::ScenarioSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] std::size_t num_statements() const noexcept {
    return spec_.statements;
  }

  /// Whether the regression suite executes this statement.  Mutations are
  /// restricted to covered statements ("to avoid mutations applied to dead
  /// or untested code", §III).
  [[nodiscard]] bool is_covered(std::size_t statement) const;

  /// All covered statement ids, ascending (materialized once).
  [[nodiscard]] const std::vector<std::uint32_t>& covered_statements()
      const noexcept {
    return covered_;
  }

 private:
  datasets::ScenarioSpec spec_;
  std::vector<std::uint32_t> covered_;
};

}  // namespace mwr::apr
