// Statement-level mutation operators — the same operator family GenProg and
// its successors use (delete / insert / swap of whole statements), so every
// search algorithm in this repository explores the same space (§IV-G: "MWRepair
// uses the same mutation operators as all four of the algorithms mentioned
// above, so the search space it explores is the same").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apr/program.hpp"
#include "util/rng.hpp"

namespace mwr::apr {

enum class MutationKind : std::uint8_t { kDelete = 0, kInsert = 1, kSwap = 2 };

[[nodiscard]] std::string to_string(MutationKind kind);

/// One statement-level edit.  `target` is always a covered statement;
/// `donor` is the copied/swapped statement for insert/swap (ignored for
/// delete, normalized to 0 there so keys are canonical).
struct Mutation {
  MutationKind kind = MutationKind::kDelete;
  std::uint32_t target = 0;
  std::uint32_t donor = 0;

  /// Canonical 64-bit identity used for dedup and for the oracle's
  /// deterministic semantics.  Swap is symmetric, so its operands are
  /// ordered before packing.
  [[nodiscard]] std::uint64_t key() const noexcept;

  friend bool operator==(const Mutation&, const Mutation&) = default;
};

/// A candidate patch is an unordered set of mutations; we keep it as a
/// vector sorted by key, with duplicates removed (applying the same
/// statement edit twice is the identity in this model).
using Patch = std::vector<Mutation>;

/// Sorts by key and removes duplicates, in place.
void canonicalize(Patch& patch);

/// Draws a uniformly random mutation over the covered statements.
[[nodiscard]] Mutation random_mutation(const ProgramModel& program,
                                       util::RngStream& rng);

/// Draws a patch of `size` distinct random mutations.
[[nodiscard]] Patch random_patch(const ProgramModel& program, std::size_t size,
                                 util::RngStream& rng);

/// Draws `size` distinct mutations uniformly from a pool (without
/// replacement; size is clamped to the pool size).
[[nodiscard]] Patch sample_from_pool(std::span<const Mutation> pool,
                                     std::size_t size, util::RngStream& rng);

/// Index-space twin of sample_from_pool for key-sorted, deduplicated pools
/// (the MutationPool invariant): draws the identical without-replacement
/// index sequence from `rng`, then emits the *indices* ascending into
/// `out` (via a selection bitmap — no allocation, no sort; scratch is
/// per-thread).  Because pool order is key order, the indexed result names
/// exactly the canonical patch sample_from_pool would build — same RNG
/// consumption, same patch bytes — without materializing Mutations or
/// paying the per-patch canonicalize sort.  The probe wave's sampling
/// primitive (DESIGN.md §14).
void sample_from_pool_indexed(std::size_t pool_size, std::size_t size,
                              util::RngStream& rng,
                              std::vector<std::uint32_t>& out);

}  // namespace mwr::apr
