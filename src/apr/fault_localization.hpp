// Spectrum-based fault localization: the standard APR front-end that
// GenProg-family tools (including the paper's) use to focus mutations on
// suspicious code.
//
// The model: the bug-inducing test executes a localized region of the
// program (a deterministic fraction of the covered statements); each
// passing test executes its own subset.  Suspiciousness follows the
// Ochiai formula over that spectrum:
//
//   ochiai(s) = failed(s) / sqrt(total_failed * (failed(s) + passed(s)))
//
// so statements executed by the failing test and few passing tests score
// highest.  MutationTargeter turns the scores into a sampling distribution
// for mutation targets, generalizing the paper's uniform-over-covered
// convention (uniform = FL disabled).
//
// When a scenario sets `relevance_localized`, repair-relevant mutations
// exist only inside the failing test's region — the realistic coupling
// that makes FL pay off; the ablation bench measures exactly that payoff.
#pragma once

#include <cstdint>
#include <vector>

#include "apr/mutation.hpp"
#include "apr/program.hpp"

namespace mwr::apr {

/// Fraction of covered statements the bug-inducing test executes.
inline constexpr double kFailingRegionFraction = 0.12;

/// Whether the scenario's failing test executes `statement` — shared by
/// CoverageSpectrum and by TestOracle's localized-relevance semantics.
[[nodiscard]] bool failing_test_covers(const datasets::ScenarioSpec& spec,
                                       std::uint32_t statement);

/// The executed-statement spectrum of a scenario's test suite.
class CoverageSpectrum {
 public:
  /// Derives the spectrum deterministically from the scenario seed.
  explicit CoverageSpectrum(const ProgramModel& program);

  /// Whether the bug-inducing (failing) test executes this statement.
  [[nodiscard]] bool failing_covers(std::uint32_t statement) const;

  /// How many of the passing (required) tests execute this statement.
  [[nodiscard]] std::uint32_t passing_count(std::uint32_t statement) const;

  /// Ochiai suspiciousness in [0, 1].
  [[nodiscard]] double suspiciousness(std::uint32_t statement) const;

  /// Statements the failing test covers, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& failing_region()
      const noexcept {
    return failing_region_;
  }

  [[nodiscard]] const ProgramModel& program() const noexcept {
    return *program_;
  }

 private:
  const ProgramModel* program_;
  std::vector<std::uint32_t> failing_region_;
};

/// Samples mutation targets proportionally to (epsilon + suspiciousness),
/// restricted to covered statements.  epsilon > 0 keeps every covered
/// statement reachable (pure FL would never repair a mislocalized bug).
class MutationTargeter {
 public:
  MutationTargeter(const CoverageSpectrum& spectrum, double epsilon = 0.05);

  /// One random mutation with an FL-weighted target.
  [[nodiscard]] Mutation sample(util::RngStream& rng) const;

  /// The probability mass currently on the failing test's region —
  /// how concentrated the targeting is (uniform targeting puts
  /// |region| / |covered| there).
  [[nodiscard]] double mass_on_failing_region() const;

 private:
  const CoverageSpectrum* spectrum_;
  std::vector<double> weights_;   // aligned with program().covered_statements()
  double total_weight_ = 0.0;
};

}  // namespace mwr::apr
