#include "apr/fault_localization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mwr::apr {

namespace {
// Domain separators.
constexpr std::uint64_t kFailCoverageDomain = 0xFA11;
constexpr std::uint64_t kPassCoverageDomain = 0x9A55;

// Probability a given passing test executes a given covered statement.
constexpr double kPassingExecutionRate = 0.6;
}  // namespace

bool failing_test_covers(const datasets::ScenarioSpec& spec,
                         std::uint32_t statement) {
  return hash_to_unit(stable_hash(spec.seed, kFailCoverageDomain,
                                  statement)) < kFailingRegionFraction;
}

CoverageSpectrum::CoverageSpectrum(const ProgramModel& program)
    : program_(&program) {
  for (const auto s : program.covered_statements()) {
    if (failing_covers(s)) failing_region_.push_back(s);
  }
  if (failing_region_.empty())
    throw std::invalid_argument(
        "CoverageSpectrum: the failing test covers no statements");
}

bool CoverageSpectrum::failing_covers(std::uint32_t statement) const {
  return failing_test_covers(program_->spec(), statement);
}

std::uint32_t CoverageSpectrum::passing_count(std::uint32_t statement) const {
  const auto& spec = program_->spec();
  std::uint32_t count = 0;
  for (std::size_t t = 0; t < spec.tests; ++t) {
    if (hash_to_unit(stable_hash(spec.seed, kPassCoverageDomain, statement,
                                 t)) < kPassingExecutionRate) {
      ++count;
    }
  }
  return count;
}

double CoverageSpectrum::suspiciousness(std::uint32_t statement) const {
  // Ochiai with one failing test: failed(s) in {0, 1}.
  if (!failing_covers(statement)) return 0.0;
  const double passed = passing_count(statement);
  return 1.0 / std::sqrt(1.0 * (1.0 + passed));
}

MutationTargeter::MutationTargeter(const CoverageSpectrum& spectrum,
                                   double epsilon)
    : spectrum_(&spectrum) {
  if (epsilon <= 0.0)
    throw std::invalid_argument(
        "MutationTargeter: epsilon must be positive (every covered "
        "statement must stay reachable)");
  const auto& covered = spectrum.program().covered_statements();
  weights_.reserve(covered.size());
  for (const auto s : covered) {
    const double w = epsilon + spectrum.suspiciousness(s);
    weights_.push_back(w);
    total_weight_ += w;
  }
}

Mutation MutationTargeter::sample(util::RngStream& rng) const {
  const auto& program = spectrum_->program();
  const auto& covered = program.covered_statements();
  Mutation m;
  m.kind = static_cast<MutationKind>(rng.uniform_index(3));
  m.target = covered[rng.weighted_choice(weights_, total_weight_)];
  if (m.kind != MutationKind::kDelete) {
    m.donor =
        static_cast<std::uint32_t>(rng.uniform_index(program.num_statements()));
  }
  return m;
}

double MutationTargeter::mass_on_failing_region() const {
  const auto& covered = spectrum_->program().covered_statements();
  double mass = 0.0;
  for (std::size_t i = 0; i < covered.size(); ++i) {
    if (spectrum_->failing_covers(covered[i])) mass += weights_[i];
  }
  return mass / total_weight_;
}

}  // namespace mwr::apr
