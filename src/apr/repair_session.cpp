#include "apr/repair_session.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/serialization.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::apr {

namespace {
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_fold(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

RepairSession::RepairSession(const MwRepairConfig& config,
                             const TestOracle& oracle,
                             const MutationPool& pool, bool prime)
    : repair_(config),
      oracle_(&oracle),
      pool_(&pool),
      rng_(repair_.config().seed),
      baseline_(oracle.baseline_fitness()),
      trajectory_hash_(kFnvOffset) {
  if (pool.empty())
    throw std::invalid_argument("RepairSession: empty mutation pool");
  // Single-tenant path: memoize the pool's semantics up front, exactly as
  // the monolithic MwRepair::run always did.  Multi-tenant oracles are
  // primed once by their owner instead (prime == false) because
  // prime_cache must not race concurrent evaluate() calls.
  if (prime) oracle.prime_cache(pool.mutations());

  const MwRepairConfig& cfg = repair_.config();
  core::MwuConfig mwu_config;
  mwu_config.num_options = cfg.arms;
  mwu_config.num_agents = cfg.agents;
  mwu_config.max_iterations = cfg.max_iterations;
  mwu_config.learning_rate = cfg.learning_rate;
  mwu_config.exploration = cfg.exploration;
  strategy_ = core::make_mwu(cfg.mwu, mwu_config);

  auto& metrics = obs::MetricsRegistry::global();
  cycle_counter_ = &metrics.counter("repair.online.cycles");
  probe_counter_ = &metrics.counter("repair.online.probes");
  cycle_seconds_ = &metrics.histogram("repair.online.cycle_seconds");
  phase_seconds_ = &metrics.histogram("phase.online.seconds");
  repaired_gauge_ = &metrics.gauge("repair.repaired");
}

void RepairSession::finish(bool repaired) {
  done_ = true;
  phase_seconds_->observe(online_seconds_);
  repaired_gauge_->set(repaired ? 1.0 : 0.0);
}

bool RepairSession::step(parallel::ThreadPool* workers) {
  if (done_) return true;
  const MwRepairConfig& cfg = repair_.config();
  const auto max_count = static_cast<double>(cfg.max_count);

  const obs::ScopedTimer cycle_timer(*cycle_seconds_);
  const auto probes = strategy_->sample(rng_);           // MWU_Sample
  patches_.clear();
  acceptance_.clear();
  for (const std::size_t arm : probes) {
    const std::size_t count =
        std::min(repair_.count_for_arm(arm), pool_->size());
    patches_.push_back(sample_from_pool(pool_->mutations(), count, rng_));
    acceptance_.push_back(rng_.uniform());
  }
  // Fold this cycle's draws into the trajectory fingerprint before the
  // (order-free) evaluations, so the hash pins the stochastic sequence.
  trajectory_hash_ = fnv_fold(trajectory_hash_, outcome_.iterations);
  for (std::size_t j = 0; j < probes.size(); ++j) {
    trajectory_hash_ = fnv_fold(trajectory_hash_, probes[j]);
    trajectory_hash_ = fnv_fold(trajectory_hash_,
                                std::bit_cast<std::uint64_t>(acceptance_[j]));
    for (const Mutation& m : patches_[j]) {
      trajectory_hash_ = fnv_fold(trajectory_hash_, m.key());
    }
  }

  evaluations_.assign(patches_.size(), Evaluation{});    // parallel evaluation
  if (workers != nullptr) {
    workers->parallel_for_index(patches_.size(), [&](std::size_t j) {
      evaluations_[j] = oracle_->evaluate(patches_[j]);
    });
  } else {
    for (std::size_t j = 0; j < patches_.size(); ++j) {
      evaluations_[j] = oracle_->evaluate(patches_[j]);
    }
  }
  outcome_.probes += patches_.size();
  probes_last_cycle_ = patches_.size();
  probe_counter_->add(patches_.size());

  rewards_.assign(probes.size(), 0.0);
  for (std::size_t j = 0; j < patches_.size(); ++j) {
    const Evaluation& e = evaluations_[j];
    if (e.is_repair()) {                                 // terminate early
      outcome_.repaired = true;
      outcome_.patch = patches_[j];
      outcome_.iterations += 1;
      outcome_.preferred_count = patches_[j].size();
      outcome_.arm_probabilities = strategy_->probabilities();
      cycle_counter_->add(1);
      trajectory_hash_ = fnv_fold(trajectory_hash_, 0x5245504152ull);  // tag
      trajectory_hash_ = fnv_fold(trajectory_hash_, j);
      online_seconds_ += cycle_timer.elapsed_seconds();
      finish(true);
      return true;
    }
    const bool fitness_kept = e.fitness() >= baseline_;
    switch (cfg.reward) {
      case RewardMode::kFitnessNonDecrease:
        rewards_[j] = fitness_kept ? 1.0 : 0.0;
        break;
      case RewardMode::kSafeDensityProxy:
        // Accept in proportion to the validated combination size, making
        // E[reward | x] proportional to x * P(pass | x).
        rewards_[j] =
            (fitness_kept &&
             acceptance_[j] <
                 static_cast<double>(patches_[j].size()) / max_count)
                ? 1.0
                : 0.0;
        break;
    }
  }
  for (const double r : rewards_) {
    trajectory_hash_ =
        fnv_fold(trajectory_hash_, std::bit_cast<std::uint64_t>(r));
  }
  strategy_->update(probes, rewards_, rng_);             // MWU_Update
  ++outcome_.iterations;
  cycle_counter_->add(1);
  online_seconds_ += cycle_timer.elapsed_seconds();

  if (outcome_.iterations >= cfg.max_iterations) {
    // Budget exhausted (Fig 6: return null).
    outcome_.preferred_count = repair_.count_for_arm(strategy_->best_option());
    outcome_.arm_probabilities = strategy_->probabilities();
    finish(false);
    return true;
  }
  return false;
}

RepairSession::State RepairSession::save() const {
  if (done_)
    throw std::logic_error("RepairSession::save: session already finished");
  State state;
  state.strategy = core::export_state(*strategy_);
  state.rng_seed = rng_.seed();
  state.rng_state = rng_.state();
  state.iterations = outcome_.iterations;
  state.probes = outcome_.probes;
  state.trajectory_hash = trajectory_hash_;
  return state;
}

void RepairSession::restore(const State& state) {
  core::import_state(*strategy_, state.strategy);
  rng_.restore(state.rng_seed, state.rng_state);
  outcome_.iterations = state.iterations;
  outcome_.probes = state.probes;
  trajectory_hash_ = state.trajectory_hash;
  done_ = false;
}

}  // namespace mwr::apr
