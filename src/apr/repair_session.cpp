#include "apr/repair_session.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/serialization.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::apr {

namespace {
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_fold(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

RepairSession::RepairSession(const MwRepairConfig& config,
                             const TestOracle& oracle,
                             const MutationPool& pool, bool prime)
    : repair_(config),
      oracle_(&oracle),
      pool_(&pool),
      rng_(repair_.config().seed),
      baseline_(oracle.baseline_fitness()),
      trajectory_hash_(kFnvOffset) {
  if (pool.empty())
    throw std::invalid_argument("RepairSession: empty mutation pool");
  // Single-tenant path: memoize the pool's semantics up front, exactly as
  // the monolithic MwRepair::run always did.  Multi-tenant oracles are
  // primed once by their owner instead (prime == false) because
  // prime_cache must not race concurrent evaluate() calls.
  if (prime) oracle.prime_cache(pool.mutations());

  const MwRepairConfig& cfg = repair_.config();
  core::MwuConfig mwu_config;
  mwu_config.num_options = cfg.arms;
  mwu_config.num_agents = cfg.agents;
  mwu_config.max_iterations = cfg.max_iterations;
  mwu_config.learning_rate = cfg.learning_rate;
  mwu_config.exploration = cfg.exploration;
  strategy_ = core::make_mwu(cfg.mwu, mwu_config);

  auto& metrics = obs::MetricsRegistry::global();
  cycle_counter_ = &metrics.counter("repair.online.cycles");
  probe_counter_ = &metrics.counter("repair.online.probes");
  cycle_seconds_ = &metrics.histogram("repair.online.cycle_seconds");
  phase_seconds_ = &metrics.histogram("phase.online.seconds");
  repaired_gauge_ = &metrics.gauge("repair.repaired");

  // Wave fast path: usable when the shared oracle carries an eager wave
  // table and every working-pool member is byte-equal to the primed pool
  // member its key names.  Key equality alone is not enough — a swap's
  // key orders its operands, and the wave's relevance bits bake in the
  // coverage of the pool member's concrete target.  The map is monotone
  // (both pools are key-sorted), so ascending working indices translate
  // to ascending primed indices and the canonical patch order survives.
  if (oracle.wave_ready()) {
    const std::span<const Mutation> wave_pool = oracle.wave_pool();
    wave_map_.reserve(pool.size());
    bool mapped = true;
    for (const Mutation& m : pool.mutations()) {
      const std::size_t idx = oracle.pool_index_of(m);
      if (idx == OracleCache::npos || !(wave_pool[idx] == m)) {
        mapped = false;
        break;
      }
      wave_map_.push_back(static_cast<std::uint32_t>(idx));
    }
    wave_fast_path_ = mapped;
    wave_identity_ = mapped && wave_map_.size() == wave_pool.size();
    if (!mapped) wave_map_.clear();
  }
}

void RepairSession::finish(bool repaired) {
  done_ = true;
  phase_seconds_->observe(online_seconds_);
  repaired_gauge_->set(repaired ? 1.0 : 0.0);
}

std::size_t RepairSession::begin_cycle() {
  if (done_) return 0;
  staged_arms_ = strategy_->sample(rng_);                // MWU_Sample
  patches_.clear();
  index_patches_.clear();
  acceptance_.clear();
  for (const std::size_t arm : staged_arms_) {
    const std::size_t count =
        std::min(repair_.count_for_arm(arm), pool_->size());
    if (wave_fast_path_) {
      // Identical without-replacement draws, sorted in index space: pool
      // order is key order, so this names exactly the canonical patch
      // sample_from_pool would materialize (same RNG consumption, same
      // patch bytes) without constructing Mutations or sorting them.
      index_patches_.emplace_back();
      sample_from_pool_indexed(pool_->size(), count, rng_,
                               index_patches_.back());
    } else {
      patches_.push_back(sample_from_pool(pool_->mutations(), count, rng_));
    }
    acceptance_.push_back(rng_.uniform());
  }
  // Fold this cycle's draws into the trajectory fingerprint before the
  // (order-free) evaluations, so the hash pins the stochastic sequence.
  const std::size_t n = staged_arms_.size();
  trajectory_hash_ = fnv_fold(trajectory_hash_, outcome_.iterations);
  for (std::size_t j = 0; j < n; ++j) {
    trajectory_hash_ = fnv_fold(trajectory_hash_, staged_arms_[j]);
    trajectory_hash_ = fnv_fold(trajectory_hash_,
                                std::bit_cast<std::uint64_t>(acceptance_[j]));
    if (wave_fast_path_) {
      for (const std::uint32_t w : index_patches_[j]) {
        trajectory_hash_ =
            fnv_fold(trajectory_hash_, pool_->mutations()[w].key());
      }
    } else {
      for (const Mutation& m : patches_[j]) {
        trajectory_hash_ = fnv_fold(trajectory_hash_, m.key());
      }
    }
  }
  evaluations_.assign(n, Evaluation{});
  outcome_.probes += n;
  probes_last_cycle_ = n;
  probe_counter_->add(n);
  return n;
}

void RepairSession::evaluate_staged(std::size_t j) {
  if (!wave_fast_path_) {
    evaluations_[j] = oracle_->evaluate(patches_[j]);
    return;
  }
  if (wave_identity_) {
    evaluations_[j] = oracle_->evaluate_pooled(index_patches_[j]);
    return;
  }
  // Translate working-pool positions to primed positions (monotone map:
  // ascending stays ascending).
  thread_local std::vector<std::uint32_t> mapped;
  const std::vector<std::uint32_t>& widx = index_patches_[j];
  mapped.resize(widx.size());
  for (std::size_t i = 0; i < widx.size(); ++i) mapped[i] = wave_map_[widx[i]];
  evaluations_[j] = oracle_->evaluate_pooled(mapped);
}

bool RepairSession::finish_cycle(double elapsed_seconds) {
  const MwRepairConfig& cfg = repair_.config();
  const auto max_count = static_cast<double>(cfg.max_count);
  online_seconds_ += elapsed_seconds;

  const std::size_t n = staged_arms_.size();
  rewards_.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const Evaluation& e = evaluations_[j];
    const std::size_t patch_size =
        wave_fast_path_ ? index_patches_[j].size() : patches_[j].size();
    if (e.is_repair()) {                                 // terminate early
      outcome_.repaired = true;
      if (wave_fast_path_) {
        // Materialize the winning patch (ascending indices over the
        // key-sorted pool == the canonical Patch).
        outcome_.patch.clear();
        for (const std::uint32_t w : index_patches_[j]) {
          outcome_.patch.push_back(pool_->mutations()[w]);
        }
      } else {
        outcome_.patch = patches_[j];
      }
      outcome_.iterations += 1;
      outcome_.preferred_count = patch_size;
      outcome_.arm_probabilities = strategy_->probabilities();
      cycle_counter_->add(1);
      trajectory_hash_ = fnv_fold(trajectory_hash_, 0x5245504152ull);  // tag
      trajectory_hash_ = fnv_fold(trajectory_hash_, j);
      finish(true);
      return true;
    }
    const bool fitness_kept = e.fitness() >= baseline_;
    switch (cfg.reward) {
      case RewardMode::kFitnessNonDecrease:
        rewards_[j] = fitness_kept ? 1.0 : 0.0;
        break;
      case RewardMode::kSafeDensityProxy:
        // Accept in proportion to the validated combination size, making
        // E[reward | x] proportional to x * P(pass | x).
        rewards_[j] =
            (fitness_kept &&
             acceptance_[j] < static_cast<double>(patch_size) / max_count)
                ? 1.0
                : 0.0;
        break;
    }
  }
  for (const double r : rewards_) {
    trajectory_hash_ =
        fnv_fold(trajectory_hash_, std::bit_cast<std::uint64_t>(r));
  }
  strategy_->update(staged_arms_, rewards_, rng_);       // MWU_Update
  ++outcome_.iterations;
  cycle_counter_->add(1);

  if (outcome_.iterations >= cfg.max_iterations) {
    // Budget exhausted (Fig 6: return null).
    outcome_.preferred_count = repair_.count_for_arm(strategy_->best_option());
    outcome_.arm_probabilities = strategy_->probabilities();
    finish(false);
    return true;
  }
  return false;
}

bool RepairSession::step(parallel::ThreadPool* workers) {
  if (done_) return true;
  const obs::ScopedTimer cycle_timer(*cycle_seconds_);
  const std::size_t n = begin_cycle();
  if (workers != nullptr) {
    workers->parallel_for_index(n, [&](std::size_t j) { evaluate_staged(j); });
  } else {
    for (std::size_t j = 0; j < n; ++j) evaluate_staged(j);
  }
  return finish_cycle(cycle_timer.elapsed_seconds());
}

RepairSession::State RepairSession::save() const {
  if (done_)
    throw std::logic_error("RepairSession::save: session already finished");
  State state;
  state.strategy = core::export_state(*strategy_);
  state.rng_seed = rng_.seed();
  state.rng_state = rng_.state();
  state.iterations = outcome_.iterations;
  state.probes = outcome_.probes;
  state.trajectory_hash = trajectory_hash_;
  return state;
}

void RepairSession::restore(const State& state) {
  core::import_state(*strategy_, state.strategy);
  rng_.restore(state.rng_seed, state.rng_state);
  outcome_.iterations = state.iterations;
  outcome_.probes = state.probes;
  trajectory_hash_ = state.trajectory_hash;
  done_ = false;
}

}  // namespace mwr::apr
