// Oracle memoization — the test-result cache that makes repeated probes of
// pooled mutations nearly free (paper §III-C amortization; the same
// technique GenProg-scale APR relies on to stay tractable).
//
// TestOracle's semantics are a pure function of (scenario spec, mutation
// key): the broken-test mask costs T stable hashes per mutation (T up to
// 64) and each unordered pair of safe mutations costs another hash in the
// O(x^2) interference pass.  During MWRepair phase 2 every probe re-draws
// from the same precomputed pool, so the same masks and the same pairs are
// recomputed thousands of times.  This cache stores them once:
//
//   mutation-key cache  — sharded (mutex-striped) hash map from the 64-bit
//                         mutation key to {broken mask, repair-relevance},
//                         safe for concurrent insert from the precompute
//                         thread pool;
//   primed fast path    — after a pool is known, prime() freezes its
//                         members into a flat array indexed by pool
//                         position (key lookup = binary search over the
//                         pool's sorted keys), read lock-free;
//   pair cache          — bounded triangular array of atomic bytes over
//                         pool-index pairs, recording "no interference" or
//                         the broken test bit.  Exact by construction (the
//                         index pair *is* the identity — no hash
//                         collisions), lock-free, and capped at
//                         kMaxPairDimension pool members (~2 MiB).
//
// Everything cached is deterministic, so cached and uncached evaluation are
// bit-identical — the golden tests in tests/test_oracle_cache.cpp compare
// the two paths directly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "apr/mutation.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::apr {

/// The memoizable per-mutation semantics: which required tests the lone
/// mutation breaks, and whether its relevance hash clears the scenario's
/// relevance rate.  Both are pure functions of the canonical mutation
/// *key* — the localized-relevance coverage predicate is deliberately NOT
/// cached here, because a swap's key orders its operands while coverage
/// depends on the concrete `target`; TestOracle re-checks that O(1)
/// predicate at query time so cached and uncached answers stay
/// bit-identical for either operand orientation.
struct MutationSemantics {
  std::uint64_t broken_mask = 0;
  bool relevance_hash_pass = false;
};

class OracleCache {
 public:
  /// Pool members beyond this bound fall back to the sharded map and
  /// direct pair computation; the triangular pair array for the bound is
  /// kMaxPairDimension^2 / 2 bytes (~2 MiB).
  static constexpr std::size_t kMaxPairDimension = 2048;

  /// Pair-outcome encoding inside the triangular byte array.
  static constexpr std::uint8_t kPairUnknown = 0;
  static constexpr std::uint8_t kPairClean = 1;   ///< no interference.
  static constexpr std::uint8_t kPairBitBase = 2; ///< broken bit = v - 2.

  OracleCache() = default;
  OracleCache(const OracleCache&) = delete;
  OracleCache& operator=(const OracleCache&) = delete;

  // --- sharded mutation-key cache (any mutation, any thread) ---

  [[nodiscard]] std::optional<MutationSemantics> lookup(
      std::uint64_t key) const;
  void store(std::uint64_t key, MutationSemantics value);

  // --- primed pooled-mutation fast path ---

  /// Freezes the pooled mutations' semantics into the flat fast path.
  /// `sorted_keys` must be ascending and unique (the MutationPool
  /// invariant) and aligned with `semantics`.  Must not race evaluate():
  /// call between phases, as MutationPool::precompute and MwRepair::run
  /// do.  Subsequent calls with the same keys are no-ops; a different
  /// pool re-primes.
  void prime(std::vector<std::uint64_t> sorted_keys,
             std::vector<MutationSemantics> semantics);

  [[nodiscard]] bool primed() const noexcept {
    return primed_.load(std::memory_order_acquire);
  }

  /// True when the cache is primed with exactly these keys — lets callers
  /// skip recomputing pool semantics before a redundant prime().
  [[nodiscard]] bool primed_with(std::span<const std::uint64_t> keys) const;

  /// Pool index of `key`, or npos when unprimed / not pooled.  One probe
  /// of a flat open-addressing table built by prime() (load factor <= 1/4,
  /// linear probing) — constant time, the per-mutation cost of a warm
  /// phase-2 probe.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t pool_index(std::uint64_t key) const {
    if (!primed()) return npos;
    std::size_t slot = mix_key(key) & table_mask_;
    while (true) {
      const IndexEntry& e = index_table_[slot];
      if (e.index_plus_one == 0) return npos;
      if (e.key == key) return e.index_plus_one - 1;
      slot = (slot + 1) & table_mask_;
    }
  }

  [[nodiscard]] const MutationSemantics& pooled(std::size_t index) const {
    return pool_semantics_[index];
  }

  /// Key of the primed pool member at `index`.
  [[nodiscard]] std::uint64_t pool_key(std::size_t index) const {
    return pool_keys_[index];
  }

  // --- bounded pair-interference cache (pool indices, lock-free) ---

  /// Whether the pair (i, j) of pool indices is cacheable (both below the
  /// dimension bound).
  [[nodiscard]] bool pair_cacheable(std::size_t i, std::size_t j) const {
    return i < pair_dimension_ && j < pair_dimension_;
  }

  /// Encoded pair outcome, kPairUnknown when never stored.
  [[nodiscard]] std::uint8_t lookup_pair(std::size_t i, std::size_t j) const {
    return pairs_[pair_slot(i, j)].load(std::memory_order_relaxed);
  }

  void store_pair(std::size_t i, std::size_t j, std::uint8_t encoded) {
    pairs_[pair_slot(i, j)].store(encoded, std::memory_order_relaxed);
  }

  /// Encodes a pair-interference outcome for store_pair.
  [[nodiscard]] static std::uint8_t encode_pair(bool interferes,
                                                std::uint32_t broken_bit) {
    return interferes ? static_cast<std::uint8_t>(kPairBitBase + broken_bit)
                      : kPairClean;
  }

  /// Decodes lookup_pair's value into the broken-test mask contribution.
  [[nodiscard]] static std::uint64_t decode_pair_mask(std::uint8_t encoded) {
    return encoded >= kPairBitBase
               ? (std::uint64_t{1} << (encoded - kPairBitBase))
               : 0;
  }

  /// ORs the interference masks of every unordered pair among
  /// `sorted_indices` (strictly ascending pool indices, all below the
  /// pair-cache dimension).  The hot path of a phase-2 probe: with the
  /// indices sorted, each row's cached slots are contiguous bytes, so a
  /// warm probe is a sequential scan rather than per-pair index
  /// arithmetic.  Unknown slots are resolved through `miss(i, j)` (which
  /// returns the encoded outcome) and recorded.  `hits`/`misses`
  /// accumulate counter deltas for the caller to flush.
  template <typename MissFn>
  std::uint64_t fold_pair_masks(std::span<const std::size_t> sorted_indices,
                                MissFn&& miss, std::uint64_t& hits,
                                std::uint64_t& misses) {
    std::uint64_t mask = 0;
    for (std::size_t a = 0; a + 1 < sorted_indices.size(); ++a) {
      const std::size_t i = sorted_indices[a];
      // pair_slot(i, j) = base + j for every j > i in this row.
      const std::size_t base =
          i * (2 * pair_dimension_ - i - 1) / 2 - i - 1;
      for (std::size_t b = a + 1; b < sorted_indices.size(); ++b) {
        const std::size_t j = sorted_indices[b];
        std::uint8_t v = pairs_[base + j].load(std::memory_order_relaxed);
        if (v == kPairUnknown) {
          ++misses;
          v = miss(i, j);
          pairs_[base + j].store(v, std::memory_order_relaxed);
        } else {
          ++hits;
        }
        mask |= decode_pair_mask(v);
      }
    }
    return mask;
  }

  // --- probe-wave table (eager per-oracle evaluation operands) ---

  /// Everything a pooled-patch evaluation needs, flattened for the SIMD
  /// probe-mask kernels: per-member broken masks as a gatherable u64 array,
  /// safe / repair-relevant membership as bitsets over pool indices, and
  /// the sparse symmetric CSR of interfering safe pairs (partner index +
  /// interference mask per edge, both directions stored — the OR fold is
  /// idempotent, so walking each edge twice is harmless).  Built once by
  /// TestOracle::prime_wave; read lock-free by every evaluate_pooled.
  struct WaveTable {
    std::vector<Mutation> pool;                 ///< the primed members, so
                                                ///< mappers can verify full
                                                ///< equality (not just key).
    std::vector<std::uint64_t> masks;           ///< broken mask per member.
    std::vector<std::uint64_t> safe_words;      ///< bitset: broken_mask == 0.
    std::vector<std::uint64_t> relevant_words;  ///< bitset: counts toward
                                                ///< the repair threshold.
    std::vector<std::uint32_t> partner_offsets; ///< CSR row starts, size n+1.
    std::vector<std::uint32_t> partner_idx;     ///< interfering partner.
    std::vector<std::uint64_t> partner_masks;   ///< that pair's broken bit.
  };

  /// Installs the wave table for the currently primed pool.  Same no-race
  /// contract as prime(); re-priming with a different pool drops it.
  void install_wave(WaveTable table);

  [[nodiscard]] bool wave_ready() const noexcept {
    return wave_ready_.load(std::memory_order_acquire);
  }

  /// Valid only while wave_ready().
  [[nodiscard]] const WaveTable& wave() const noexcept { return wave_; }

 private:
  /// SplitMix64 finalizer — scrambles the structured mutation-key bits
  /// into table-probe entropy.
  [[nodiscard]] static std::uint64_t mix_key(std::uint64_t k) noexcept {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }

  /// Open-addressing slot: index_plus_one == 0 marks an empty slot (a
  /// mutation key itself may legitimately be zero).
  struct IndexEntry {
    std::uint64_t key = 0;
    std::uint32_t index_plus_one = 0;
  };

  [[nodiscard]] std::size_t pair_slot(std::size_t i, std::size_t j) const {
    // Upper-triangular (i < j) row-major index.
    if (i > j) std::swap(i, j);
    return i * (2 * pair_dimension_ - i - 1) / 2 + (j - i - 1);
  }

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable util::Mutex mutex;
    // Keyed lookup/insert only — never iterated, so the unordered layout
    // can't leak nondeterminism into probe results (mwr_lint's
    // unordered-iteration rule keeps it that way).
    std::unordered_map<std::uint64_t, MutationSemantics> map
        MWR_GUARDED_BY(mutex);
  };
  [[nodiscard]] Shard& shard_for(std::uint64_t key) const {
    // Mutation keys concentrate their entropy in the low bits (donor) and
    // bits 31.. (target); fold before striping.
    return shards_[(key ^ (key >> 31)) % kShards];
  }

  mutable std::array<Shard, kShards> shards_;

  std::vector<std::uint64_t> pool_keys_;
  std::vector<MutationSemantics> pool_semantics_;
  std::vector<IndexEntry> index_table_;
  std::size_t table_mask_ = 0;
  std::size_t pair_dimension_ = 0;
  std::vector<std::atomic<std::uint8_t>> pairs_;
  std::atomic<bool> primed_{false};

  WaveTable wave_;
  std::atomic<bool> wave_ready_{false};
};

}  // namespace mwr::apr
