// One JSON schema for repair results, whether the campaign ran as a
// single-shot CLI invocation or through the campaign server.
//
// The CLI historically printed human tables only; the server needs a
// machine-readable result frame; CI wants to diff both against goldens.
// "mwr-campaign-outcome-v1" is that common shape:
//
//   {"schema": "mwr-campaign-outcome-v1",
//    "mode": "campaign" | "single",
//    "precompute_runs": n, "initial_pool_size": n, "repaired": n,
//    "mean_bug_cost": x, "amortized_bug_cost": x,
//    "bugs": [{"bug_id": i, "repaired": b, "patch_edits": n,
//              "maintenance_runs": n, "pool_dropped": n, "pool_size": n,
//              "online_probes": n, "online_cycles": n, "suite_runs": n}]}
//
// Every field is a deterministic function of (scenario, config, seed) —
// no wall times — so the export is golden-testable byte for byte.
// Single-shot mode (repair_tool without --campaign) maps EndToEndOutcome
// into the same shape as a one-bug campaign.
#pragma once

#include <string>

#include "apr/campaign.hpp"
#include "apr/mwrepair.hpp"
#include "obs/serialization.hpp"

namespace mwr::apr {

[[nodiscard]] obs::JsonValue outcome_to_json(const CampaignOutcome& outcome);
[[nodiscard]] obs::JsonValue outcome_to_json(const EndToEndOutcome& outcome);

/// Pretty-prints (2-space indent, trailing newline) to `path`; throws
/// std::runtime_error on I/O failure.  This is what --outcome-out writes.
void write_outcome_json(const obs::JsonValue& outcome,
                        const std::string& path);

}  // namespace mwr::apr
