#include "apr/test_oracle.hpp"

#include "apr/fault_localization.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mwr::apr {

namespace {
// Domain separators for the scenario's deterministic semantics.
constexpr std::uint64_t kBreakDomain = 0xB4EA;
constexpr std::uint64_t kPairDomain = 0x9A12;
constexpr std::uint64_t kRepairDomain = 0x4E9A;
}  // namespace

TestOracle::TestOracle(const ProgramModel& program)
    : program_(&program),
      required_tests_(static_cast<std::uint32_t>(program.spec().tests)),
      interference_(program.spec().interference()) {
  if (required_tests_ == 0 || required_tests_ > 64)
    throw std::invalid_argument(
        "TestOracle: required tests must be in [1, 64] (bitmask model)");
  // Safety is test-granular: a mutation breaks each test independently with
  // rate b, calibrated so a single mutation passes the whole suite with
  // probability safe_rate: (1-b)^T = safe_rate.  Because b shrinks as the
  // suite grows, a mutation that passed every old test keeps passing them
  // under a grown suite — only the *new* tests can expose it, which is
  // exactly the incremental pool-maintenance story of §III-C.
  per_test_break_rate_ =
      1.0 - std::pow(program.spec().safe_rate,
                     1.0 / static_cast<double>(required_tests_));
}

bool TestOracle::is_safe(const Mutation& m) const {
  return broken_mask_single(m) == 0;
}

bool TestOracle::is_repair_relevant(const Mutation& m) const {
  const auto& spec = program_->spec();
  double rate = spec.repair_rate;
  if (spec.relevance_localized) {
    // Relevance lives only inside the failing test's region, with the rate
    // scaled so the overall relevance over all covered statements is
    // unchanged.
    if (!failing_test_covers(spec, m.target)) return false;
    rate = std::min(1.0, spec.repair_rate / kFailingRegionFraction);
  }
  return is_safe(m) &&
         hash_to_unit(stable_hash(spec.seed, kRepairDomain ^ (spec.bug_id << 8),
                                  m.key())) < rate;
}

std::uint64_t TestOracle::broken_mask_single(const Mutation& m) const {
  const auto& spec = program_->spec();
  std::uint64_t mask = 0;
  for (std::uint32_t t = 0; t < required_tests_; ++t) {
    if (hash_to_unit(stable_hash(spec.seed, kBreakDomain, m.key(), t)) <
        per_test_break_rate_) {
      mask |= (std::uint64_t{1} << t);
    }
  }
  return mask;
}

Evaluation TestOracle::evaluate(std::span<const Mutation> patch) const {
  suite_runs_.fetch_add(1, std::memory_order_relaxed);
  const auto& spec = program_->spec();

  // Per-mutation breakage first (O(x * T)), so the pair loop below can test
  // safety as a flag lookup instead of re-hashing the suite.
  std::uint64_t broken = 0;
  std::vector<bool> safe(patch.size());
  for (std::size_t i = 0; i < patch.size(); ++i) {
    const std::uint64_t mask = broken_mask_single(patch[i]);
    broken |= mask;
    safe[i] = (mask == 0);
  }

  std::size_t relevant = 0;
  for (std::size_t i = 0; i < patch.size(); ++i) {
    if (!safe[i]) continue;
    const Mutation& m = patch[i];
    if (is_repair_relevant(m)) ++relevant;
    // Pairwise interference among safe mutations (Fig 4a's mechanism).
    for (std::size_t j = i + 1; j < patch.size(); ++j) {
      if (!safe[j]) continue;
      std::uint64_t lo = m.key();
      std::uint64_t hi = patch[j].key();
      if (hi < lo) std::swap(lo, hi);
      const std::uint64_t h = stable_hash(spec.seed, kPairDomain, lo, hi);
      if (hash_to_unit(h) < interference_) {
        broken |= (std::uint64_t{1} << (h % required_tests_));
      }
    }
  }

  Evaluation result;
  result.required_total = required_tests_;
  result.required_passed =
      required_tests_ - static_cast<std::uint32_t>(std::popcount(broken));
  result.bug_test_passed =
      relevant >= spec.min_repair_edits && spec.min_repair_edits > 0;
  return result;
}

}  // namespace mwr::apr
