#include "apr/test_oracle.hpp"

#include "apr/fault_localization.hpp"
#include "obs/registry.hpp"
#include "util/simd/weight_kernels.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mwr::apr {

namespace {
// Domain separators for the scenario's deterministic semantics.
constexpr std::uint64_t kBreakDomain = 0xB4EA;
constexpr std::uint64_t kPairDomain = 0x9A12;
constexpr std::uint64_t kRepairDomain = 0x4E9A;
}  // namespace

TestOracle::TestOracle(const ProgramModel& program, bool enable_cache)
    : program_(&program),
      required_tests_(static_cast<std::uint32_t>(program.spec().tests)),
      interference_(program.spec().interference()) {
  if (required_tests_ == 0 || required_tests_ > 64)
    throw std::invalid_argument(
        "TestOracle: required tests must be in [1, 64] (bitmask model)");
  // Safety is test-granular: a mutation breaks each test independently with
  // rate b, calibrated so a single mutation passes the whole suite with
  // probability safe_rate: (1-b)^T = safe_rate.  Because b shrinks as the
  // suite grows, a mutation that passed every old test keeps passing them
  // under a grown suite — only the *new* tests can expose it, which is
  // exactly the incremental pool-maintenance story of §III-C.
  per_test_break_rate_ =
      1.0 - std::pow(program.spec().safe_rate,
                     1.0 / static_cast<double>(required_tests_));
  const auto& spec = program.spec();
  relevance_rate_ =
      spec.relevance_localized
          ? std::min(1.0, spec.repair_rate / kFailingRegionFraction)
          : spec.repair_rate;
  if (enable_cache) {
    cache_ = std::make_unique<OracleCache>();
    auto& metrics = obs::MetricsRegistry::global();
    mask_hits_ = &metrics.counter("oracle.mask_cache_hits");
    mask_misses_ = &metrics.counter("oracle.mask_cache_misses");
    pair_hits_ = &metrics.counter("oracle.pair_cache_hits");
    pair_misses_ = &metrics.counter("oracle.pair_cache_misses");
  }
}

bool TestOracle::is_safe(const Mutation& m) const {
  return semantics_for(m).broken_mask == 0;
}

bool TestOracle::is_repair_relevant(const Mutation& m) const {
  const auto& spec = program_->spec();
  // The coverage predicate depends on the concrete target statement (a
  // swap's key orders its operands), so it is evaluated here rather than
  // cached — one stable hash, same cost as a map probe.
  if (spec.relevance_localized && !failing_test_covers(spec, m.target))
    return false;
  const MutationSemantics s = semantics_for(m);
  return s.broken_mask == 0 && s.relevance_hash_pass;
}

std::uint64_t TestOracle::broken_mask_single(const Mutation& m) const {
  const auto& spec = program_->spec();
  std::uint64_t mask = 0;
  for (std::uint32_t t = 0; t < required_tests_; ++t) {
    if (hash_to_unit(stable_hash(spec.seed, kBreakDomain, m.key(), t)) <
        per_test_break_rate_) {
      mask |= (std::uint64_t{1} << t);
    }
  }
  return mask;
}

MutationSemantics TestOracle::compute_semantics(const Mutation& m) const {
  const auto& spec = program_->spec();
  MutationSemantics s;
  s.broken_mask = broken_mask_single(m);
  s.relevance_hash_pass =
      hash_to_unit(stable_hash(spec.seed, kRepairDomain ^ (spec.bug_id << 8),
                               m.key())) < relevance_rate_;
  return s;
}

MutationSemantics TestOracle::semantics_for(const Mutation& m) const {
  if (!cache_) return compute_semantics(m);
  const std::uint64_t key = m.key();
  // Lock-free pooled fast path first, sharded map second.
  const std::size_t idx = cache_->pool_index(key);
  if (idx != OracleCache::npos) {
    mask_hits_->add(1);
    return cache_->pooled(idx);
  }
  if (const auto hit = cache_->lookup(key)) {
    mask_hits_->add(1);
    return *hit;
  }
  mask_misses_->add(1);
  const MutationSemantics s = compute_semantics(m);
  cache_->store(key, s);
  return s;
}

std::uint64_t TestOracle::pair_interference_mask(std::uint64_t lo,
                                                 std::uint64_t hi) const {
  const std::uint64_t h =
      stable_hash(program_->spec().seed, kPairDomain, lo, hi);
  if (hash_to_unit(h) < interference_) {
    return std::uint64_t{1} << (h % required_tests_);
  }
  return 0;
}

Evaluation TestOracle::evaluate(std::span<const Mutation> patch) const {
  suite_runs_.fetch_add(1, std::memory_order_relaxed);
  const auto& spec = program_->spec();

  // Per-mutation breakage first (cached: two probes; uncached: O(T)
  // hashes), so the pair loop below can test safety as a flag lookup
  // instead of re-hashing the suite.  Cache counters are accumulated in
  // locals and flushed once per call — per-pair atomic increments would
  // cost more than the cached lookups they measure.
  // Per-thread scratch: evaluate() runs millions of times from the probe
  // thread pool, so its working vectors are reused across calls instead of
  // reallocated.
  thread_local std::vector<unsigned char> safe;
  thread_local std::vector<MutationSemantics> semantics;
  thread_local std::vector<std::size_t> pool_idx;
  thread_local std::vector<std::size_t> cacheable;  // sorted pool indices
  thread_local std::vector<std::size_t> rest;       // patch positions

  std::uint64_t broken = 0;
  safe.assign(patch.size(), 0);
  semantics.assign(patch.size(), MutationSemantics{});
  const bool primed = cache_ && cache_->primed();
  if (primed) pool_idx.assign(patch.size(), OracleCache::npos);
  std::uint64_t mask_hits = 0;
  std::uint64_t mask_misses = 0;
  for (std::size_t i = 0; i < patch.size(); ++i) {
    if (cache_) {
      const std::uint64_t key = patch[i].key();
      const std::size_t idx = primed ? cache_->pool_index(key)
                                     : OracleCache::npos;
      if (idx != OracleCache::npos) {
        pool_idx[i] = idx;
        semantics[i] = cache_->pooled(idx);
        ++mask_hits;
      } else if (const auto hit = cache_->lookup(key)) {
        semantics[i] = *hit;
        ++mask_hits;
      } else {
        ++mask_misses;
        semantics[i] = compute_semantics(patch[i]);
        cache_->store(key, semantics[i]);
      }
    } else {
      semantics[i] = compute_semantics(patch[i]);
    }
    broken |= semantics[i].broken_mask;
    safe[i] = (semantics[i].broken_mask == 0);
  }
  if (cache_) {
    if (mask_hits) mask_hits_->add(mask_hits);
    if (mask_misses) mask_misses_->add(mask_misses);
  }

  std::size_t relevant = 0;
  for (std::size_t i = 0; i < patch.size(); ++i) {
    if (safe[i] && semantics[i].relevance_hash_pass &&
        (!spec.relevance_localized ||
         failing_test_covers(spec, patch[i].target))) {
      ++relevant;
    }
  }

  // Pairwise interference among safe mutations (Fig 4a's mechanism).
  // Safe members split into the pair-cacheable set (pooled, below the
  // cache's dimension bound) and the rest; cacheable-vs-cacheable pairs go
  // through the lock-free triangular byte cache — exact, since the
  // pool-index pair *is* the identity — and every pair touching the rest
  // is hashed directly, as before.  A duplicate pool index (a degenerate
  // non-canonical patch) disables the cached split so the hash count stays
  // identical to the reference path.
  std::uint64_t pair_hits = 0;
  std::uint64_t pair_misses = 0;
  cacheable.clear();
  rest.clear();
  bool degenerate = false;
  if (primed) {
    for (std::size_t i = 0; i < patch.size(); ++i) {
      if (!safe[i]) continue;
      if (pool_idx[i] != OracleCache::npos &&
          cache_->pair_cacheable(pool_idx[i], pool_idx[i])) {
        cacheable.push_back(pool_idx[i]);
      } else {
        rest.push_back(i);
      }
    }
    std::sort(cacheable.begin(), cacheable.end());
    degenerate = std::adjacent_find(cacheable.begin(), cacheable.end()) !=
                 cacheable.end();
  }
  if (primed && !degenerate) {
    broken |= cache_->fold_pair_masks(
        cacheable,
        [&](std::size_t i, std::size_t j) {
          // Pool indices ascend with keys, so (i, j) is already (lo, hi).
          const std::uint64_t pair_mask =
              pair_interference_mask(cache_->pool_key(i),
                                     cache_->pool_key(j));
          return OracleCache::encode_pair(
              pair_mask != 0,
              static_cast<std::uint32_t>(std::countr_zero(
                  pair_mask | (std::uint64_t{1} << 63))));
        },
        pair_hits, pair_misses);
    // Pairs with at least one non-cacheable member.
    for (std::size_t a = 0; a < rest.size(); ++a) {
      const std::uint64_t key_a = patch[rest[a]].key();
      for (const std::size_t i : cacheable) {
        std::uint64_t lo = key_a;
        std::uint64_t hi = cache_->pool_key(i);
        if (hi < lo) std::swap(lo, hi);
        broken |= pair_interference_mask(lo, hi);
      }
      for (std::size_t b = a + 1; b < rest.size(); ++b) {
        std::uint64_t lo = key_a;
        std::uint64_t hi = patch[rest[b]].key();
        if (hi < lo) std::swap(lo, hi);
        broken |= pair_interference_mask(lo, hi);
      }
    }
  } else {
    for (std::size_t i = 0; i < patch.size(); ++i) {
      if (!safe[i]) continue;
      for (std::size_t j = i + 1; j < patch.size(); ++j) {
        if (!safe[j]) continue;
        std::uint64_t lo = patch[i].key();
        std::uint64_t hi = patch[j].key();
        if (hi < lo) std::swap(lo, hi);
        broken |= pair_interference_mask(lo, hi);
      }
    }
  }
  if (cache_ && (pair_hits || pair_misses)) {
    if (pair_hits) pair_hits_->add(pair_hits);
    if (pair_misses) pair_misses_->add(pair_misses);
  }

  Evaluation result;
  result.required_total = required_tests_;
  result.required_passed =
      required_tests_ - static_cast<std::uint32_t>(std::popcount(broken));
  result.bug_test_passed =
      relevant >= spec.min_repair_edits && spec.min_repair_edits > 0;
  return result;
}

Evaluation TestOracle::evaluate_pooled(
    std::span<const std::uint32_t> pool_indices) const {
  suite_runs_.fetch_add(1, std::memory_order_relaxed);
  const auto& spec = program_->spec();
  const OracleCache::WaveTable& wave = cache_->wave();
  const util::simd::WeightKernels& kernels = util::simd::active();

  // Per-member breakage is one gather-OR over the flat mask array; safe
  // and relevant counts are bitset intersections against the patch's
  // pool-membership bitmap.  All integer ops — bit-identical to the
  // member loop of evaluate() by construction.
  std::uint64_t broken = kernels.mask_or_gather(
      wave.masks.data(), pool_indices.data(), pool_indices.size());

  thread_local std::vector<std::uint64_t> member_words;
  const std::size_t words = wave.safe_words.size();
  member_words.assign(words, 0);
  for (const std::uint32_t i : pool_indices) {
    member_words[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  const std::size_t n_safe = kernels.popcount_and(
      wave.safe_words.data(), member_words.data(), words);
  const std::size_t relevant = kernels.popcount_and(
      wave.relevant_words.data(), member_words.data(), words);

  // Pairwise interference: walk each safe member's precomputed partner
  // row and OR the masks of partners that are also in the patch.  The
  // CSR is symmetric, so every interfering pair is visited twice — OR is
  // idempotent, and the double visit beats a per-edge direction test.
  for (const std::uint32_t i : pool_indices) {
    if (((wave.safe_words[i >> 6] >> (i & 63)) & 1) == 0) continue;
    const std::uint32_t end = wave.partner_offsets[i + 1];
    for (std::uint32_t o = wave.partner_offsets[i]; o < end; ++o) {
      const std::uint32_t j = wave.partner_idx[o];
      if ((member_words[j >> 6] >> (j & 63)) & 1) {
        broken |= wave.partner_masks[o];
      }
    }
  }

  // Book the exact cache traffic a fully warm evaluate() of this patch
  // would: one mask hit per member, one pair hit per safe pair.
  mask_hits_->add(pool_indices.size());
  if (n_safe >= 2) pair_hits_->add(n_safe * (n_safe - 1) / 2);

  Evaluation result;
  result.required_total = required_tests_;
  result.required_passed =
      required_tests_ - static_cast<std::uint32_t>(std::popcount(broken));
  result.bug_test_passed =
      relevant >= spec.min_repair_edits && spec.min_repair_edits > 0;
  return result;
}

void TestOracle::prime_wave(std::span<const Mutation> pool) const {
  if (!cache_ || pool.empty()) return;
  prime_cache(pool);
  if (cache_->wave_ready()) return;  // same pool: prime_cache kept the wave.
  if (pool.size() > OracleCache::kMaxPairDimension) return;
  const auto& spec = program_->spec();
  const std::size_t n = pool.size();
  const std::size_t words = (n + 63) / 64;
  OracleCache::WaveTable wave;
  wave.pool.assign(pool.begin(), pool.end());
  wave.masks.resize(n);
  wave.safe_words.assign(words, 0);
  wave.relevant_words.assign(words, 0);
  std::vector<std::uint32_t> safe_list;
  for (std::size_t i = 0; i < n; ++i) {
    const MutationSemantics& s = cache_->pooled(i);
    wave.masks[i] = s.broken_mask;
    if (s.broken_mask != 0) continue;
    wave.safe_words[i >> 6] |= std::uint64_t{1} << (i & 63);
    safe_list.push_back(static_cast<std::uint32_t>(i));
    if (s.relevance_hash_pass &&
        (!spec.relevance_localized ||
         failing_test_covers(spec, pool[i].target))) {
      wave.relevant_words[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
  }
  // Every interference hash the pooled scenario can charge, paid once:
  // C(n_safe, 2) hashes here amortize over thousands of per-probe pair
  // loops.  Pool indices ascend with keys, so (a, b) is already (lo, hi).
  std::vector<std::array<std::uint32_t, 2>> edges;
  std::vector<std::uint64_t> edge_masks;
  for (std::size_t x = 0; x < safe_list.size(); ++x) {
    for (std::size_t y = x + 1; y < safe_list.size(); ++y) {
      const std::uint32_t a = safe_list[x];
      const std::uint32_t b = safe_list[y];
      const std::uint64_t mask =
          pair_interference_mask(cache_->pool_key(a), cache_->pool_key(b));
      if (mask == 0) continue;
      edges.push_back({a, b});
      edge_masks.push_back(mask);
    }
  }
  // Symmetric CSR: count degrees, prefix-sum, fill both directions.
  std::vector<std::uint32_t> degree(n, 0);
  for (const auto& e : edges) {
    ++degree[e[0]];
    ++degree[e[1]];
  }
  wave.partner_offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    wave.partner_offsets[i + 1] = wave.partner_offsets[i] + degree[i];
  }
  wave.partner_idx.resize(2 * edges.size());
  wave.partner_masks.resize(2 * edges.size());
  std::vector<std::uint32_t> cursor(wave.partner_offsets.begin(),
                                    wave.partner_offsets.end() - 1);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    wave.partner_idx[cursor[a]] = b;
    wave.partner_masks[cursor[a]++] = edge_masks[e];
    wave.partner_idx[cursor[b]] = a;
    wave.partner_masks[cursor[b]++] = edge_masks[e];
  }
  cache_->install_wave(std::move(wave));
}

void TestOracle::prime_cache(std::span<const Mutation> pool) const {
  if (!cache_ || pool.empty()) return;
  std::vector<std::uint64_t> keys;
  keys.reserve(pool.size());
  for (const Mutation& m : pool) {
    keys.push_back(m.key());
    // Pools are sorted by key and deduplicated (MutationPool invariant);
    // verify monotonicity cheaply so a malformed span cannot corrupt the
    // binary-search fast path.
    if (keys.size() > 1 && keys[keys.size() - 2] >= keys.back()) {
      throw std::invalid_argument(
          "TestOracle::prime_cache: pool must be key-sorted and unique");
    }
  }
  if (cache_->primed_with(keys)) return;
  std::vector<MutationSemantics> semantics;
  semantics.reserve(pool.size());
  for (const Mutation& m : pool) semantics.push_back(compute_semantics(m));
  cache_->prime(std::move(keys), std::move(semantics));
}

}  // namespace mwr::apr
