// Precomputed safe-mutation pool — phase 1 of MWRepair (paper §III-C).
//
// All prior search-based APR generates safe mutations on demand inside the
// inner search loop, which (a) re-tests duplicate mutations and (b) makes
// every synchronized iteration wait for the thread that happened to need
// the most safe mutations (the max-order-statistic stall the paper
// quantifies: with 64 threads drawing 1..100 mutations, ~99.9% of
// iterations pay the worst-decile cost).  Precomputing the pool is a
// one-time, embarrassingly-parallel cost that is amortized over every bug
// repaired in the same program, and it makes the online phase's per-probe
// work constant: draw a subset, run the suite once.
//
// The pool also supports incremental maintenance: when the regression suite
// grows (a repaired bug's trigger test is added), revalidate() re-runs the
// pool against the new oracle and drops members that the new tests expose.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apr/mutation.hpp"
#include "apr/test_oracle.hpp"

namespace mwr::apr {

struct PoolConfig {
  std::size_t target_size = 1000;   ///< safe mutations to collect.
  std::size_t max_attempts = 200000;///< candidate-generation budget.
  std::size_t threads = 4;          ///< parallel validation workers.
  std::uint64_t seed = 1;
};

class MutationPool {
 public:
  /// Phase-1 precompute: generate random candidate mutations, validate each
  /// against the required suite in parallel, and keep the safe ones
  /// (deduplicated) until target_size is reached or the attempt budget is
  /// exhausted.  Each suite run is counted on the oracle.
  [[nodiscard]] static MutationPool precompute(const TestOracle& oracle,
                                               const PoolConfig& config);

  /// Wraps already-validated mutations as a pool (deduplicated, sorted by
  /// key).  Used by callers with custom candidate generators — e.g. the
  /// fault-localization front-end — that did their own safety validation.
  [[nodiscard]] static MutationPool from_mutations(
      std::vector<Mutation> mutations);

  [[nodiscard]] std::span<const Mutation> mutations() const noexcept {
    return pool_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return pool_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pool_.empty(); }

  /// Candidates generated and validated during precompute.
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

  /// Re-runs every pool member against (a possibly different) oracle and
  /// drops the ones that no longer pass — the incremental-update path for a
  /// grown test suite.  Suite runs fan out over `threads` workers (order
  /// and survivors are identical to the serial pass — each member's verdict
  /// is independent).  Returns the number of dropped mutations.
  std::size_t revalidate(const TestOracle& oracle, std::size_t threads = 1);

 private:
  std::vector<Mutation> pool_;
  std::uint64_t attempts_ = 0;
};

}  // namespace mwr::apr
