#include "apr/mwrepair.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "apr/repair_session.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::apr {

MwRepair::MwRepair(MwRepairConfig config) : config_(config) {
  if (config_.arms == 0) throw std::invalid_argument("MwRepair: arms == 0");
  if (config_.max_count == 0)
    throw std::invalid_argument("MwRepair: max_count == 0");
  config_.arms = std::min(config_.arms, config_.max_count);
}

std::size_t MwRepair::count_for_arm(std::size_t arm) const {
  if (config_.arms == 1) return config_.max_count;
  // Geometric grid over [1, max_count]: repair-density optima range over
  // more than an order of magnitude across programs (11..271, §III-B), so
  // log spacing gives every scenario several arms near its mode instead of
  // wasting most of the grid far above small optima.
  const double t =
      static_cast<double>(arm) / static_cast<double>(config_.arms - 1);
  const double count =
      std::pow(static_cast<double>(config_.max_count), t);
  return std::min(config_.max_count,
                  static_cast<std::size_t>(std::lround(count)));
}

RepairOutcome MwRepair::run(const TestOracle& oracle,
                            const MutationPool& pool) const {
  if (pool.empty())
    throw std::invalid_argument("MwRepair::run: empty mutation pool");

  // The whole algorithm lives in RepairSession (one update cycle per
  // step(), checkpointable between cycles — see apr/repair_session.hpp);
  // run() is the batch driver: construct a session and step it to
  // completion.  The session performs every stochastic draw in the same
  // order this function historically did, so batch and stepped
  // trajectories are bit-identical.
  RepairSession session(config_, oracle, pool);

  // The expensive suite runs fan out over the worker pool; everything
  // stochastic (patch draws, proxy-acceptance draws) happens sequentially
  // first, so the outcome is identical for any eval_threads value.
  std::optional<parallel::ThreadPool> workers;
  if (config_.eval_threads > 1) workers.emplace(config_.eval_threads);

  while (!session.step(workers ? &*workers : nullptr)) {
  }
  return session.outcome();
}

EndToEndOutcome repair_scenario(const datasets::ScenarioSpec& spec,
                                const MwRepairConfig& repair_config,
                                const PoolConfig& pool_config) {
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  const MutationPool pool = MutationPool::precompute(oracle, pool_config);

  EndToEndOutcome outcome;
  outcome.precompute_attempts = pool.attempts();
  outcome.pool_size = pool.size();
  if (!pool.empty()) {
    const MwRepair repair(repair_config);
    outcome.repair = repair.run(oracle, pool);
  }
  outcome.total_suite_runs = oracle.suite_runs();
  return outcome;
}

}  // namespace mwr::apr
