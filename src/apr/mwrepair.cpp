#include "apr/mwrepair.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::apr {

MwRepair::MwRepair(MwRepairConfig config) : config_(config) {
  if (config_.arms == 0) throw std::invalid_argument("MwRepair: arms == 0");
  if (config_.max_count == 0)
    throw std::invalid_argument("MwRepair: max_count == 0");
  config_.arms = std::min(config_.arms, config_.max_count);
}

std::size_t MwRepair::count_for_arm(std::size_t arm) const {
  if (config_.arms == 1) return config_.max_count;
  // Geometric grid over [1, max_count]: repair-density optima range over
  // more than an order of magnitude across programs (11..271, §III-B), so
  // log spacing gives every scenario several arms near its mode instead of
  // wasting most of the grid far above small optima.
  const double t =
      static_cast<double>(arm) / static_cast<double>(config_.arms - 1);
  const double count =
      std::pow(static_cast<double>(config_.max_count), t);
  return std::min(config_.max_count,
                  static_cast<std::size_t>(std::lround(count)));
}

RepairOutcome MwRepair::run(const TestOracle& oracle,
                            const MutationPool& pool) const {
  if (pool.empty())
    throw std::invalid_argument("MwRepair::run: empty mutation pool");

  // Every phase-2 probe draws from this pool; memoize its semantics up
  // front so probes hit the oracle's lock-free pooled fast path.  No-op if
  // precompute already primed this pool (or the cache is disabled).
  oracle.prime_cache(pool.mutations());

  core::MwuConfig mwu_config;
  mwu_config.num_options = config_.arms;
  mwu_config.num_agents = config_.agents;
  mwu_config.max_iterations = config_.max_iterations;
  mwu_config.learning_rate = config_.learning_rate;
  mwu_config.exploration = config_.exploration;
  const auto strategy = core::make_mwu(config_.mwu, mwu_config);

  util::RngStream rng(config_.seed);
  const std::uint32_t baseline = oracle.baseline_fitness();
  const auto max_count = static_cast<double>(config_.max_count);

  // The expensive suite runs fan out over the worker pool; everything
  // stochastic (patch draws, proxy-acceptance draws) happens sequentially
  // first, so the outcome is identical for any eval_threads value.
  std::optional<parallel::ThreadPool> workers;
  if (config_.eval_threads > 1) workers.emplace(config_.eval_threads);

  // Online-phase telemetry, the Table II/IV quantities of the actual
  // repair search: completed cycles, suite-run probes, per-cycle wall
  // time, and the repaired/convergence flag at exit.
  auto& metrics = obs::MetricsRegistry::global();
  obs::Counter& cycle_counter = metrics.counter("repair.online.cycles");
  obs::Counter& probe_counter = metrics.counter("repair.online.probes");
  obs::Histogram& cycle_seconds =
      metrics.histogram("repair.online.cycle_seconds");
  const obs::ScopedTimer phase_timer(metrics.histogram("phase.online.seconds"));
  obs::Gauge& repaired_gauge = metrics.gauge("repair.repaired");

  RepairOutcome outcome;
  std::vector<double> rewards;
  std::vector<Patch> patches;
  std::vector<double> acceptance;
  std::vector<Evaluation> evaluations;
  for (std::size_t t = 0; t < config_.max_iterations; ++t) {
    const obs::ScopedTimer cycle_timer(cycle_seconds);
    const auto probes = strategy->sample(rng);           // MWU_Sample
    patches.clear();
    acceptance.clear();
    for (const std::size_t arm : probes) {
      const std::size_t count = std::min(count_for_arm(arm), pool.size());
      patches.push_back(sample_from_pool(pool.mutations(), count, rng));
      acceptance.push_back(rng.uniform());
    }

    evaluations.assign(patches.size(), Evaluation{});    // parallel evaluation
    if (workers) {
      workers->parallel_for_index(patches.size(), [&](std::size_t j) {
        evaluations[j] = oracle.evaluate(patches[j]);
      });
    } else {
      for (std::size_t j = 0; j < patches.size(); ++j) {
        evaluations[j] = oracle.evaluate(patches[j]);
      }
    }
    outcome.probes += patches.size();
    probe_counter.add(patches.size());

    rewards.assign(probes.size(), 0.0);
    for (std::size_t j = 0; j < patches.size(); ++j) {
      const Evaluation& e = evaluations[j];
      if (e.is_repair()) {                               // terminate early
        outcome.repaired = true;
        outcome.patch = patches[j];
        outcome.iterations = t + 1;
        outcome.preferred_count = patches[j].size();
        outcome.arm_probabilities = strategy->probabilities();
        cycle_counter.add(1);
        repaired_gauge.set(1.0);
        return outcome;
      }
      const bool fitness_kept = e.fitness() >= baseline;
      switch (config_.reward) {
        case RewardMode::kFitnessNonDecrease:
          rewards[j] = fitness_kept ? 1.0 : 0.0;
          break;
        case RewardMode::kSafeDensityProxy:
          // Accept in proportion to the validated combination size, making
          // E[reward | x] proportional to x * P(pass | x).
          rewards[j] = (fitness_kept &&
                        acceptance[j] < static_cast<double>(patches[j].size()) /
                                            max_count)
                           ? 1.0
                           : 0.0;
          break;
      }
    }
    strategy->update(probes, rewards, rng);              // MWU_Update
    ++outcome.iterations;
    cycle_counter.add(1);
  }
  outcome.preferred_count = count_for_arm(strategy->best_option());
  outcome.arm_probabilities = strategy->probabilities();
  repaired_gauge.set(0.0);
  return outcome;  // no repair within budget (Fig 6: return null)
}

EndToEndOutcome repair_scenario(const datasets::ScenarioSpec& spec,
                                const MwRepairConfig& repair_config,
                                const PoolConfig& pool_config) {
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  const MutationPool pool = MutationPool::precompute(oracle, pool_config);

  EndToEndOutcome outcome;
  outcome.precompute_attempts = pool.attempts();
  outcome.pool_size = pool.size();
  if (!pool.empty()) {
    const MwRepair repair(repair_config);
    outcome.repair = repair.run(oracle, pool);
  }
  outcome.total_suite_runs = oracle.suite_runs();
  return outcome;
}

}  // namespace mwr::apr
