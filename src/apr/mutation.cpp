#include "apr/mutation.hpp"

#include <algorithm>

namespace mwr::apr {

std::string to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kDelete:
      return "delete";
    case MutationKind::kInsert:
      return "insert";
    case MutationKind::kSwap:
      return "swap";
  }
  return "?";
}

std::uint64_t Mutation::key() const noexcept {
  std::uint32_t a = target;
  std::uint32_t b = (kind == MutationKind::kDelete) ? 0u : donor;
  if (kind == MutationKind::kSwap && b < a) std::swap(a, b);
  return (static_cast<std::uint64_t>(kind) << 62) |
         (static_cast<std::uint64_t>(a) << 31) | static_cast<std::uint64_t>(b);
}

void canonicalize(Patch& patch) {
  std::sort(patch.begin(), patch.end(),
            [](const Mutation& x, const Mutation& y) { return x.key() < y.key(); });
  patch.erase(std::unique(patch.begin(), patch.end(),
                          [](const Mutation& x, const Mutation& y) {
                            return x.key() == y.key();
                          }),
              patch.end());
}

Mutation random_mutation(const ProgramModel& program, util::RngStream& rng) {
  const auto& covered = program.covered_statements();
  Mutation m;
  m.kind = static_cast<MutationKind>(rng.uniform_index(3));
  m.target = covered[rng.uniform_index(covered.size())];
  if (m.kind != MutationKind::kDelete) {
    // Donor statements may come from anywhere in the program (GenProg's
    // "plastic surgery" assumption: fix material exists elsewhere in the
    // same program).
    m.donor = static_cast<std::uint32_t>(
        rng.uniform_index(program.num_statements()));
  }
  return m;
}

Patch random_patch(const ProgramModel& program, std::size_t size,
                   util::RngStream& rng) {
  Patch patch;
  patch.reserve(size);
  // Rejection on duplicates: the edit universe is vastly larger than any
  // patch, so collisions are rare and the loop terminates quickly.
  while (patch.size() < size) {
    const Mutation m = random_mutation(program, rng);
    const bool duplicate =
        std::any_of(patch.begin(), patch.end(), [&](const Mutation& other) {
          return other.key() == m.key();
        });
    if (!duplicate) patch.push_back(m);
  }
  canonicalize(patch);
  return patch;
}

Patch sample_from_pool(std::span<const Mutation> pool, std::size_t size,
                       util::RngStream& rng) {
  const std::size_t take = std::min(size, pool.size());
  Patch patch;
  patch.reserve(take);
  for (std::size_t index : rng.sample_without_replacement(pool.size(), take)) {
    patch.push_back(pool[index]);
  }
  canonicalize(patch);
  return patch;
}

}  // namespace mwr::apr
