#include "apr/mutation.hpp"

#include <algorithm>
#include <bit>

namespace mwr::apr {

std::string to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kDelete:
      return "delete";
    case MutationKind::kInsert:
      return "insert";
    case MutationKind::kSwap:
      return "swap";
  }
  return "?";
}

std::uint64_t Mutation::key() const noexcept {
  std::uint32_t a = target;
  std::uint32_t b = (kind == MutationKind::kDelete) ? 0u : donor;
  if (kind == MutationKind::kSwap && b < a) std::swap(a, b);
  return (static_cast<std::uint64_t>(kind) << 62) |
         (static_cast<std::uint64_t>(a) << 31) | static_cast<std::uint64_t>(b);
}

void canonicalize(Patch& patch) {
  std::sort(patch.begin(), patch.end(),
            [](const Mutation& x, const Mutation& y) { return x.key() < y.key(); });
  patch.erase(std::unique(patch.begin(), patch.end(),
                          [](const Mutation& x, const Mutation& y) {
                            return x.key() == y.key();
                          }),
              patch.end());
}

Mutation random_mutation(const ProgramModel& program, util::RngStream& rng) {
  const auto& covered = program.covered_statements();
  Mutation m;
  m.kind = static_cast<MutationKind>(rng.uniform_index(3));
  m.target = covered[rng.uniform_index(covered.size())];
  if (m.kind != MutationKind::kDelete) {
    // Donor statements may come from anywhere in the program (GenProg's
    // "plastic surgery" assumption: fix material exists elsewhere in the
    // same program).
    m.donor = static_cast<std::uint32_t>(
        rng.uniform_index(program.num_statements()));
  }
  return m;
}

Patch random_patch(const ProgramModel& program, std::size_t size,
                   util::RngStream& rng) {
  Patch patch;
  patch.reserve(size);
  // Rejection on duplicates: the edit universe is vastly larger than any
  // patch, so collisions are rare and the loop terminates quickly.
  while (patch.size() < size) {
    const Mutation m = random_mutation(program, rng);
    const bool duplicate =
        std::any_of(patch.begin(), patch.end(), [&](const Mutation& other) {
          return other.key() == m.key();
        });
    if (!duplicate) patch.push_back(m);
  }
  canonicalize(patch);
  return patch;
}

Patch sample_from_pool(std::span<const Mutation> pool, std::size_t size,
                       util::RngStream& rng) {
  const std::size_t take = std::min(size, pool.size());
  Patch patch;
  patch.reserve(take);
  for (std::size_t index : rng.sample_without_replacement(pool.size(), take)) {
    patch.push_back(pool[index]);
  }
  canonicalize(patch);
  return patch;
}

namespace {

// Per-thread scratch for the wave's per-probe sampling: an identity
// permutation restored after every call, the slots it touched, and a
// selection bitmap.  Hot enough (one call per staged probe) that the
// allocate + iota + std::sort of the generic path dominated epoch time.
thread_local std::vector<std::uint32_t> t_perm;
thread_local std::vector<std::uint32_t> t_touched;
thread_local std::vector<std::uint64_t> t_selected;

}  // namespace

void sample_from_pool_indexed(std::size_t pool_size, std::size_t size,
                              util::RngStream& rng,
                              std::vector<std::uint32_t>& out) {
  const std::size_t take = std::min(size, pool_size);
  out.clear();
  // Keep the scratch permutation grown to the largest pool seen; the
  // restore pass below maintains the identity invariant between calls.
  if (t_perm.size() < pool_size) {
    const std::size_t old = t_perm.size();
    t_perm.resize(pool_size);
    for (std::size_t i = old; i < pool_size; ++i)
      t_perm[i] = static_cast<std::uint32_t>(i);
  }
  const std::size_t words = (pool_size + 63) / 64;
  t_selected.assign(words, 0);
  t_touched.clear();
  // The exact partial Fisher–Yates draw sequence of
  // RngStream::sample_without_replacement — one uniform_index(pool - i)
  // per output — so RNG consumption and the selected set are
  // bit-identical to sample_from_pool's, with no allocation.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_index(pool_size - i));
    const std::uint32_t value = t_perm[j];
    t_perm[j] = t_perm[i];
    t_perm[i] = value;
    t_touched.push_back(static_cast<std::uint32_t>(j));
    t_selected[value >> 6] |= std::uint64_t{1} << (value & 63);
  }
  // Restore the identity permutation (only touched slots moved).
  for (std::size_t i = 0; i < take; ++i)
    t_perm[i] = static_cast<std::uint32_t>(i);
  for (const std::uint32_t j : t_touched) t_perm[j] = j;
  // Emit set bits in order: ascending indices over a key-sorted pool ==
  // canonicalize's key sort, and without-replacement draws are distinct,
  // so this replaces the former std::sort + unique outright.
  out.reserve(take);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = t_selected[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out.push_back(static_cast<std::uint32_t>(w * 64 +
                                               static_cast<std::size_t>(bit)));
    }
  }
}

}  // namespace mwr::apr
