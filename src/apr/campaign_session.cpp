#include "apr/campaign_session.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace mwr::apr {

namespace {
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_fold(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_fold(std::uint64_t h, double v) noexcept {
  return fnv_fold(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t fnv_fold(std::uint64_t h, const std::string& s) noexcept {
  h = fnv_fold(h, static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Identity of the campaign definition: every field of the base spec and
/// of the configuration that influences the trajectory.  A checkpoint
/// resumed against a different definition would silently diverge; the
/// fingerprint turns that into a loud error.
std::uint64_t campaign_fingerprint(const datasets::ScenarioSpec& spec,
                                   const CampaignConfig& config) {
  std::uint64_t h = kFnvOffset;
  h = fnv_fold(h, spec.name);
  h = fnv_fold(h, spec.language);
  h = fnv_fold(h, static_cast<std::uint64_t>(spec.options));
  h = fnv_fold(h, static_cast<std::uint64_t>(spec.statements));
  h = fnv_fold(h, static_cast<std::uint64_t>(spec.tests));
  h = fnv_fold(h, spec.coverage);
  h = fnv_fold(h, spec.safe_rate);
  h = fnv_fold(h, spec.repair_rate);
  h = fnv_fold(h, static_cast<std::uint64_t>(spec.optimum));
  h = fnv_fold(h, static_cast<std::uint64_t>(spec.min_repair_edits));
  h = fnv_fold(h, spec.value_noise);
  h = fnv_fold(h, spec.seed);
  h = fnv_fold(h, static_cast<std::uint64_t>(spec.bug_id));
  h = fnv_fold(h, static_cast<std::uint64_t>(spec.relevance_localized));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.bugs));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.grow_suite));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.pool.target_size));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.pool.max_attempts));
  h = fnv_fold(h, config.pool.seed);
  h = fnv_fold(h, static_cast<std::uint64_t>(config.repair.mwu));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.repair.arms));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.repair.max_count));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.repair.agents));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.repair.max_iterations));
  h = fnv_fold(h, static_cast<std::uint64_t>(config.repair.reward));
  h = fnv_fold(h, config.repair.learning_rate);
  h = fnv_fold(h, config.repair.exploration);
  h = fnv_fold(h, config.repair.seed);
  return h;
}
}  // namespace

CampaignSession::CampaignSession(datasets::ScenarioSpec base,
                                 CampaignConfig config,
                                 ScenarioServices* services)
    : base_(std::move(base)),
      config_(config),
      services_(services),
      fingerprint_(campaign_fingerprint(base_, config_)),
      current_tests_(base_.tests),
      trajectory_fold_(kFnvOffset) {
  auto& metrics = obs::MetricsRegistry::global();
  bugs_attempted_ = &metrics.counter("campaign.bugs_attempted");
  bugs_repaired_ = &metrics.counter("campaign.bugs_repaired");
  maintenance_runs_ = &metrics.counter("campaign.maintenance_runs");
  bug_seconds_hist_ = &metrics.histogram("campaign.bug_seconds");
}

CampaignSession::~CampaignSession() = default;

void CampaignSession::set_metric_scope(const std::string& prefix) {
  scope_ = std::make_unique<obs::ScopedMetrics>(
      obs::MetricsRegistry::global().scoped(prefix));
  scoped_cycles_ = &scope_->counter("online.cycles");
  scoped_probes_ = &scope_->counter("online.probes");
}

datasets::ScenarioSpec CampaignSession::bug_spec() const {
  datasets::ScenarioSpec spec = base_;
  spec.bug_id = bug_index_;
  if (config_.grow_suite) {
    // The suite has grown by one trigger test per repaired bug, capped at
    // the oracle's 64-test model limit.
    spec.tests = std::min<std::size_t>(64, base_.tests + repaired_so_far_);
  }
  return spec;
}

MwRepairConfig CampaignSession::bug_repair_config() const {
  MwRepairConfig repair_config = config_.repair;
  repair_config.max_count =
      std::min(repair_config.max_count, working_pool_.size());
  repair_config.seed = config_.repair.seed ^ (bug_index_ * 0x9e3779b9ULL);
  return repair_config;
}

void CampaignSession::open_bug_oracle() {
  const datasets::ScenarioSpec spec = bug_spec();
  if (services_ != nullptr) {
    bug_lease_ = services_->oracle_for(spec);
    return;
  }
  auto program = std::make_shared<const ProgramModel>(spec);
  auto oracle = std::make_shared<const TestOracle>(*program);
  bug_lease_ =
      ScenarioServices::OracleLease{std::move(program), std::move(oracle),
                                    /*shared=*/false};
}

void CampaignSession::do_precompute() {
  if (services_ != nullptr) {
    const auto lease = services_->base_pool(base_, config_.pool);
    working_pool_ = *lease.pool;
    outcome_.precompute_runs = lease.precompute_runs;
  } else {
    const ProgramModel program(base_);
    const TestOracle oracle(program);
    working_pool_ = MutationPool::precompute(oracle, config_.pool);
    outcome_.precompute_runs = oracle.suite_runs();
  }
  outcome_.initial_pool_size = working_pool_.size();
}

void CampaignSession::start_bug(parallel::ThreadPool* /*workers*/) {
  bugs_attempted_->add(1);
  if (scope_) scope_->counter("bugs_attempted").add(1);
  current_bug_ = BugOutcome{};
  current_bug_.bug_id = bug_index_;
  bug_seconds_ = 0.0;

  const datasets::ScenarioSpec spec = bug_spec();
  open_bug_oracle();

  // Incremental maintenance: revalidate the pool against the grown suite
  // (a no-op when nothing changed, a partial re-run otherwise).  The
  // revalidation cost is exactly one suite run per member — an identity
  // of MutationPool::revalidate — so the ledger is analytic and stays
  // correct when the oracle's global run counter is shared with other
  // campaigns.
  if (config_.grow_suite && spec.tests != current_tests_) {
    current_bug_.maintenance_runs = working_pool_.size();
    current_bug_.pool_dropped =
        working_pool_.revalidate(*bug_lease_.oracle, config_.pool.threads);
    current_tests_ = spec.tests;
  }
  current_bug_.pool_size = working_pool_.size();

  if (!working_pool_.empty()) {
    repair_ = std::make_unique<RepairSession>(
        bug_repair_config(), *bug_lease_.oracle, working_pool_,
        /*prime=*/!bug_lease_.shared);
    phase_ = Phase::kOnline;
  } else {
    finish_bug();
  }
}

void CampaignSession::finish_bug() {
  if (repair_) {
    const RepairOutcome& result = repair_->outcome();
    current_bug_.repaired = result.repaired;
    current_bug_.patch_edits = result.patch.size();
    current_bug_.online_probes = result.probes;
    current_bug_.online_cycles = result.iterations;
    trajectory_fold_ = fnv_fold(trajectory_fold_, repair_->trajectory_hash());
    if (result.repaired) ++repaired_so_far_;
    repair_.reset();
  }
  if (current_bug_.repaired) {
    bugs_repaired_->add(1);
    if (scope_) scope_->counter("bugs_repaired").add(1);
  }
  maintenance_runs_->add(current_bug_.maintenance_runs);
  if (scope_) {
    scope_->counter("maintenance_runs").add(current_bug_.maintenance_runs);
  }
  // The campaign-level fingerprint also pins the maintenance ledger.
  trajectory_fold_ = fnv_fold(trajectory_fold_, current_bug_.bug_id);
  trajectory_fold_ =
      fnv_fold(trajectory_fold_,
               static_cast<std::uint64_t>(current_bug_.repaired));
  trajectory_fold_ = fnv_fold(
      trajectory_fold_, static_cast<std::uint64_t>(current_bug_.patch_edits));
  trajectory_fold_ = fnv_fold(trajectory_fold_, current_bug_.online_probes);
  trajectory_fold_ = fnv_fold(
      trajectory_fold_, static_cast<std::uint64_t>(current_bug_.pool_dropped));
  trajectory_fold_ = fnv_fold(
      trajectory_fold_, static_cast<std::uint64_t>(current_bug_.pool_size));
  bug_seconds_hist_->observe(bug_seconds_);
  outcome_.bugs.push_back(current_bug_);
  bug_lease_ = ScenarioServices::OracleLease{};
  ++bug_index_;
  if (bug_index_ >= config_.bugs) {
    finalize();
  } else {
    phase_ = Phase::kBugStart;
  }
}

void CampaignSession::finalize() {
  obs::MetricsRegistry::global()
      .gauge("campaign.converged")
      .set(repaired_so_far_ == config_.bugs ? 1.0 : 0.0);
  trajectory_fold_ =
      fnv_fold(trajectory_fold_, static_cast<std::uint64_t>(repaired_so_far_));
  if (scope_) scope_->gauge("done").set(1.0);
  phase_ = Phase::kDone;
}

std::size_t CampaignSession::step(std::size_t budget,
                                  parallel::ThreadPool* workers) {
  std::size_t used = 0;
  probes_last_step_ = 0;
  while (phase_ != Phase::kDone && used < budget) {
    // obs::ScopedTimer is the only clock apr may touch (bit-identity lint
    // domain); cancel() detaches it so we can accumulate elapsed time
    // manually across steps into one per-bug observation.
    obs::ScopedTimer unit_timer(*bug_seconds_hist_);
    unit_timer.cancel();
    switch (phase_) {
      case Phase::kPrecompute:
        do_precompute();
        phase_ = Phase::kBugStart;
        ++used;
        break;
      case Phase::kBugStart:
        if (bug_index_ >= config_.bugs) {
          // bugs == 0 (or a snapshot taken at the boundary): nothing to
          // start — finalize instead of marching bug_index_ forever.
          finalize();
          ++used;
          break;
        }
        start_bug(workers);
        bug_seconds_ += unit_timer.elapsed_seconds();
        ++used;
        break;
      case Phase::kOnline: {
        const bool finished = repair_->step(workers);
        probes_last_step_ += repair_->probes_last_cycle();
        if (scope_) {
          scoped_cycles_->add(1);
          scoped_probes_->add(repair_->probes_last_cycle());
        }
        bug_seconds_ += unit_timer.elapsed_seconds();
        if (finished) finish_bug();
        ++used;
        break;
      }
      case Phase::kFinishBug:
        // Never a resting state (finish_bug runs inline above); kept so a
        // snapshot's phase value space is total.
        finish_bug();
        break;
      case Phase::kDone:
        break;
    }
  }
  return used;
}

std::size_t CampaignSession::stage_unit(std::size_t& staged_probes) {
  staged_probes = 0;
  probes_last_step_ = 0;
  while (phase_ != Phase::kDone) {
    obs::ScopedTimer unit_timer(*bug_seconds_hist_);
    unit_timer.cancel();
    switch (phase_) {
      case Phase::kPrecompute:
        do_precompute();
        phase_ = Phase::kBugStart;
        return 1;
      case Phase::kBugStart:
        if (bug_index_ >= config_.bugs) {
          finalize();
          return 1;
        }
        start_bug(nullptr);
        bug_seconds_ += unit_timer.elapsed_seconds();
        return 1;
      case Phase::kOnline:
        staged_probes = repair_->begin_cycle();
        unit_staged_ = true;
        bug_seconds_ += unit_timer.elapsed_seconds();
        return 1;
      case Phase::kFinishBug:
        // Never a resting state (complete_unit closes bugs inline); kept
        // for snapshot-phase totality, exactly as in step().
        finish_bug();
        break;
      case Phase::kDone:
        break;
    }
  }
  return 0;
}

void CampaignSession::evaluate_staged(std::size_t j) {
  repair_->evaluate_staged(j);
}

void CampaignSession::complete_unit(double elapsed_seconds) {
  if (!unit_staged_) return;
  unit_staged_ = false;
  const bool finished = repair_->finish_cycle(elapsed_seconds);
  probes_last_step_ += repair_->probes_last_cycle();
  if (scope_) {
    scoped_cycles_->add(1);
    scoped_probes_->add(repair_->probes_last_cycle());
  }
  bug_seconds_ += elapsed_seconds;
  if (finished) finish_bug();
}

std::uint64_t CampaignSession::trajectory_hash() const noexcept {
  if (repair_) return fnv_fold(trajectory_fold_, repair_->trajectory_hash());
  return trajectory_fold_;
}

CampaignSnapshot CampaignSession::snapshot() const {
  if (unit_staged_) {
    // Snapshots are cycle-boundary artifacts; a staged cycle has drawn
    // RNG state the snapshot cannot represent mid-flight.
    throw std::logic_error(
        "CampaignSession::snapshot: probe wave in flight — complete the "
        "staged unit first");
  }
  CampaignSnapshot snap;
  snap.fingerprint = fingerprint_;
  snap.phase = static_cast<std::uint32_t>(phase_);
  snap.bug_index = bug_index_;
  snap.repaired_so_far = repaired_so_far_;
  snap.current_tests = current_tests_;
  snap.precompute_runs = outcome_.precompute_runs;
  snap.initial_pool_size = outcome_.initial_pool_size;
  snap.trajectory_hash = trajectory_fold_;
  snap.finished_bugs = outcome_.bugs;
  snap.current_bug = current_bug_;
  snap.working_pool.assign(working_pool_.mutations().begin(),
                           working_pool_.mutations().end());
  if (repair_ && !repair_->done()) {
    snap.has_repair_state = true;
    snap.repair = repair_->save();
  }
  return snap;
}

std::unique_ptr<CampaignSession> CampaignSession::resume(
    const CampaignSnapshot& snap, datasets::ScenarioSpec base,
    CampaignConfig config, ScenarioServices* services) {
  auto session = std::make_unique<CampaignSession>(std::move(base),
                                                   std::move(config), services);
  if (snap.fingerprint != session->fingerprint_) {
    throw std::invalid_argument(
        "CampaignSession::resume: snapshot fingerprint mismatch (different "
        "scenario or configuration)");
  }
  const auto phase = static_cast<Phase>(snap.phase);
  if (phase == Phase::kPrecompute) return session;  // nothing ran yet.

  session->phase_ = phase;
  session->bug_index_ = snap.bug_index;
  session->repaired_so_far_ = snap.repaired_so_far;
  session->current_tests_ = snap.current_tests;
  session->outcome_.precompute_runs = snap.precompute_runs;
  session->outcome_.initial_pool_size = snap.initial_pool_size;
  session->outcome_.bugs = snap.finished_bugs;
  session->current_bug_ = snap.current_bug;
  session->trajectory_fold_ = snap.trajectory_hash;
  session->working_pool_ = MutationPool::from_mutations(snap.working_pool);

  if (phase == Phase::kOnline) {
    if (!snap.has_repair_state) {
      throw std::invalid_argument(
          "CampaignSession::resume: online phase without repair state");
    }
    session->open_bug_oracle();
    session->repair_ = std::make_unique<RepairSession>(
        session->bug_repair_config(), *session->bug_lease_.oracle,
        session->working_pool_, /*prime=*/!session->bug_lease_.shared);
    session->repair_->restore(snap.repair);
  }
  return session;
}

}  // namespace mwr::apr
