// Step-wise execution of the MWRepair online phase (Fig 6) — one update
// cycle per step() call.
//
// MwRepair::run() is the right shape for a batch CLI but the wrong shape
// for a server: a daemon multiplexing thousands of campaigns needs to
// advance each search a few cycles at a time (deficit-round-robin
// scheduling), checkpoint a search between cycles, and resume it after a
// restart without replaying paid-for probes.  RepairSession is the same
// algorithm unrolled into a resumable object: construct, call step()
// until it returns true, read outcome().  MwRepair::run() is now a thin
// loop over a session, so the two paths cannot diverge — every draw from
// the RngStream happens in the same order as the historical monolithic
// loop, making session-stepped trajectories bit-identical to run() (and
// to every prior release).
//
// Checkpointing: save() captures everything the next cycle depends on —
// MWU strategy state (core::export_state), the 256-bit RNG state, cycle /
// probe counters, and the running trajectory hash.  restore() into a
// freshly constructed session over the same oracle + pool continues the
// search bit-identically (pinned by tests/test_serve.cpp).  Snapshots are
// only meaningful at cycle boundaries, which is the only place step()
// returns control.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apr/mwrepair.hpp"
#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "core/mwu.hpp"
#include "obs/metrics.hpp"

namespace mwr::parallel {
class ThreadPool;
}  // namespace mwr::parallel

namespace mwr::apr {

class RepairSession {
 public:
  /// Mid-search state between two update cycles; everything is plain
  /// numbers so checkpoint writers can encode it losslessly.
  struct State {
    std::vector<double> strategy;          ///< core::export_state vector.
    std::uint64_t rng_seed = 0;
    std::array<std::uint64_t, 4> rng_state{};
    std::uint64_t iterations = 0;          ///< completed update cycles.
    std::uint64_t probes = 0;              ///< suite runs so far.
    std::uint64_t trajectory_hash = 0;
  };

  /// `oracle` and `pool` must outlive the session.  When `prime` is true
  /// (the single-tenant default) the pool's semantics are memoized into
  /// the oracle cache up front, exactly as MwRepair::run() always did;
  /// servers sharing one oracle across tenants pass false and prime once
  /// centrally (re-priming with a diverged working pool would race
  /// concurrent evaluations — see serve/oracle_hub.hpp).
  RepairSession(const MwRepairConfig& config, const TestOracle& oracle,
                const MutationPool& pool, bool prime = true);

  /// Runs one MWU update cycle (sample -> probe -> reward -> update), or
  /// finishes early when a probe repairs.  Returns true when the session
  /// is done (repair found or iteration budget exhausted); further calls
  /// are no-ops returning true.  `workers` optionally fans the suite runs
  /// out (bit-identical for any worker count, as in MwRepair::run).
  /// Implemented as begin_cycle / evaluate_staged / finish_cycle below, so
  /// the stepped and staged paths are one code path.
  bool step(parallel::ThreadPool* workers = nullptr);

  // --- staged execution (the serve probe wave, DESIGN.md §14) ---
  //
  // A cycle splits into three phases so a server can batch the probe
  // evaluations of many campaigns into one parallel sweep:
  //
  //   begin_cycle()       all of the cycle's stochastic draws (arm sample,
  //                       patch draws, acceptance) plus their trajectory
  //                       folds — everything RNG-ordered happens here, in
  //                       the same order as the monolithic step().
  //   evaluate_staged(j)  evaluates staged probe j.  Pure and memoized:
  //                       callable concurrently for distinct j, in any
  //                       order, interleaved with other sessions' probes.
  //   finish_cycle()      rewards, MWU update, early-repair exit, budget
  //                       check — bit-identical to step()'s tail.
  //
  // step() == begin_cycle + evaluate all + finish_cycle, so the two
  // shapes cannot diverge.

  /// Stages one cycle's probes; returns how many (0 when already done).
  /// Every call must be matched by finish_cycle() after all staged
  /// probes were evaluated.
  std::size_t begin_cycle();
  /// Evaluates staged probe `j` (< begin_cycle()'s return value).
  /// Thread-safe across distinct j on one session and across sessions
  /// sharing an oracle.
  void evaluate_staged(std::size_t j);
  /// Completes the staged cycle; returns true when the session finished.
  /// `elapsed_seconds` is the caller-attributed wall time of the cycle
  /// (telemetry only — never trajectory-relevant).
  bool finish_cycle(double elapsed_seconds = 0.0);

  /// True when this session evaluates probes through the oracle's eager
  /// wave table (index-space sampling, no per-patch sort or cache
  /// probing).  Purely an execution detail: trajectories are
  /// bit-identical either way.
  [[nodiscard]] bool wave_fast_path() const noexcept {
    return wave_fast_path_;
  }

  [[nodiscard]] bool done() const noexcept { return done_; }
  /// Valid once done(); partially filled (probes/iterations) before that.
  [[nodiscard]] const RepairOutcome& outcome() const noexcept {
    return outcome_;
  }
  /// Suite runs the most recent step() issued (per-cycle cost for
  /// scheduler accounting and probe-latency math).
  [[nodiscard]] std::size_t probes_last_cycle() const noexcept {
    return probes_last_cycle_;
  }
  /// Running FNV-1a fold over every sampled arm, drawn patch, and reward
  /// of the search so far — the bit-identity fingerprint the
  /// checkpoint/resume tests compare.
  [[nodiscard]] std::uint64_t trajectory_hash() const noexcept {
    return trajectory_hash_;
  }

  [[nodiscard]] const MwRepairConfig& config() const noexcept {
    return repair_.config();
  }

  /// Snapshot between cycles; callable only while !done().
  [[nodiscard]] State save() const;
  /// Restores a snapshot taken from an identically configured session
  /// over the same (oracle, pool).  Throws std::invalid_argument on a
  /// strategy-state shape mismatch.
  void restore(const State& state);

 private:
  void finish(bool repaired);

  MwRepair repair_;                  // validated/clamped config + arm grid.
  const TestOracle* oracle_;
  const MutationPool* pool_;
  std::unique_ptr<core::MwuStrategy> strategy_;
  util::RngStream rng_;
  std::uint32_t baseline_;
  bool done_ = false;
  std::size_t probes_last_cycle_ = 0;
  std::uint64_t trajectory_hash_;
  RepairOutcome outcome_;
  double online_seconds_ = 0.0;      // accumulated across steps.

  // Wave fast path (serve): working-pool position -> primed-pool position.
  // Usable only when every working member is byte-equal to the pool member
  // its key names (swap orientation matters for coverage); monotone, since
  // both pools are key-sorted.
  bool wave_fast_path_ = false;
  bool wave_identity_ = false;  ///< map is the identity — skip translation.
  std::vector<std::uint32_t> wave_map_;

  // Scratch reused across cycles (same vectors the monolithic loop kept).
  std::vector<Patch> patches_;
  std::vector<std::vector<std::uint32_t>> index_patches_;  // wave path.
  std::vector<std::size_t> staged_arms_;
  std::vector<double> acceptance_;
  std::vector<Evaluation> evaluations_;
  std::vector<double> rewards_;

  // Global telemetry handles, fetched once (same names as MwRepair::run).
  obs::Counter* cycle_counter_;
  obs::Counter* probe_counter_;
  obs::Histogram* cycle_seconds_;
  obs::Histogram* phase_seconds_;
  obs::Gauge* repaired_gauge_;
};

}  // namespace mwr::apr
