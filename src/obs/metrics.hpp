// Metric primitives for the observability layer: lock-free counters and
// gauges, fixed-bucket histograms, and an RAII timer that feeds them.
//
// The paper's evaluation is entirely about counted quantities — update
// cycles to convergence (Table II), oracle probes and CPU-iterations
// (Table IV), per-cycle congestion (Table I) — so the primitives mirror
// those shapes: monotone Counters for cycles/probes/messages, Gauges for
// point-in-time values and high-water marks, Histograms for latency and
// per-worker load distributions.  All mutation paths are single atomic
// RMW operations (relaxed ordering: metrics never synchronize program
// state), cheap enough for the per-message and per-task hot paths.
//
// Instances are normally owned by a MetricsRegistry (obs/registry.hpp),
// which hands out stable references and serializes snapshots to JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mwr::obs {

namespace detail {
/// fetch_add for atomic<double> via CAS (portable across libstdc++
/// versions that lack C++20 atomic floating-point RMW).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Monotone max update via CAS; no-op when `value` does not exceed it.
inline void atomic_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (current < value && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (current > value && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically-increasing event count (probes, cycles, messages).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value: set, accumulate, or track a high-water mark.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  /// Raises the gauge to `v` if above the current value (queue-depth /
  /// congestion high-water marks).
  void record_max(double v) noexcept { detail::atomic_max(value_, v); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with cumulative-friendly semantics: bucket i
/// counts observations v <= upper_bounds[i] (first matching bucket), and
/// one overflow bucket catches everything above the last bound.  Also
/// tracks count, sum, min, and max so snapshots can report means and
/// tails without reconfiguring buckets.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; throws
  /// std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  /// Observations in bucket i; i == upper_bounds().size() is the overflow
  /// bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest observation; 0 when empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  void reset() noexcept;

  /// `count` bounds starting at `start`, each `factor` times the last —
  /// the standard latency-bucket layout (factor > 1, start > 0).
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double start, double factor, std::size_t count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// RAII stopwatch: records elapsed wall-clock seconds into a histogram at
/// scope exit.  Wrap one update cycle / precompute phase / probe batch:
///
///   { obs::ScopedTimer t(registry.histogram("phase.online.seconds")); ... }
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(&sink), start_(Clock::now()) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe(elapsed_seconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Detaches the timer: nothing is recorded at destruction.
  void cancel() noexcept { sink_ = nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* sink_;
  Clock::time_point start_;
};

}  // namespace mwr::obs
