#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mwr::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: no bucket bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper bound admits v; one past the end = overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (i > bounds_.size())
    throw std::out_of_range("Histogram::bucket_count: bad bucket index");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0) {
    throw std::invalid_argument(
        "Histogram::exponential_bounds: need start > 0, factor > 1, "
        "count > 0");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

}  // namespace mwr::obs
