#include "obs/registry.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace mwr::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, default_latency_bounds());
}

std::vector<double> MetricsRegistry::default_latency_bounds() {
  // 1us .. ~134s in powers of 4: wide enough for a per-message push and a
  // full precompute phase to land in interior buckets.
  return Histogram::exponential_bounds(1e-6, 4.0, 14);
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

namespace {
bool has_prefix(const std::string& name, const std::string& prefix) {
  return name.size() >= prefix.size() &&
         name.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

JsonValue MetricsRegistry::to_json() const { return to_json_filtered(""); }

JsonValue MetricsRegistry::to_json_filtered(const std::string& prefix) const {
  util::MutexLock lock(mutex_);
  JsonValue root = JsonValue::object();
  root.set("schema", "mwr-metrics-v1");

  JsonValue counters = JsonValue::object();
  for (const auto& [name, counter] : counters_) {
    if (!has_prefix(name, prefix)) continue;
    counters.set(name, counter->value());
  }
  root.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, gauge] : gauges_) {
    if (!has_prefix(name, prefix)) continue;
    gauges.set(name, gauge->value());
  }
  root.set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::object();
  for (const auto& [name, histogram] : histograms_) {
    if (!has_prefix(name, prefix)) continue;
    JsonValue h = JsonValue::object();
    JsonValue le = JsonValue::array();
    for (const double bound : histogram->upper_bounds()) le.push_back(bound);
    h.set("le", std::move(le));
    JsonValue counts = JsonValue::array();
    for (std::size_t i = 0; i <= histogram->upper_bounds().size(); ++i) {
      counts.push_back(histogram->bucket_count(i));
    }
    h.set("counts", std::move(counts));
    h.set("count", histogram->count());
    h.set("sum", histogram->sum());
    h.set("min", histogram->min());
    h.set("max", histogram->max());
    histograms.set(name, std::move(h));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::to_json_string() const {
  return to_json().dump(/*indent=*/2);
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("MetricsRegistry::write_json: cannot open " +
                             path);
  file << to_json_string() << "\n";
  if (!file)
    throw std::runtime_error("MetricsRegistry::write_json: write failed: " +
                             path);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace mwr::obs
