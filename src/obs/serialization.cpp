#include "obs/serialization.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace mwr::obs {

namespace {

[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error(std::string("JsonValue: not a ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  // JSON has no inf/nan; clamp to the largest finite double so a snapshot
  // with an empty histogram min/max still parses everywhere.
  if (std::isnan(d)) {
    out += "null";
    return;
  }
  if (std::isinf(d)) {
    d = d > 0 ? std::numeric_limits<double>::max()
              : std::numeric_limits<double>::lowest();
  }
  char buf[40];
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", d);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos) + ": " + what);
  }

  void skip_whitespace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text.compare(pos, n, literal) != 0) return false;
    pos += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only — enough for metric names).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue(d);
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') {
      ++pos;
      JsonValue::Object obj;
      skip_whitespace();
      if (peek() == '}') {
        ++pos;
        return JsonValue(std::move(obj));
      }
      for (;;) {
        skip_whitespace();
        std::string key = parse_string();
        skip_whitespace();
        expect(':');
        obj.emplace_back(std::move(key), parse_value());
        skip_whitespace();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return JsonValue(std::move(obj));
      }
    }
    if (c == '[') {
      ++pos;
      JsonValue::Array arr;
      skip_whitespace();
      if (peek() == ']') {
        ++pos;
        return JsonValue(std::move(arr));
      }
      for (;;) {
        arr.push_back(parse_value());
        skip_whitespace();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return JsonValue(std::move(arr));
      }
    }
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue(nullptr);
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }
};

void dump_to(const JsonValue& value, std::string& out, int indent, int depth);

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

void dump_to(const JsonValue& value, std::string& out, int indent, int depth) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(out, value.as_double());
  } else if (value.is_string()) {
    append_escaped(out, value.as_string());
  } else if (value.is_array()) {
    const auto& arr = value.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      append_newline_indent(out, indent, depth + 1);
      dump_to(arr[i], out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = value.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i) out.push_back(',');
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, obj[i].first);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_to(obj[i].second, out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

}  // namespace

bool JsonValue::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(value_);
}
bool JsonValue::is_bool() const noexcept {
  return std::holds_alternative<bool>(value_);
}
bool JsonValue::is_number() const noexcept {
  return std::holds_alternative<double>(value_);
}
bool JsonValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(value_);
}
bool JsonValue::is_array() const noexcept {
  return std::holds_alternative<Array>(value_);
}
bool JsonValue::is_object() const noexcept {
  return std::holds_alternative<Object>(value_);
}

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return std::get<bool>(value_);
}
double JsonValue::as_double() const {
  if (!is_number()) kind_error("number");
  return std::get<double>(value_);
}
const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string");
  return std::get<std::string>(value_);
}
const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_error("array");
  return std::get<Array>(value_);
}
const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_error("object");
  return std::get<Object>(value_);
}

bool JsonValue::contains(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw std::out_of_range("JsonValue::at: no key \"" + key + "\"");
}

void JsonValue::set(std::string key, JsonValue value) {
  if (is_null()) value_ = Object{};
  if (!is_object()) kind_error("object");
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  if (is_null()) value_ = Array{};
  if (!is_array()) kind_error("array");
  std::get<Array>(value_).push_back(std::move(value));
}

std::size_t JsonValue::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  kind_error("container");
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  Parser parser{text};
  JsonValue value = parser.parse_value();
  parser.skip_whitespace();
  if (parser.pos != text.size()) parser.fail("trailing garbage");
  return value;
}

}  // namespace mwr::obs
