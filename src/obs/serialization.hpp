// Minimal JSON document model for the observability layer.
//
// Metrics snapshots leave the process as JSON (the CI pipeline gates on
// them), and the test suite round-trips snapshots back in, so both a
// writer and a reader live here.  The model is deliberately small: the
// six JSON kinds, insertion-ordered objects (stable, diffable output),
// and full-precision doubles that survive dump -> parse -> dump.  It is
// not a general-purpose JSON library — no comments, no trailing commas,
// no \u surrogate pairs beyond the BMP — just the subset metrics need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace mwr::obs {

/// One JSON value: null, bool, number, string, array, or object.
/// Objects preserve insertion order so snapshots diff cleanly run-to-run.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() noexcept : value_(nullptr) {}
  JsonValue(std::nullptr_t) noexcept : value_(nullptr) {}
  JsonValue(bool b) noexcept : value_(b) {}
  JsonValue(double d) noexcept : value_(d) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  [[nodiscard]] static JsonValue object() { return JsonValue(Object{}); }
  [[nodiscard]] static JsonValue array() { return JsonValue(Array{}); }

  [[nodiscard]] bool is_null() const noexcept;
  [[nodiscard]] bool is_bool() const noexcept;
  [[nodiscard]] bool is_number() const noexcept;
  [[nodiscard]] bool is_string() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;
  [[nodiscard]] bool is_object() const noexcept;

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object access.  at() throws std::out_of_range for a missing key.
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Inserts or overwrites `key` (object only; converts a null in place).
  void set(std::string key, JsonValue value);

  /// Array append (array only; converts a null in place).
  void push_back(JsonValue value);

  [[nodiscard]] std::size_t size() const;

  /// Serializes the value.  indent < 0 emits compact one-line JSON;
  /// indent >= 0 pretty-prints with that many spaces per level.  Doubles
  /// are written with enough digits to round-trip; integral doubles are
  /// written without a fractional part (counter values stay integers).
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  [[nodiscard]] static JsonValue parse(const std::string& text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace mwr::obs
