// Process-wide metrics registry: named-metric lookup plus JSON export.
//
// Subsystems grab stable references to their metrics once (handles stay
// valid for the registry's lifetime; reset() zeroes values but never
// invalidates a handle) and mutate them lock-free on the hot path.  The
// run harness snapshots everything at exit with to_json()/write_json(),
// which is the machine-readable artifact the CI pipeline gates on.
//
// Naming convention: dot-separated "<subsystem>.<quantity>[_<unit>]",
// e.g. "repair.online.probes", "thread_pool.queue_wait_seconds".
// DESIGN.md §7 maps the names onto the paper's Table II/IV quantities.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/serialization.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::obs {

/// Thread-safe name -> metric map.  Lookups take a mutex (amortize them:
/// fetch handles once, outside loops); the returned references are
/// mutation-safe from any thread.  Counter/gauge/histogram names live in
/// separate namespaces.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric.  References remain valid until
  /// the registry is destroyed.
  [[nodiscard]] Counter& counter(const std::string& name)
      MWR_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(const std::string& name) MWR_EXCLUDES(mutex_);
  /// For an existing histogram the bounds argument is ignored — the first
  /// registration wins (concurrent users must agree on the layout).
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_bounds)
      MWR_EXCLUDES(mutex_);
  /// Histogram with the default latency layout (1 microsecond to ~2
  /// minutes, powers of 4), the layout for every *_seconds metric.
  [[nodiscard]] Histogram& histogram(const std::string& name)
      MWR_EXCLUDES(mutex_);

  [[nodiscard]] static std::vector<double> default_latency_bounds();

  /// Zeroes every registered metric; handles stay valid.  Call between
  /// independent runs sharing one process (bench replications, tests).
  void reset() MWR_EXCLUDES(mutex_);

  /// Snapshot of every metric:
  ///   {"schema": "mwr-metrics-v1",
  ///    "counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"le": [bounds...], "counts": [... overflow],
  ///                          "count": n, "sum": s, "min": m, "max": M}}}
  [[nodiscard]] JsonValue to_json() const MWR_EXCLUDES(mutex_);
  [[nodiscard]] std::string to_json_string() const;  ///< pretty-printed.
  /// Writes the pretty-printed snapshot; throws std::runtime_error on I/O
  /// failure.
  void write_json(const std::string& path) const;

  /// The process-wide registry all built-in instrumentation reports to.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  // The maps are guarded; the *metrics* they point to are deliberately
  // not — handles mutate lock-free (relaxed atomics) by design, and the
  // ordered std::map keeps JSON snapshots deterministically sorted.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MWR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      MWR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MWR_GUARDED_BY(mutex_);
};

}  // namespace mwr::obs
