// Process-wide metrics registry: named-metric lookup plus JSON export.
//
// Subsystems grab stable references to their metrics once (handles stay
// valid for the registry's lifetime; reset() zeroes values but never
// invalidates a handle) and mutate them lock-free on the hot path.  The
// run harness snapshots everything at exit with to_json()/write_json(),
// which is the machine-readable artifact the CI pipeline gates on.
//
// Naming convention: dot-separated "<subsystem>.<quantity>[_<unit>]",
// e.g. "repair.online.probes", "thread_pool.queue_wait_seconds".
// DESIGN.md §7 maps the names onto the paper's Table II/IV quantities.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/serialization.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::obs {

class ScopedMetrics;

/// Thread-safe name -> metric map.  Lookups take a mutex (amortize them:
/// fetch handles once, outside loops); the returned references are
/// mutation-safe from any thread.  Counter/gauge/histogram names live in
/// separate namespaces.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric.  References remain valid until
  /// the registry is destroyed.
  [[nodiscard]] Counter& counter(const std::string& name)
      MWR_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(const std::string& name) MWR_EXCLUDES(mutex_);
  /// For an existing histogram the bounds argument is ignored — the first
  /// registration wins (concurrent users must agree on the layout).
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_bounds)
      MWR_EXCLUDES(mutex_);
  /// Histogram with the default latency layout (1 microsecond to ~2
  /// minutes, powers of 4), the layout for every *_seconds metric.
  [[nodiscard]] Histogram& histogram(const std::string& name)
      MWR_EXCLUDES(mutex_);

  [[nodiscard]] static std::vector<double> default_latency_bounds();

  /// Zeroes every registered metric; handles stay valid.  Call between
  /// independent runs sharing one process (bench replications, tests).
  void reset() MWR_EXCLUDES(mutex_);

  /// Snapshot of every metric:
  ///   {"schema": "mwr-metrics-v1",
  ///    "counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"le": [bounds...], "counts": [... overflow],
  ///                          "count": n, "sum": s, "min": m, "max": M}}}
  [[nodiscard]] JsonValue to_json() const MWR_EXCLUDES(mutex_);
  [[nodiscard]] std::string to_json_string() const;  ///< pretty-printed.
  /// Writes the pretty-printed snapshot; throws std::runtime_error on I/O
  /// failure.
  void write_json(const std::string& path) const;

  /// Snapshot restricted to names starting with `prefix` (same shape as
  /// to_json()).  The campaign server uses this with "campaign/<id>/" to
  /// extract one tenant's view from the shared registry.
  [[nodiscard]] JsonValue to_json_filtered(const std::string& prefix) const
      MWR_EXCLUDES(mutex_);

  /// A view over this registry that transparently prefixes every metric
  /// name with "<prefix>/", giving one tenant an isolated namespace over
  /// the shared map (same handles-stay-valid guarantees).
  [[nodiscard]] ScopedMetrics scoped(const std::string& prefix);

  /// The process-wide registry all built-in instrumentation reports to.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  // The maps are guarded; the *metrics* they point to are deliberately
  // not — handles mutate lock-free (relaxed atomics) by design, and the
  // ordered std::map keeps JSON snapshots deterministically sorted.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MWR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      MWR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MWR_GUARDED_BY(mutex_);
};

/// Per-tenant prefix view (MetricsRegistry::scoped).  Copyable and cheap;
/// the underlying registry must outlive every view.  Names resolve to
/// "<prefix>/<name>" in the parent, so a server multiplexing campaigns
/// records "campaign/7/repair.online.probes" through the same lock-free
/// handles as everything else, and to_json_filtered("campaign/7/")
/// recovers the tenant's slice.
class ScopedMetrics {
 public:
  ScopedMetrics(MetricsRegistry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {
    if (prefix_.empty() || prefix_.back() != '/') prefix_ += '/';
  }

  [[nodiscard]] Counter& counter(const std::string& name) {
    return registry_->counter(prefix_ + name);
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    return registry_->gauge(prefix_ + name);
  }
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_bounds) {
    return registry_->histogram(prefix_ + name, std::move(upper_bounds));
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return registry_->histogram(prefix_ + name);
  }

  /// The tenant's snapshot slice.
  [[nodiscard]] JsonValue to_json() const {
    return registry_->to_json_filtered(prefix_);
  }

  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }
  [[nodiscard]] MetricsRegistry& registry() const noexcept {
    return *registry_;
  }

 private:
  MetricsRegistry* registry_;
  std::string prefix_;  // always ends in '/'.
};

inline ScopedMetrics MetricsRegistry::scoped(const std::string& prefix) {
  return ScopedMetrics(*this, prefix);
}

}  // namespace mwr::obs
