// Table I of the paper: the asymptotic properties of the three MWU
// realizations, expressed uniformly in the same variables —
//   k       number of options
//   n       number of nodes (agents)
//   eps     error tolerance (Standard/Slate; depends on eta)
//   delta   ln(beta / (1 - beta)), beta = attention to the latest
//           observation (Distributed)
//
//               Standard        Distributed               Slate
//   comm        O(n)            O(ln n / ln ln n) *       O(n)
//   memory      O(k)            O(1)                      O(k)
//   convergence O(ln k / eps^2) O(ln k / delta)           O(k ln k / eps^2)
//   min agents  O(n)            O(k^(1/delta)) *          O(n)
//   (* holds with probability at least 1 - 1/n)
//
// Besides the symbolic forms (for the Table I bench), numeric evaluators
// let the weighted cost model of §IV-E compare algorithms at concrete
// (k, n) operating points.
#pragma once

#include <cstddef>
#include <string>

#include "core/mwu.hpp"

namespace mwr::costmodel {

/// The four rows of Table I.
enum class Property { kCommunication, kMemory, kConvergence, kMinAgents };

[[nodiscard]] std::string to_string(Property property);

/// The symbolic big-O cell of Table I for (algorithm, property).
[[nodiscard]] std::string symbolic(core::MwuKind kind, Property property);

/// Whether the bound is of the high-probability (starred) type.
[[nodiscard]] bool high_probability(core::MwuKind kind, Property property);

/// Concrete operating point for numeric evaluation.
struct OperatingPoint {
  std::size_t options = 100;   ///< k
  std::size_t agents = 64;     ///< n
  double epsilon = 0.05;       ///< Standard/Slate error tolerance
  double beta = 0.75;          ///< Distributed attention parameter
};

/// delta = ln(beta / (1 - beta)).
[[nodiscard]] double delta_of(double beta);

/// Numeric value of the Table I bound at the operating point (the
/// asymptotic expression evaluated with constant 1).
[[nodiscard]] double evaluate(core::MwuKind kind, Property property,
                              const OperatingPoint& point);

}  // namespace mwr::costmodel
