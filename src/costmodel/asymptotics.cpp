#include "costmodel/asymptotics.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/congestion.hpp"

namespace mwr::costmodel {

std::string to_string(Property property) {
  switch (property) {
    case Property::kCommunication:
      return "Communication Cost";
    case Property::kMemory:
      return "Memory Overhead";
    case Property::kConvergence:
      return "Convergence Time";
    case Property::kMinAgents:
      return "Minimum Agents";
  }
  return "?";
}

std::string symbolic(core::MwuKind kind, Property property) {
  using core::MwuKind;
  switch (property) {
    case Property::kCommunication:
      return kind == MwuKind::kDistributed ? "O(ln n / ln ln n)*" : "O(n)";
    case Property::kMemory:
      return kind == MwuKind::kDistributed ? "O(1)" : "O(k)";
    case Property::kConvergence:
      switch (kind) {
        case MwuKind::kStandard:
          return "O(ln k / eps^2)";
        case MwuKind::kDistributed:
          return "O(ln k / delta)";
        case MwuKind::kSlate:
        case MwuKind::kExp3:  // adversarial regret pays the extra factor of k
          return "O(k ln k / eps^2)";
      }
      break;
    case Property::kMinAgents:
      return kind == core::MwuKind::kDistributed ? "O(k^(1/delta))*" : "O(n)";
  }
  return "?";
}

bool high_probability(core::MwuKind kind, Property property) {
  return kind == core::MwuKind::kDistributed &&
         (property == Property::kCommunication ||
          property == Property::kMinAgents);
}

double delta_of(double beta) {
  if (beta <= 0.5 || beta >= 1.0)
    throw std::invalid_argument("delta_of: beta must be in (1/2, 1)");
  return std::log(beta / (1.0 - beta));
}

double evaluate(core::MwuKind kind, Property property,
                const OperatingPoint& point) {
  using core::MwuKind;
  const auto k = static_cast<double>(point.options);
  const auto n = static_cast<double>(point.agents);
  const double eps2 = point.epsilon * point.epsilon;
  const double delta = delta_of(point.beta);
  switch (property) {
    case Property::kCommunication:
      return kind == MwuKind::kDistributed
                 ? parallel::balls_into_bins_bound(point.agents)
                 : n;
    case Property::kMemory:
      return kind == MwuKind::kDistributed ? 1.0 : k;
    case Property::kConvergence:
      switch (kind) {
        case MwuKind::kStandard:
          return std::log(k) / eps2;
        case MwuKind::kDistributed:
          return std::log(k) / delta;
        case MwuKind::kSlate:
        case MwuKind::kExp3:
          return k * std::log(k) / eps2;
      }
      break;
    case Property::kMinAgents:
      return kind == MwuKind::kDistributed ? std::pow(k, 1.0 / delta) : n;
  }
  throw std::invalid_argument("evaluate: unknown property");
}

}  // namespace mwr::costmodel
