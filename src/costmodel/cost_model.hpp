// The weighted asymptotic cost model of §IV-E and its concrete
// recommendations (§IV-E.2).
//
// Asymptotics alone hide the trade-offs practitioners face: Distributed
// minimizes communication but demands a super-linear CPU count; Slate looks
// hopeless by iteration count but competitive by CPU-iterations; Standard
// is cheapest in update cycles but pays O(n) congestion every cycle.  The
// paper's decision model attaches a weight to each feature:
//
//   cost(alg) = w_comm * communication(alg)
//             + w_conv * convergence(alg)
//             + w_cpu  * min_agents(alg)
//             + w_mem  * memory(alg)
//
// and recommends the minimizer.  The headline finding — for APR, where
// probes are expensive and messages tiny (w_comm << w_conv), the
// global-memory, high-communication Standard wins — falls out of this model.
#pragma once

#include <string>
#include <vector>

#include "costmodel/asymptotics.hpp"

namespace mwr::costmodel {

/// Relative importance of each feature (the alpha/beta of §IV-E.1,
/// extended with the CPU and memory terms the section discusses).
struct FeatureWeights {
  double communication = 1.0;
  double convergence = 1.0;
  double cpus = 0.0;
  double memory = 0.0;
};

/// One algorithm's modeled cost with its per-feature breakdown.
struct ModeledCost {
  core::MwuKind kind = core::MwuKind::kStandard;
  double communication = 0.0;
  double convergence = 0.0;
  double cpus = 0.0;
  double memory = 0.0;
  double total = 0.0;
};

/// Evaluates the model for one algorithm at an operating point.
[[nodiscard]] ModeledCost modeled_cost(core::MwuKind kind,
                                       const FeatureWeights& weights,
                                       const OperatingPoint& point);

/// Costs for all three algorithms, sorted ascending by total.
[[nodiscard]] std::vector<ModeledCost> rank_algorithms(
    const FeatureWeights& weights, const OperatingPoint& point);

/// The recommended (minimum-cost) algorithm.
[[nodiscard]] core::MwuKind recommend(const FeatureWeights& weights,
                                      const OperatingPoint& point);

/// Sweeps the communication-to-convergence weight ratio and reports, for
/// each ratio, which algorithm the model prefers — the §IV-E crossover
/// analysis.  Ratios are w_comm / w_conv with w_conv fixed at 1.
struct CrossoverRow {
  double comm_weight_ratio = 0.0;
  core::MwuKind preferred = core::MwuKind::kStandard;
  double standard_cost = 0.0;
  double distributed_cost = 0.0;
  double slate_cost = 0.0;
};

[[nodiscard]] std::vector<CrossoverRow> crossover_sweep(
    const OperatingPoint& point, const std::vector<double>& ratios,
    double cpu_weight = 0.0);

/// §IV-E.2's prose recommendation for a described deployment, as a string
/// (used by the algorithm_selection example).
[[nodiscard]] std::string explain_recommendation(const FeatureWeights& weights,
                                                 const OperatingPoint& point);

// ---------------------------------------------------------------------------
// Empirically-grounded model (§IV-E: "combine the asymptotic analysis ...
// with our empirical observations").  The pure asymptotics, evaluated with
// unit constants, always favor Distributed when communication carries any
// weight — the paper concedes as much in §IV-E.1.  The real-world flip to
// Standard comes from the measured cycle counts and per-cycle CPU usage
// (Tables II and IV): when each evaluation is expensive, total cost is
// dominated by cycles * CPUs, where Distributed's super-linear population
// loses.

/// One algorithm's measured behavior on a dataset (from the evaluation
/// harness or from Tables II/IV directly).
struct EmpiricalObservation {
  core::MwuKind kind = core::MwuKind::kStandard;
  double cycles = 0.0;          ///< update cycles to convergence.
  double cpus_per_cycle = 0.0;  ///< agents active each cycle.
};

/// Weights for the empirical model.  Each term is per-run total:
///   communication — per-cycle congestion of the heaviest node x cycles
///                   (Standard/Slate synchronize all their agents; a
///                   Distributed agent serves ~ln n/ln ln n requests);
///   latency       — update cycles (each cycle is one synchronized round);
///   evaluations   — cycles x CPUs = total option evaluations, the term
///                   that dominates when probes are expensive (APR).
struct EmpiricalWeights {
  double communication = 0.0;
  double latency = 1.0;
  double evaluations = 0.0;
};

/// Total modeled cost of one observed algorithm run.
[[nodiscard]] double empirical_cost(const EmpiricalObservation& observation,
                                    const EmpiricalWeights& weights);

/// The minimum-cost algorithm among the observations.
[[nodiscard]] core::MwuKind recommend_empirical(
    const std::vector<EmpiricalObservation>& observations,
    const EmpiricalWeights& weights);

}  // namespace mwr::costmodel
