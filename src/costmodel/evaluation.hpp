// The shared experiment harness behind Tables II, III, and IV: every
// algorithm on every dataset with `seeds` replications, collecting
// convergence cycles, accuracy, and CPU-iteration cost in one pass so the
// three table benches report mutually consistent numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/asymptotics.hpp"
#include "datasets/suite.hpp"
#include "util/stats.hpp"

namespace mwr::costmodel {

struct EvalConfig {
  std::size_t seeds = 10;             ///< replications per cell (paper: 100).
  std::size_t max_size = 1024;        ///< skip larger instances (paper: 16384).
  std::size_t max_iterations = 10000; ///< the paper's iteration cap.
  std::uint64_t master_seed = 20210525;
  core::MwuConfig mwu;                ///< base algorithm parameters (§IV-B).
  /// Worker threads the sweep fans cells out over.  Every replication is
  /// seeded independently of scheduling, so results are identical for any
  /// thread count.
  std::size_t threads = 1;
};

/// One (dataset, algorithm) cell aggregated over the replications.
struct EvalCell {
  std::string family;             ///< random / unimodal / C / Java.
  std::string dataset;
  std::size_t size = 0;           ///< k.
  core::MwuKind kind = core::MwuKind::kStandard;
  bool intractable = false;       ///< Distributed population too large.
  util::RunningStats iterations;  ///< update cycles (capped runs count the cap).
  util::RunningStats accuracy;    ///< Table III metric, percent.
  util::RunningStats cpu_iterations;
  std::size_t cpus_per_cycle = 0;
  std::size_t converged_runs = 0;
};

/// Runs the full sweep: every algorithm on every dataset of the standard
/// suite.  Cells are ordered dataset-major (random, unimodal, C, Java),
/// algorithm-minor (Standard, Distributed, Slate — the paper's column
/// order).
[[nodiscard]] std::vector<EvalCell> run_evaluation(const EvalConfig& config);

/// Convenience lookup into run_evaluation() output.
[[nodiscard]] const EvalCell& find_cell(const std::vector<EvalCell>& cells,
                                        const std::string& dataset,
                                        core::MwuKind kind);

}  // namespace mwr::costmodel
