#include "costmodel/evaluation.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace mwr::costmodel {

namespace {
// Fills one (dataset, kind) cell.  Replication seeds depend only on the
// master seed, the kind, and the instance size — never on scheduling — so
// the sweep is reproducible at any thread count.
void fill_cell(EvalCell& cell, const datasets::Dataset& dataset,
               const EvalConfig& config, core::MwuKind kind) {
  const core::BernoulliOracle oracle(dataset.options);
  core::MwuConfig mwu = config.mwu;
  mwu.num_options = dataset.options.size();
  mwu.max_iterations = config.max_iterations;
  for (std::size_t s = 0; s < config.seeds; ++s) {
    util::RngStream rng(config.master_seed ^
                        (0x9e3779b97f4a7c15ULL * (s + 1)) ^
                        (static_cast<std::uint64_t>(kind) << 40) ^
                        (cell.size * 0xc2b2ae3dULL));
    const auto result = core::run_mwu(kind, oracle, mwu, std::move(rng));
    cell.iterations.add(static_cast<double>(result.iterations));
    cell.accuracy.add(dataset.options.accuracy_percent(result.best_option));
    cell.cpu_iterations.add(static_cast<double>(result.cpu_iterations()));
    cell.cpus_per_cycle = result.cpus_per_cycle;
    if (result.converged) ++cell.converged_runs;
  }
}
}  // namespace

std::vector<EvalCell> run_evaluation(const EvalConfig& config) {
  const auto suite =
      datasets::standard_suite(config.master_seed, config.max_size);
  constexpr core::MwuKind kColumnOrder[] = {core::MwuKind::kStandard,
                                            core::MwuKind::kDistributed,
                                            core::MwuKind::kSlate};

  // Lay the cells out first (dataset-major, paper column order), then fill
  // them — serially or fanned out over the worker pool.
  std::vector<EvalCell> cells;
  cells.reserve(suite.size() * 3);
  for (const auto& dataset : suite) {
    core::MwuConfig mwu = config.mwu;
    mwu.num_options = dataset.options.size();
    for (const auto kind : kColumnOrder) {
      EvalCell cell;
      cell.family = dataset.family;
      cell.dataset = dataset.options.name();
      cell.size = dataset.options.size();
      cell.kind = kind;
      cell.intractable =
          kind == core::MwuKind::kDistributed &&
          core::distributed_population(mwu) > mwu.max_population;
      cells.push_back(std::move(cell));
    }
  }

  const auto fill = [&](std::size_t index) {
    EvalCell& cell = cells[index];
    if (cell.intractable) return;
    fill_cell(cell, suite[index / 3], config, cell.kind);
  };
  if (config.threads > 1) {
    parallel::ThreadPool workers(config.threads);
    workers.parallel_for_index(cells.size(), fill);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) fill(i);
  }
  return cells;
}

const EvalCell& find_cell(const std::vector<EvalCell>& cells,
                          const std::string& dataset, core::MwuKind kind) {
  for (const auto& cell : cells) {
    if (cell.dataset == dataset && cell.kind == kind) return cell;
  }
  throw std::invalid_argument("find_cell: no cell for " + dataset);
}

}  // namespace mwr::costmodel
