#include "costmodel/evaluation.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace mwr::costmodel {

namespace {
// One replication's contribution to a cell, computed independently of every
// other (cell, seed) pair so the sweep can fan out at replication
// granularity.  The seed depends only on the master seed, the kind, the
// replication index, and the instance size — never on scheduling.
struct SeedOutcome {
  double iterations = 0.0;
  double accuracy = 0.0;
  double cpu_iterations = 0.0;
  std::size_t cpus_per_cycle = 0;
  bool converged = false;
};

SeedOutcome run_replication(const datasets::Dataset& dataset,
                            const EvalConfig& config, core::MwuKind kind,
                            std::size_t s) {
  const core::BernoulliOracle oracle(dataset.options);
  core::MwuConfig mwu = config.mwu;
  mwu.num_options = dataset.options.size();
  mwu.max_iterations = config.max_iterations;
  util::RngStream rng(config.master_seed ^
                      (0x9e3779b97f4a7c15ULL * (s + 1)) ^
                      (static_cast<std::uint64_t>(kind) << 40) ^
                      (dataset.options.size() * 0xc2b2ae3dULL));
  const auto result = core::run_mwu(kind, oracle, mwu, std::move(rng));
  SeedOutcome out;
  out.iterations = static_cast<double>(result.iterations);
  out.accuracy = dataset.options.accuracy_percent(result.best_option);
  out.cpu_iterations = static_cast<double>(result.cpu_iterations());
  out.cpus_per_cycle = result.cpus_per_cycle;
  out.converged = result.converged;
  return out;
}
}  // namespace

std::vector<EvalCell> run_evaluation(const EvalConfig& config) {
  const auto suite =
      datasets::standard_suite(config.master_seed, config.max_size);
  constexpr core::MwuKind kColumnOrder[] = {core::MwuKind::kStandard,
                                            core::MwuKind::kDistributed,
                                            core::MwuKind::kSlate};

  // Lay the cells out first (dataset-major, paper column order), then fill
  // them — serially or fanned out over the worker pool.
  std::vector<EvalCell> cells;
  cells.reserve(suite.size() * 3);
  for (const auto& dataset : suite) {
    core::MwuConfig mwu = config.mwu;
    mwu.num_options = dataset.options.size();
    for (const auto kind : kColumnOrder) {
      EvalCell cell;
      cell.family = dataset.family;
      cell.dataset = dataset.options.name();
      cell.size = dataset.options.size();
      cell.kind = kind;
      cell.intractable =
          kind == core::MwuKind::kDistributed &&
          core::distributed_population(mwu) > mwu.max_population;
      cells.push_back(std::move(cell));
    }
  }

  // Fan out at (cell, seed) granularity — config.seeds times more units
  // than cells, so the pool stays busy even when one slow cell (large k,
  // Distributed) dominates a cell-granular split.  Outcomes land in a
  // flat slot array and are folded into the RunningStats serially in
  // (cell, seed) order, so floating-point accumulation order — and hence
  // every reported mean/stddev — is identical to the serial sweep.
  const std::size_t seeds = config.seeds;
  std::vector<SeedOutcome> outcomes(cells.size() * seeds);
  const auto compute = [&](std::size_t unit) {
    const std::size_t index = unit / seeds;
    const EvalCell& cell = cells[index];
    if (cell.intractable) return;
    outcomes[unit] =
        run_replication(suite[index / 3], config, cell.kind, unit % seeds);
  };
  if (config.threads > 1) {
    parallel::ThreadPool workers(config.threads);
    workers.parallel_for_index(outcomes.size(), compute);
  } else {
    for (std::size_t u = 0; u < outcomes.size(); ++u) compute(u);
  }
  for (std::size_t index = 0; index < cells.size(); ++index) {
    EvalCell& cell = cells[index];
    if (cell.intractable) continue;
    for (std::size_t s = 0; s < seeds; ++s) {
      const SeedOutcome& out = outcomes[index * seeds + s];
      cell.iterations.add(out.iterations);
      cell.accuracy.add(out.accuracy);
      cell.cpu_iterations.add(out.cpu_iterations);
      cell.cpus_per_cycle = out.cpus_per_cycle;
      if (out.converged) ++cell.converged_runs;
    }
  }
  return cells;
}

const EvalCell& find_cell(const std::vector<EvalCell>& cells,
                          const std::string& dataset, core::MwuKind kind) {
  for (const auto& cell : cells) {
    if (cell.dataset == dataset && cell.kind == kind) return cell;
  }
  throw std::invalid_argument("find_cell: no cell for " + dataset);
}

}  // namespace mwr::costmodel
