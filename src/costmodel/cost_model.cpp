#include "costmodel/cost_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "parallel/congestion.hpp"

namespace mwr::costmodel {

namespace {
constexpr core::MwuKind kAllKinds[] = {core::MwuKind::kStandard,
                                       core::MwuKind::kSlate,
                                       core::MwuKind::kDistributed};
}

ModeledCost modeled_cost(core::MwuKind kind, const FeatureWeights& weights,
                         const OperatingPoint& point) {
  ModeledCost cost;
  cost.kind = kind;
  cost.communication =
      weights.communication * evaluate(kind, Property::kCommunication, point);
  cost.convergence =
      weights.convergence * evaluate(kind, Property::kConvergence, point);
  cost.cpus = weights.cpus * evaluate(kind, Property::kMinAgents, point);
  cost.memory = weights.memory * evaluate(kind, Property::kMemory, point);
  cost.total = cost.communication + cost.convergence + cost.cpus + cost.memory;
  return cost;
}

std::vector<ModeledCost> rank_algorithms(const FeatureWeights& weights,
                                         const OperatingPoint& point) {
  std::vector<ModeledCost> costs;
  for (const auto kind : kAllKinds) {
    costs.push_back(modeled_cost(kind, weights, point));
  }
  std::sort(costs.begin(), costs.end(),
            [](const ModeledCost& a, const ModeledCost& b) {
              return a.total < b.total;
            });
  return costs;
}

core::MwuKind recommend(const FeatureWeights& weights,
                        const OperatingPoint& point) {
  return rank_algorithms(weights, point).front().kind;
}

std::vector<CrossoverRow> crossover_sweep(const OperatingPoint& point,
                                          const std::vector<double>& ratios,
                                          double cpu_weight) {
  std::vector<CrossoverRow> rows;
  rows.reserve(ratios.size());
  for (const double ratio : ratios) {
    FeatureWeights weights;
    weights.communication = ratio;
    weights.convergence = 1.0;
    weights.cpus = cpu_weight;
    CrossoverRow row;
    row.comm_weight_ratio = ratio;
    row.preferred = recommend(weights, point);
    row.standard_cost =
        modeled_cost(core::MwuKind::kStandard, weights, point).total;
    row.distributed_cost =
        modeled_cost(core::MwuKind::kDistributed, weights, point).total;
    row.slate_cost = modeled_cost(core::MwuKind::kSlate, weights, point).total;
    rows.push_back(row);
  }
  return rows;
}

std::string explain_recommendation(const FeatureWeights& weights,
                                   const OperatingPoint& point) {
  const auto ranked = rank_algorithms(weights, point);
  std::ostringstream out;
  out << "At k=" << point.options << " options, n=" << point.agents
      << " agents:\n";
  for (const auto& cost : ranked) {
    out << "  " << core::to_string(cost.kind) << ": total " << cost.total
        << " (comm " << cost.communication << ", conv " << cost.convergence
        << ", cpus " << cost.cpus << ", mem " << cost.memory << ")\n";
  }
  out << "Recommendation: " << core::to_string(ranked.front().kind) << ". ";
  if (weights.communication < weights.convergence) {
    out << "Communication is cheap relative to evaluating options (as in "
           "APR, where each probe compiles and tests a program while "
           "messages carry a few scalars), so Distributed's congestion "
           "advantage cannot pay for its CPU appetite — a global-memory "
           "algorithm is preferred.";
  } else {
    out << "Communication dominates, so the low-congestion Distributed "
           "variant is favored when enough agents are available.";
  }
  return out.str();
}

double empirical_cost(const EmpiricalObservation& observation,
                      const EmpiricalWeights& weights) {
  const double congestion_per_cycle =
      observation.kind == core::MwuKind::kDistributed
          ? parallel::balls_into_bins_bound(
                static_cast<std::size_t>(observation.cpus_per_cycle))
          : observation.cpus_per_cycle;
  return weights.communication * congestion_per_cycle * observation.cycles +
         weights.latency * observation.cycles +
         weights.evaluations * observation.cycles * observation.cpus_per_cycle;
}

core::MwuKind recommend_empirical(
    const std::vector<EmpiricalObservation>& observations,
    const EmpiricalWeights& weights) {
  if (observations.empty())
    throw std::invalid_argument("recommend_empirical: no observations");
  const EmpiricalObservation* best = &observations.front();
  double best_cost = empirical_cost(*best, weights);
  for (const auto& observation : observations) {
    const double cost = empirical_cost(observation, weights);
    if (cost < best_cost) {
      best_cost = cost;
      best = &observation;
    }
  }
  return best->kind;
}

}  // namespace mwr::costmodel
