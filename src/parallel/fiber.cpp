#include "parallel/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <stdexcept>

// Sanitizer detection: clang spells it __has_feature(...), gcc defines
// __SANITIZE_*__ macros.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MWR_FIBER_TSAN 1
#endif
#if __has_feature(address_sanitizer)
#define MWR_FIBER_ASAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define MWR_FIBER_TSAN 1
#endif
#if defined(__SANITIZE_ADDRESS__)
#define MWR_FIBER_ASAN 1
#endif

#if defined(MWR_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif
#if defined(MWR_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

// The register-only switch avoids glibc swapcontext's per-switch
// rt_sigprocmask syscall.  Sanitizer builds stay on ucontext: their fiber
// annotations are validated against that path, and switch latency is not
// what a sanitizer run measures.
#if defined(__x86_64__) && defined(__linux__) && !defined(MWR_FIBER_TSAN) && \
    !defined(MWR_FIBER_ASAN)
#define MWR_FIBER_FAST_SWITCH 1
#endif

namespace mwr::parallel {

namespace {
thread_local Fiber* current_fiber = nullptr;
}  // namespace

Fiber* Fiber::current() noexcept { return current_fiber; }

#if defined(MWR_FIBER_FAST_SWITCH)

// void mwr_fiber_switch(void** save_sp, void* restore_sp)
//
// Saves the System V callee-saved state (rbp rbx r12-r15 plus mxcsr and
// the x87 control word — everything a conforming caller may assume
// survives a function call) on the current stack, stores rsp through
// save_sp, then restores the mirror-image frame at restore_sp and returns
// on that stack.  A fresh fiber's stack is pre-seeded with such a frame
// whose return address is the trampoline below.
extern "C" void mwr_fiber_switch(void** save_sp, void* restore_sp) noexcept;

__asm__(
    ".text\n"
    ".align 16\n"
    ".local mwr_fiber_switch\n"
    ".type mwr_fiber_switch, @function\n"
    "mwr_fiber_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  subq $8, %rsp\n"
    "  stmxcsr (%rsp)\n"
    "  fnstcw 4(%rsp)\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  ldmxcsr (%rsp)\n"
    "  fldcw 4(%rsp)\n"
    "  addq $8, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size mwr_fiber_switch, .-mwr_fiber_switch\n");

namespace {

// Seeds `stack` with the frame mwr_fiber_switch restores, so the first
// switch into the fiber "returns" into `entry` with the ABI's
// rsp % 16 == 8 entry alignment.
void* seed_fast_stack(char* stack, std::size_t stack_bytes, void (*entry)()) {
  auto top = reinterpret_cast<std::uintptr_t>(stack) + stack_bytes;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* p = reinterpret_cast<std::uint64_t*>(top);
  *--p = 0;  // fake caller return address; the entry frame never returns
  *--p = reinterpret_cast<std::uint64_t>(entry);
  for (int i = 0; i < 6; ++i) *--p = 0;  // rbp rbx r12 r13 r14 r15
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  __asm__ volatile("stmxcsr %0" : "=m"(mxcsr));
  __asm__ volatile("fnstcw %0" : "=m"(fcw));
  *--p = static_cast<std::uint64_t>(mxcsr) |
         (static_cast<std::uint64_t>(fcw) << 32);
  return p;
}

}  // namespace

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)),
      stack_bytes_(stack_bytes < 16 * 1024 ? 16 * 1024 : stack_bytes),
      stack_(new char[stack_bytes_]) {
  stack_base_ = stack_.get();
}

Fiber::Fiber(std::function<void()> entry, char* stack, std::size_t stack_bytes)
    : entry_(std::move(entry)), stack_bytes_(stack_bytes), stack_base_(stack) {
  if (stack == nullptr || stack_bytes < 16 * 1024)
    throw std::invalid_argument("Fiber: external stack null or too small");
}

Fiber::~Fiber() = default;

// resume() publishes the fiber in current_fiber before switching, so the
// fresh stack's first frame needs no argument plumbing.
void Fiber::fast_entry() { current_fiber->run(); }

void Fiber::run() {
  entry_();
  finished_ = true;
  mwr_fiber_switch(&fast_sp_, fast_return_sp_);
  assert(false && "resumed a finished fiber");
}

void Fiber::resume() {
  assert(!finished_ && "resume on finished fiber");
  assert(current_fiber == nullptr && "fibers do not nest");
  if (!started_) {
    fast_sp_ = seed_fast_stack(stack_base_, stack_bytes_, &Fiber::fast_entry);
    started_ = true;
  }
  current_fiber = this;
  mwr_fiber_switch(&fast_return_sp_, fast_sp_);
  current_fiber = nullptr;
}

void Fiber::yield() {
  assert(current_fiber == this && "yield outside the running fiber");
  mwr_fiber_switch(&fast_sp_, fast_return_sp_);
}

#else  // ucontext substrate

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)),
      stack_bytes_(stack_bytes < 16 * 1024 ? 16 * 1024 : stack_bytes),
      stack_(new char[stack_bytes_]) {
  stack_base_ = stack_.get();
#if defined(MWR_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::Fiber(std::function<void()> entry, char* stack, std::size_t stack_bytes)
    : entry_(std::move(entry)), stack_bytes_(stack_bytes), stack_base_(stack) {
  if (stack == nullptr || stack_bytes < 16 * 1024)
    throw std::invalid_argument("Fiber: external stack null or too small");
#if defined(MWR_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#if defined(MWR_FIBER_TSAN)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto address = (static_cast<std::uintptr_t>(hi) << 32) |
                 static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(address)->run();
}

void Fiber::run() {
#if defined(MWR_FIBER_ASAN)
  // First landing on the fiber stack: complete the switch the resuming
  // worker announced, capturing the worker stack we must switch back to.
  __sanitizer_finish_switch_fiber(nullptr, &asan_return_bottom_,
                                  &asan_return_size_);
#endif
  // The engine's entry wrapper catches everything; an exception escaping
  // here would unwind off the top of the fiber stack and terminate.
  entry_();
  finished_ = true;
#if defined(MWR_FIBER_TSAN)
  __tsan_switch_to_fiber(tsan_return_, 0);
#endif
#if defined(MWR_FIBER_ASAN)
  // nullptr fake-stack-save: this context is exiting for good.
  __sanitizer_start_switch_fiber(nullptr, asan_return_bottom_,
                                 asan_return_size_);
#endif
  swapcontext(&context_, return_context_);
  assert(false && "resumed a finished fiber");
}

void Fiber::resume() {
  assert(!finished_ && "resume on finished fiber");
  assert(current_fiber == nullptr && "fibers do not nest");
  if (!started_) {
    if (getcontext(&context_) != 0)
      throw std::runtime_error("Fiber: getcontext failed");
    context_.uc_stack.ss_sp = stack_base_;
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = nullptr;
    const auto address = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(address >> 32),
                static_cast<unsigned>(address & 0xffffffffu));
    started_ = true;
  }
  ucontext_t return_context;
  return_context_ = &return_context;
  current_fiber = this;
#if defined(MWR_FIBER_TSAN)
  tsan_return_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#if defined(MWR_FIBER_ASAN)
  void* worker_fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&worker_fake_stack, stack_base_,
                                 stack_bytes_);
#endif
  swapcontext(&return_context, &context_);
#if defined(MWR_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(worker_fake_stack, nullptr, nullptr);
#endif
  current_fiber = nullptr;
  return_context_ = nullptr;
}

void Fiber::yield() {
  assert(current_fiber == this && "yield outside the running fiber");
#if defined(MWR_FIBER_TSAN)
  __tsan_switch_to_fiber(tsan_return_, 0);
#endif
#if defined(MWR_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&asan_fake_stack_, asan_return_bottom_,
                                 asan_return_size_);
#endif
  swapcontext(&context_, return_context_);
  // Resumed — possibly on a different worker thread, whose stack the
  // finish call below records as the new switch-back target.
#if defined(MWR_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &asan_return_bottom_,
                                  &asan_return_size_);
#endif
}

#endif  // MWR_FIBER_FAST_SWITCH

}  // namespace mwr::parallel
