#include "parallel/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mwr::parallel {

CongestionTracker::CongestionTracker(std::size_t nodes) {
  if (nodes == 0) throw std::invalid_argument("tracker needs >= 1 node");
  counts_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    counts_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

void CongestionTracker::record(std::size_t destination) noexcept {
  counts_[destination]->fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

void CongestionTracker::end_cycle() {
  std::uint64_t max_count = 0;
  for (auto& c : counts_) {
    max_count = std::max(max_count, c->exchange(0, std::memory_order_relaxed));
  }
  const util::MutexLock lock(stats_mutex_);
  max_per_cycle_.add(static_cast<double>(max_count));
}

void CongestionTracker::end_cycle(std::uint64_t global_max) {
  for (auto& c : counts_) c->store(0, std::memory_order_relaxed);
  const util::MutexLock lock(stats_mutex_);
  max_per_cycle_.add(static_cast<double>(global_max));
}

util::RunningStats CongestionTracker::max_per_cycle() const {
  const util::MutexLock lock(stats_mutex_);
  return max_per_cycle_;
}

std::uint64_t CongestionTracker::current_max() const noexcept {
  std::uint64_t max_count = 0;
  for (const auto& c : counts_) {
    max_count = std::max(max_count, c->load(std::memory_order_relaxed));
  }
  return max_count;
}

std::uint64_t CongestionTracker::current_count(std::size_t node) const {
  return counts_.at(node)->load(std::memory_order_relaxed);
}

std::uint64_t CongestionTracker::total_messages() const noexcept {
  return total_.load(std::memory_order_relaxed);
}

double balls_into_bins_bound(std::size_t n) noexcept {
  if (n < 3) return static_cast<double>(n);
  const double ln_n = std::log(static_cast<double>(n));
  return ln_n / std::log(ln_n);
}

}  // namespace mwr::parallel
