// Communication-congestion accounting.
//
// The paper's communication-cost column in Table I is *congestion*: the
// number of messages the heaviest-hit node receives in one update cycle
// (§II-C, "Communication").  The Distributed variant's O(ln n / ln ln n)
// bound is the classic balls-into-bins maximum.  This tracker records
// per-destination message counts per cycle so the bench for Table I can
// validate that bound empirically against the substrate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/stats.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel {

/// Tracks per-destination message counts within "cycles" (update rounds).
/// record() is wait-free (relaxed atomic increments); end_cycle() is called
/// by exactly one coordinating thread between rounds.
class CongestionTracker {
 public:
  explicit CongestionTracker(std::size_t nodes);

  /// Counts one message delivered to `destination` in the current cycle.
  void record(std::size_t destination) noexcept;

  /// Closes the current cycle: captures the heaviest-hit node's count into
  /// the running statistics and zeroes the counters.  Must not race with
  /// record() — callers close cycles at barrier points.
  void end_cycle() MWR_EXCLUDES(stats_mutex_);

  /// Closes the current cycle recording a caller-supplied maximum instead
  /// of the locally observed one.  Multi-process worlds track only their
  /// local destinations; the barrier-close exchange reduces the per-process
  /// maxima to the world-wide one and every process records that value, so
  /// congestion statistics are identical in every process.
  void end_cycle(std::uint64_t global_max) MWR_EXCLUDES(stats_mutex_);

  /// Heaviest-hit node count in the *current* (open) cycle.
  [[nodiscard]] std::uint64_t current_max() const noexcept;

  /// Messages delivered to `node` in the current cycle.
  [[nodiscard]] std::uint64_t current_count(std::size_t node) const;

  /// Statistics over closed cycles of the per-cycle maximum congestion.
  /// Returns a snapshot by value: the accumulator is written by end_cycle()
  /// (the barrier's completion slot) while monitoring threads may read
  /// mid-run, so handing out a reference would publish a torn Welford
  /// state — the exact written-under-one-mutex-read-under-none defect the
  /// static-analysis bring-up audit flagged here.
  [[nodiscard]] util::RunningStats max_per_cycle() const
      MWR_EXCLUDES(stats_mutex_);

  /// Total messages across all nodes and cycles (including the open one).
  [[nodiscard]] std::uint64_t total_messages() const noexcept;

  [[nodiscard]] std::size_t nodes() const noexcept { return counts_.size(); }

 private:
  // unique_ptr<atomic[]> rather than vector<atomic> (atomics are not
  // movable); sized once at construction.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> counts_;
  mutable util::Mutex stats_mutex_;
  util::RunningStats max_per_cycle_ MWR_GUARDED_BY(stats_mutex_);
  std::atomic<std::uint64_t> total_{0};
};

/// The theoretical high-probability bound on balls-into-bins maximum load:
/// ln(n) / ln(ln(n)) for n balls into n bins (paper §II-C cites [16]).
/// Returns the n=2 limit guard value for n < 3 where ln ln n degenerates.
[[nodiscard]] double balls_into_bins_bound(std::size_t n) noexcept;

}  // namespace mwr::parallel
