#include "parallel/comm.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

#include "obs/registry.hpp"
#include "parallel/superstep.hpp"
#include "parallel/transport/transport.hpp"
#include "util/sync.hpp"

namespace mwr::parallel {

namespace {
// Communicator telemetry across every CommWorld in the process.  Tracked
// sends are the algorithm's own messages (the congestion analysis of
// Table I); untracked sends are harness bookkeeping and reported
// separately so the two never blur.
struct CommMetrics {
  obs::Counter& messages_sent;
  obs::Counter& messages_sent_untracked;
  obs::Counter& congestion_cycles;
  obs::Gauge& congestion_max_per_cycle;

  CommMetrics()
      : messages_sent(
            obs::MetricsRegistry::global().counter("comm.messages_sent")),
        messages_sent_untracked(obs::MetricsRegistry::global().counter(
            "comm.messages_sent_untracked")),
        congestion_cycles(
            obs::MetricsRegistry::global().counter("comm.congestion_cycles")),
        congestion_max_per_cycle(obs::MetricsRegistry::global().gauge(
            "comm.congestion_max_per_cycle")) {}
};

CommMetrics& comm_metrics() {
  static CommMetrics metrics;
  return metrics;
}

std::size_t resolved_worker_count(const RunPolicy& policy) {
  if (policy.workers != 0) return policy.workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}
}  // namespace

std::size_t WorldLayout::block_begin(std::size_t global_size,
                                     std::size_t processes,
                                     std::size_t process) noexcept {
  const std::size_t base = global_size / processes;
  const std::size_t rem = global_size % processes;
  return process * base + std::min(process, rem);
}

std::size_t WorldLayout::block_count(std::size_t global_size,
                                     std::size_t processes,
                                     std::size_t process) noexcept {
  const std::size_t base = global_size / processes;
  const std::size_t rem = global_size % processes;
  return base + (process < rem ? 1 : 0);
}

std::size_t WorldLayout::owner_of(std::size_t global_size,
                                  std::size_t processes,
                                  std::size_t rank) noexcept {
  const std::size_t base = global_size / processes;
  const std::size_t rem = global_size % processes;
  const std::size_t in_big_blocks = rem * (base + 1);
  if (rank < in_big_blocks) return rank / (base + 1);
  if (base == 0) return processes - 1;  // only reachable for out-of-range rank
  return rem + (rank - in_big_blocks) / base;
}

int Comm::size() const noexcept { return static_cast<int>(world_->size()); }

void Comm::send(int destination, int tag, PayloadVec payload) {
  auto dst = static_cast<std::size_t>(destination);
  if (dst >= world_->size()) throw std::out_of_range("send: bad destination");
  comm_metrics().messages_sent.add(1);
  if (!world_->multiprocess()) {
    // Historical in-process path, bit-for-bit untouched.
    world_->tracker_.record(dst);
    world_->mailboxes_[dst].push(Message{rank_, tag, std::move(payload)});
    return;
  }
  const WorldLayout& layout = world_->layout_;
  const std::size_t owner =
      WorldLayout::owner_of(layout.global_size, layout.processes, dst);
  if (owner == layout.process_index) {
    const std::size_t local = world_->local_index(destination);
    world_->tracker_.record(local);
    world_->mailboxes_[local].push(Message{rank_, tag, std::move(payload)});
    return;
  }
  // Remote rank: congestion is recorded by the destination process's drain
  // thread when the tracked frame is delivered — same count, same cycle
  // (the barrier-close marker round fences delivery).
  world_->endpoint_->send(
      owner, transport::WireFrame::message(rank_, destination, tag,
                                           std::move(payload).to_vector(),
                                           /*tracked=*/true));
}

void Comm::send_untracked(int destination, int tag, PayloadVec payload) {
  auto dst = static_cast<std::size_t>(destination);
  if (dst >= world_->size()) throw std::out_of_range("send: bad destination");
  comm_metrics().messages_sent_untracked.add(1);
  if (!world_->multiprocess()) {
    world_->mailboxes_[dst].push(Message{rank_, tag, std::move(payload)});
    return;
  }
  const WorldLayout& layout = world_->layout_;
  const std::size_t owner =
      WorldLayout::owner_of(layout.global_size, layout.processes, dst);
  if (owner == layout.process_index) {
    world_->mailboxes_[world_->local_index(destination)].push(
        Message{rank_, tag, std::move(payload)});
    return;
  }
  world_->endpoint_->send(
      owner, transport::WireFrame::message(rank_, destination, tag,
                                           std::move(payload).to_vector(),
                                           /*tracked=*/false));
}

void Comm::send_copy(int destination, int tag,
                     std::span<const double> values) {
  auto dst = static_cast<std::size_t>(destination);
  if (dst >= world_->size()) throw std::out_of_range("send: bad destination");
  comm_metrics().messages_sent.add(1);
  if (!world_->multiprocess()) {
    world_->tracker_.record(dst);
    world_->mailboxes_[dst].push(
        Message{rank_, tag, PayloadVec(values, world_->arena_)});
    return;
  }
  const WorldLayout& layout = world_->layout_;
  const std::size_t owner =
      WorldLayout::owner_of(layout.global_size, layout.processes, dst);
  if (owner == layout.process_index) {
    const std::size_t local = world_->local_index(destination);
    world_->tracker_.record(local);
    world_->mailboxes_[local].push(
        Message{rank_, tag, PayloadVec(values, world_->arena_)});
    return;
  }
  // The wire path marshals payloads into its own frame buffer, so arena
  // backing buys nothing across the seam — copy into the frame directly.
  world_->endpoint_->send(
      owner, transport::WireFrame::message(
                 rank_, destination, tag,
                 std::vector<double>(values.begin(), values.end()),
                 /*tracked=*/true));
}

void Comm::send_copy_untracked(int destination, int tag,
                               std::span<const double> values) {
  auto dst = static_cast<std::size_t>(destination);
  if (dst >= world_->size()) throw std::out_of_range("send: bad destination");
  comm_metrics().messages_sent_untracked.add(1);
  if (!world_->multiprocess()) {
    world_->mailboxes_[dst].push(
        Message{rank_, tag, PayloadVec(values, world_->arena_)});
    return;
  }
  const WorldLayout& layout = world_->layout_;
  const std::size_t owner =
      WorldLayout::owner_of(layout.global_size, layout.processes, dst);
  if (owner == layout.process_index) {
    world_->mailboxes_[world_->local_index(destination)].push(
        Message{rank_, tag, PayloadVec(values, world_->arena_)});
    return;
  }
  world_->endpoint_->send(
      owner, transport::WireFrame::message(
                 rank_, destination, tag,
                 std::vector<double>(values.begin(), values.end()),
                 /*tracked=*/false));
}

Message Comm::recv(int source, int tag) {
  // Flush-before-blocking discipline: anything this process buffered is
  // pushed into the fabric before this rank can block on a reply that may
  // depend on it.
  if (world_->multiprocess()) world_->endpoint_->flush();
  return world_->mailboxes_[world_->local_index(rank_)].recv(source, tag);
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  if (world_->multiprocess()) world_->endpoint_->flush();
  return world_->mailboxes_[world_->local_index(rank_)].try_recv(source, tag);
}

void Comm::barrier() {
  if (!world_->multiprocess()) {
    world_->barrier_.arrive_and_wait();
    return;
  }
  // Local barrier whose completion extends the synchronization across
  // processes: the last local arriver flushes every buffered frame and
  // exchanges one marker round with the peer processes.
  world_->barrier_.arrive_and_wait(
      [w = world_] { w->exchange_barrier_round(); });
  world_->throw_if_aborted();
}

void Comm::close_congestion_cycle() {
  if (world_->multiprocess())
    throw std::logic_error(
        "close_congestion_cycle: multi-process worlds close cycles only "
        "via barrier_close_cycle (the close needs the cross-process maxima "
        "reduction)");
  CommMetrics& metrics = comm_metrics();
  metrics.congestion_max_per_cycle.record_max(
      static_cast<double>(world_->tracker_.current_max()));
  metrics.congestion_cycles.add(1);
  world_->tracker_.end_cycle();
  // All of the cycle's messages are delivered and (in the common pattern)
  // consumed; rewind the payload arena for the next cycle.  A payload still
  // parked in a mailbox keeps the count nonzero and simply defers the
  // rewind to a later close.
  (void)world_->arena_->try_reset();
}

void Comm::barrier_close_cycle() {
  // The last arriver closes the cycle inside the barrier's completion slot:
  // every rank's sends of the cycle are already recorded (they arrived),
  // none can send for the next one (none is released), so the captured
  // per-cycle maximum is identical to the barrier/close/barrier bracket —
  // at one synchronization instead of two.
  if (!world_->multiprocess()) {
    world_->barrier_.arrive_and_wait([this] { close_congestion_cycle(); });
    return;
  }
  world_->barrier_.arrive_and_wait([w = world_] { w->exchange_cycle_close(); });
  world_->throw_if_aborted();
}

std::vector<double> Comm::broadcast(int root, std::vector<double> payload) {
  if (rank_ == root) {
    // One arena-backed copy per destination instead of one heap vector.
    for (int r = 0; r < size(); ++r) {
      if (r != root) send_copy(r, kTagBroadcast, payload);
    }
    return payload;
  }
  return recv(root, kTagBroadcast).payload;
}

std::vector<std::vector<double>> Comm::gather(int root,
                                              std::vector<double> payload) {
  if (rank_ != root) {
    send(root, kTagGather, std::move(payload));
    return {};
  }
  std::vector<std::vector<double>> all(world_->size());
  all[static_cast<std::size_t>(root)] = std::move(payload);
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    all[static_cast<std::size_t>(r)] = recv(r, kTagGather).payload;
  }
  return all;
}

std::vector<double> Comm::allreduce_sum(std::vector<double> payload) {
  // Gather-to-0 then broadcast: O(n) congestion at the root, exactly the
  // centralized communication pattern the paper charges Standard MWU for.
  const std::size_t width = payload.size();
  if (rank_ != 0) {
    send(0, kTagAllreduce, std::move(payload));
    std::vector<double> reduced = recv(0, kTagAllreduce).payload;
    if (reduced.size() != width)
      throw std::invalid_argument("allreduce_sum: mismatched payload widths");
    return reduced;
  }
  std::vector<double> sum = std::move(payload);
  for (int r = 1; r < size(); ++r) {
    const auto m = recv(r, kTagAllreduce);
    if (m.payload.size() != sum.size())
      throw std::invalid_argument("allreduce_sum: mismatched payload widths");
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += m.payload[i];
  }
  for (int r = 1; r < size(); ++r) send_copy(r, kTagAllreduce, sum);
  return sum;
}

std::vector<double> Comm::allreduce_sum_tree(std::vector<double> payload) {
  return allreduce_tree_impl(std::move(payload), /*tracked=*/true);
}

std::vector<double> Comm::allreduce_sum_tree_untracked(
    std::vector<double> payload) {
  return allreduce_tree_impl(std::move(payload), /*tracked=*/false);
}

std::vector<double> Comm::allreduce_tree_impl(std::vector<double> payload,
                                              bool tracked) {
  // Binomial tree rooted at 0.  Reduce phase: at round r (mask = 1 << r), a
  // rank whose bit r is set sends its partial sum to rank ^ mask and goes
  // passive; otherwise it receives from rank + mask if that peer exists.
  const auto n = static_cast<int>(world_->size());
  const auto emit = [&](int destination, int tag, std::vector<double> data) {
    if (tracked) {
      send(destination, tag, std::move(data));
    } else {
      send_untracked(destination, tag, std::move(data));
    }
  };
  const auto emit_copy = [&](int destination, int tag,
                             std::span<const double> data) {
    if (tracked) {
      send_copy(destination, tag, data);
    } else {
      send_copy_untracked(destination, tag, data);
    }
  };
  std::vector<double> sum = std::move(payload);
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rank_ & mask) {
      emit(rank_ ^ mask, kTagTreeReduce, std::move(sum));
      break;  // passive for the rest of the reduce phase
    }
    const int peer = rank_ | mask;
    if (peer < n) {
      const auto m = recv(peer, kTagTreeReduce);
      if (m.payload.size() != sum.size())
        throw std::invalid_argument(
            "allreduce_sum_tree: mismatched payload widths");
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += m.payload[i];
    }
  }
  // Broadcast phase, highest mask first: at round `mask` the holders are
  // exactly the ranks divisible by 2*mask, and each forwards to rank+mask.
  int top = 1;
  while ((top << 1) < n) top <<= 1;
  for (int mask = top; mask >= 1; mask >>= 1) {
    const int period = 2 * mask;
    if (rank_ % period == 0) {
      const int peer = rank_ + mask;
      // The holder keeps forwarding `sum` down the tree: arena copies, not
      // per-destination vectors (the reduce phase above still moves).
      if (peer < n) emit_copy(peer, kTagTreeBcast, sum);
    } else if (rank_ % period == mask) {
      sum = recv(rank_ - mask, kTagTreeBcast).payload;
    }
  }
  return sum;
}

CommWorld::CommWorld(std::size_t size, RunPolicy policy)
    : CommWorld(WorldLayout{size, 1, 0}, nullptr, policy) {}

CommWorld::CommWorld(const WorldLayout& layout,
                     transport::Endpoint* endpoint, RunPolicy policy)
    : policy_(policy),
      layout_(layout),
      endpoint_(endpoint),
      mailboxes_(layout.local_count()),
      barrier_(layout.local_count()),
      tracker_(layout.local_count()),
      arena_(std::make_shared<PayloadArena>()) {
  if (layout_.global_size == 0)
    throw std::invalid_argument("CommWorld needs >= 1 rank");
  if (layout_.processes == 0 || layout_.process_index >= layout_.processes)
    throw std::invalid_argument("CommWorld: bad process layout");
  if (endpoint_ == nullptr) {
    if (layout_.processes != 1)
      throw std::invalid_argument(
          "CommWorld: a multi-process layout needs a transport endpoint");
    return;
  }
  if (endpoint_->process_count() != layout_.processes ||
      endpoint_->process_index() != layout_.process_index)
    throw std::invalid_argument(
        "CommWorld: endpoint and layout disagree on the process grid");
  // Drain threads feed these mailboxes from outside the fiber world: the
  // engine's deadlock detector must not fire while a rank waits on one.
  for (Mailbox& mailbox : mailboxes_) mailbox.mark_external_feed();
  util::MutexLock lock(exchange_mutex_);
  markers_from_.assign(layout_.processes, 0);
  cycle_max_from_.assign(layout_.processes, {});
}

CommWorld::~CommWorld() {
  // run() joins the drain threads on every path; this is the backstop for
  // a world destroyed without (or mid-) run.
  if (!drains_.empty()) {
    note_abort("CommWorld destroyed while draining");
    for (auto& t : drains_) {
      if (t.joinable()) t.join();
    }
  }
}

void CommWorld::run(const std::function<void(Comm&)>& body) {
  if (multiprocess()) {
    run_multiprocess(body);
    return;
  }
  switch (policy_.mode) {
    case RunPolicy::Mode::kThreadPerRank:
      run_thread_per_rank(body);
      return;
    case RunPolicy::Mode::kSuperstep:
      run_superstep(body);
      return;
    case RunPolicy::Mode::kAuto:
      // Small worlds fit the worker pool one-to-one: spawning real threads
      // is no more oversubscribed than the engine's pool and skips the
      // fiber machinery.  Beyond that, thread-per-rank degrades (and
      // eventually fails to spawn) — multiplex.
      if (layout_.local_count() > resolved_worker_count(policy_)) {
        run_superstep(body);
      } else {
        run_thread_per_rank(body);
      }
      return;
  }
}

void CommWorld::run_multiprocess(const std::function<void(Comm&)>& body) {
  drains_.reserve(layout_.processes - 1);
  for (std::size_t p = 0; p < layout_.processes; ++p) {
    if (p == layout_.process_index) continue;
    drains_.emplace_back([this, p] { drain_peer(p); });
  }
  // Always the superstep engine: its blocked-world unwinding is what turns
  // a poisoned mailbox or a dead peer into exception propagation for every
  // local rank instead of a hang.
  std::exception_ptr first_error;
  try {
    run_superstep(body);
  } catch (...) {
    first_error = std::current_exception();
  }
  if (first_error) {
    std::string reason = "rank body failed";
    try {
      std::rethrow_exception(first_error);
    } catch (const std::exception& e) {
      reason = e.what();
    } catch (...) {
    }
    note_abort(reason);
  } else {
    try {
      for (std::size_t p = 0; p < layout_.processes; ++p) {
        if (p == layout_.process_index) continue;
        endpoint_->send(p, transport::WireFrame::control(
                               transport::FrameKind::kShutdown, 0));
      }
      endpoint_->flush();
    } catch (const std::exception& e) {
      note_abort(e.what());
    }
  }
  // Each drain exits on its peer's kShutdown (orderly) or on the abort it
  // just propagated — so joining here means "the whole world finished",
  // not just this process's block.
  for (auto& t : drains_) t.join();
  drains_.clear();
  if (first_error) std::rethrow_exception(first_error);
  throw_if_aborted();
}

void CommWorld::drain_peer(std::size_t peer) {
  transport::WireFrame frame;
  try {
    while (endpoint_->recv(peer, frame)) {
      switch (frame.kind) {
        case transport::FrameKind::kMessage: {
          const std::size_t local = local_index(frame.dest);
          if (local >= mailboxes_.size())
            throw transport::TransportError("misrouted frame for rank " +
                                            std::to_string(frame.dest));
          if (frame.tracked) tracker_.record(local);
          mailboxes_[local].push(
              Message{frame.source, frame.tag, std::move(frame.payload)});
          break;
        }
        case transport::FrameKind::kBarrierMarker: {
          util::MutexLock lock(exchange_mutex_);
          ++markers_from_[peer];
          if (frame.value != markers_from_[peer])
            throw transport::TransportError(
                "barrier phase skew with process " + std::to_string(peer));
          exchange_cv_.notify_all();
          break;
        }
        case transport::FrameKind::kCycleMax: {
          util::MutexLock lock(exchange_mutex_);
          cycle_max_from_[peer].push_back(frame.value);
          exchange_cv_.notify_all();
          break;
        }
        default:
          // kHello / kShutdown never surface from Endpoint::recv.
          throw transport::TransportError("unexpected frame kind from peer " +
                                          std::to_string(peer));
      }
    }
  } catch (const std::exception& e) {
    note_abort(e.what());
  }
}

void CommWorld::note_abort(const std::string& reason) {
  {
    util::MutexLock lock(exchange_mutex_);
    if (!aborted_.load(std::memory_order_relaxed)) {
      abort_reason_ = reason;
      aborted_.store(true, std::memory_order_release);
    }
    exchange_cv_.notify_all();
  }
  if (endpoint_ != nullptr) endpoint_->abort(reason);
  for (auto& mailbox : mailboxes_) mailbox.poison(reason);
}

void CommWorld::throw_if_aborted() const {
  if (!aborted_.load(std::memory_order_acquire)) return;
  util::MutexLock lock(exchange_mutex_);
  throw transport::TransportError(abort_reason_);
}

bool CommWorld::marker_round() {
  std::uint64_t phase = 0;
  {
    util::MutexLock lock(exchange_mutex_);
    phase = ++marker_phase_;
  }
  for (std::size_t p = 0; p < layout_.processes; ++p) {
    if (p == layout_.process_index) continue;
    endpoint_->send(p, transport::WireFrame::control(
                           transport::FrameKind::kBarrierMarker, phase));
  }
  // This flush also carries every substrate message local ranks buffered
  // before arriving at the barrier — the marker lands behind them in each
  // per-peer FIFO, making it a delivery fence.
  endpoint_->flush();
  util::MutexLock lock(exchange_mutex_);
  for (std::size_t p = 0; p < layout_.processes; ++p) {
    if (p == layout_.process_index) continue;
    while (markers_from_[p] < phase) {
      if (aborted_.load(std::memory_order_acquire)) return false;
      exchange_cv_.wait(exchange_mutex_);
    }
  }
  return !aborted_.load(std::memory_order_acquire);
}

void CommWorld::exchange_barrier_round() noexcept {
  try {
    (void)marker_round();
  } catch (const std::exception& e) {
    note_abort(e.what());
  }
}

void CommWorld::exchange_cycle_close() noexcept {
  try {
    // Round 1: after this, every cycle message world-wide sits in its
    // destination process's tracker (markers fence delivery per channel).
    if (!marker_round()) return;
    const std::uint64_t local_max = tracker_.current_max();
    std::uint64_t global_max = local_max;
    for (std::size_t p = 0; p < layout_.processes; ++p) {
      if (p == layout_.process_index) continue;
      endpoint_->send(p, transport::WireFrame::control(
                             transport::FrameKind::kCycleMax, local_max));
    }
    endpoint_->flush();
    {
      util::MutexLock lock(exchange_mutex_);
      for (std::size_t p = 0; p < layout_.processes; ++p) {
        if (p == layout_.process_index) continue;
        while (cycle_max_from_[p].empty()) {
          if (aborted_.load(std::memory_order_acquire)) return;
          exchange_cv_.wait(exchange_mutex_);
        }
        global_max = std::max(global_max, cycle_max_from_[p].front());
        cycle_max_from_[p].pop_front();
      }
    }
    CommMetrics& metrics = comm_metrics();
    metrics.congestion_max_per_cycle.record_max(
        static_cast<double>(global_max));
    metrics.congestion_cycles.add(1);
    tracker_.end_cycle(global_max);
    // Local arena payloads of the cycle are consumed by now in the common
    // pattern; a straggler just defers the rewind (see close_congestion_cycle).
    (void)arena_->try_reset();
    // Round 2: no process releases its ranks into the next cycle until
    // every process finished recording this one — otherwise an early
    // peer's next-cycle messages could leak into our still-open counters.
    (void)marker_round();
  } catch (const std::exception& e) {
    note_abort(e.what());
  }
}

void CommWorld::run_thread_per_rank(const std::function<void(Comm&)>& body) {
  const std::size_t local = layout_.local_count();
  const std::size_t begin = layout_.local_begin();
  std::vector<std::thread> threads;
  threads.reserve(local);
  std::exception_ptr first_error;
  util::Mutex error_mutex;
  for (std::size_t r = 0; r < local; ++r) {
    threads.emplace_back([this, r, begin, &body, &first_error, &error_mutex] {
      Comm comm(*this, static_cast<int>(begin + r));
      try {
        body(comm);
      } catch (...) {
        util::MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void CommWorld::run_superstep(const std::function<void(Comm&)>& body) {
  SuperstepEngine::Config config;
  config.workers = policy_.workers;
  config.stack_bytes = policy_.stack_bytes;
  SuperstepEngine engine(layout_.local_count(), config);
  const std::size_t begin = layout_.local_begin();
  engine.run([this, begin, &body](int rank) {
    Comm comm(*this, static_cast<int>(begin) + rank);
    body(comm);
  });
}

}  // namespace mwr::parallel
