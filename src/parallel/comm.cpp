#include "parallel/comm.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

#include "obs/registry.hpp"
#include "parallel/superstep.hpp"
#include "util/sync.hpp"

namespace mwr::parallel {

namespace {
// Communicator telemetry across every CommWorld in the process.  Tracked
// sends are the algorithm's own messages (the congestion analysis of
// Table I); untracked sends are harness bookkeeping and reported
// separately so the two never blur.
struct CommMetrics {
  obs::Counter& messages_sent;
  obs::Counter& messages_sent_untracked;
  obs::Counter& congestion_cycles;
  obs::Gauge& congestion_max_per_cycle;

  CommMetrics()
      : messages_sent(
            obs::MetricsRegistry::global().counter("comm.messages_sent")),
        messages_sent_untracked(obs::MetricsRegistry::global().counter(
            "comm.messages_sent_untracked")),
        congestion_cycles(
            obs::MetricsRegistry::global().counter("comm.congestion_cycles")),
        congestion_max_per_cycle(obs::MetricsRegistry::global().gauge(
            "comm.congestion_max_per_cycle")) {}
};

CommMetrics& comm_metrics() {
  static CommMetrics metrics;
  return metrics;
}

std::size_t resolved_worker_count(const RunPolicy& policy) {
  if (policy.workers != 0) return policy.workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}
}  // namespace

int Comm::size() const noexcept { return static_cast<int>(world_->size()); }

void Comm::send(int destination, int tag, PayloadVec payload) {
  auto dst = static_cast<std::size_t>(destination);
  if (dst >= world_->size()) throw std::out_of_range("send: bad destination");
  world_->tracker_.record(dst);
  comm_metrics().messages_sent.add(1);
  world_->mailboxes_[dst].push(Message{rank_, tag, std::move(payload)});
}

void Comm::send_untracked(int destination, int tag, PayloadVec payload) {
  auto dst = static_cast<std::size_t>(destination);
  if (dst >= world_->size()) throw std::out_of_range("send: bad destination");
  comm_metrics().messages_sent_untracked.add(1);
  world_->mailboxes_[dst].push(Message{rank_, tag, std::move(payload)});
}

Message Comm::recv(int source, int tag) {
  return world_->mailboxes_[static_cast<std::size_t>(rank_)].recv(source, tag);
}

std::optional<Message> Comm::try_recv(int source, int tag) {
  return world_->mailboxes_[static_cast<std::size_t>(rank_)].try_recv(source,
                                                                      tag);
}

void Comm::barrier() { world_->barrier_.arrive_and_wait(); }

void Comm::close_congestion_cycle() {
  CommMetrics& metrics = comm_metrics();
  metrics.congestion_max_per_cycle.record_max(
      static_cast<double>(world_->tracker_.current_max()));
  metrics.congestion_cycles.add(1);
  world_->tracker_.end_cycle();
}

void Comm::barrier_close_cycle() {
  // The last arriver closes the cycle inside the barrier's completion slot:
  // every rank's sends of the cycle are already recorded (they arrived),
  // none can send for the next one (none is released), so the captured
  // per-cycle maximum is identical to the barrier/close/barrier bracket —
  // at one synchronization instead of two.
  world_->barrier_.arrive_and_wait([this] { close_congestion_cycle(); });
}

std::vector<double> Comm::broadcast(int root, std::vector<double> payload) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kTagBroadcast, payload);
    }
    return payload;
  }
  return recv(root, kTagBroadcast).payload;
}

std::vector<std::vector<double>> Comm::gather(int root,
                                              std::vector<double> payload) {
  if (rank_ != root) {
    send(root, kTagGather, std::move(payload));
    return {};
  }
  std::vector<std::vector<double>> all(world_->size());
  all[static_cast<std::size_t>(root)] = std::move(payload);
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    all[static_cast<std::size_t>(r)] = recv(r, kTagGather).payload;
  }
  return all;
}

std::vector<double> Comm::allreduce_sum(std::vector<double> payload) {
  // Gather-to-0 then broadcast: O(n) congestion at the root, exactly the
  // centralized communication pattern the paper charges Standard MWU for.
  const std::size_t width = payload.size();
  if (rank_ != 0) {
    send(0, kTagAllreduce, std::move(payload));
    std::vector<double> reduced = recv(0, kTagAllreduce).payload;
    if (reduced.size() != width)
      throw std::invalid_argument("allreduce_sum: mismatched payload widths");
    return reduced;
  }
  std::vector<double> sum = std::move(payload);
  for (int r = 1; r < size(); ++r) {
    const auto m = recv(r, kTagAllreduce);
    if (m.payload.size() != sum.size())
      throw std::invalid_argument("allreduce_sum: mismatched payload widths");
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += m.payload[i];
  }
  for (int r = 1; r < size(); ++r) send(r, kTagAllreduce, sum);
  return sum;
}

std::vector<double> Comm::allreduce_sum_tree(std::vector<double> payload) {
  return allreduce_tree_impl(std::move(payload), /*tracked=*/true);
}

std::vector<double> Comm::allreduce_sum_tree_untracked(
    std::vector<double> payload) {
  return allreduce_tree_impl(std::move(payload), /*tracked=*/false);
}

std::vector<double> Comm::allreduce_tree_impl(std::vector<double> payload,
                                              bool tracked) {
  // Binomial tree rooted at 0.  Reduce phase: at round r (mask = 1 << r), a
  // rank whose bit r is set sends its partial sum to rank ^ mask and goes
  // passive; otherwise it receives from rank + mask if that peer exists.
  const auto n = static_cast<int>(world_->size());
  const auto emit = [&](int destination, int tag, std::vector<double> data) {
    if (tracked) {
      send(destination, tag, std::move(data));
    } else {
      send_untracked(destination, tag, std::move(data));
    }
  };
  std::vector<double> sum = std::move(payload);
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rank_ & mask) {
      emit(rank_ ^ mask, kTagTreeReduce, std::move(sum));
      break;  // passive for the rest of the reduce phase
    }
    const int peer = rank_ | mask;
    if (peer < n) {
      const auto m = recv(peer, kTagTreeReduce);
      if (m.payload.size() != sum.size())
        throw std::invalid_argument(
            "allreduce_sum_tree: mismatched payload widths");
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += m.payload[i];
    }
  }
  // Broadcast phase, highest mask first: at round `mask` the holders are
  // exactly the ranks divisible by 2*mask, and each forwards to rank+mask.
  int top = 1;
  while ((top << 1) < n) top <<= 1;
  for (int mask = top; mask >= 1; mask >>= 1) {
    const int period = 2 * mask;
    if (rank_ % period == 0) {
      const int peer = rank_ + mask;
      if (peer < n) emit(peer, kTagTreeBcast, sum);
    } else if (rank_ % period == mask) {
      sum = recv(rank_ - mask, kTagTreeBcast).payload;
    }
  }
  return sum;
}

CommWorld::CommWorld(std::size_t size, RunPolicy policy)
    : policy_(policy), mailboxes_(size), barrier_(size), tracker_(size) {
  if (size == 0) throw std::invalid_argument("CommWorld needs >= 1 rank");
}

void CommWorld::run(const std::function<void(Comm&)>& body) {
  switch (policy_.mode) {
    case RunPolicy::Mode::kThreadPerRank:
      run_thread_per_rank(body);
      return;
    case RunPolicy::Mode::kSuperstep:
      run_superstep(body);
      return;
    case RunPolicy::Mode::kAuto:
      // Small worlds fit the worker pool one-to-one: spawning real threads
      // is no more oversubscribed than the engine's pool and skips the
      // fiber machinery.  Beyond that, thread-per-rank degrades (and
      // eventually fails to spawn) — multiplex.
      if (size() > resolved_worker_count(policy_)) {
        run_superstep(body);
      } else {
        run_thread_per_rank(body);
      }
      return;
  }
}

void CommWorld::run_thread_per_rank(const std::function<void(Comm&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(size());
  std::exception_ptr first_error;
  util::Mutex error_mutex;
  for (std::size_t r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &body, &first_error, &error_mutex] {
      Comm comm(*this, static_cast<int>(r));
      try {
        body(comm);
      } catch (...) {
        util::MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void CommWorld::run_superstep(const std::function<void(Comm&)>& body) {
  SuperstepEngine::Config config;
  config.workers = policy_.workers;
  config.stack_bytes = policy_.stack_bytes;
  SuperstepEngine engine(size(), config);
  engine.run([this, &body](int rank) {
    Comm comm(*this, rank);
    body(comm);
  });
}

}  // namespace mwr::parallel
