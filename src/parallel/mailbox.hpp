// Multi-producer single-consumer mailbox: the per-rank receive queue of the
// in-process communicator.
//
// Payloads are vectors of doubles plus a small integer tag, which covers
// everything the MWU algorithms exchange (weights, results, adopted
// options).  Blocking receive supports tag filtering; source filtering is
// expressed by encoding the source rank in the message envelope so the
// congestion tracker can attribute load.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace mwr::parallel {

/// Any-source / any-tag wildcard for Mailbox::recv.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// One message envelope: who sent it, what kind it is, and its payload.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<double> payload;
};

/// Thread-safe FIFO mailbox.  Multiple senders may push concurrently; the
/// owning rank consumes.  recv() matches the *oldest* message satisfying the
/// (source, tag) filter, which mirrors MPI's non-overtaking guarantee per
/// (source, tag) channel.
class Mailbox {
 public:
  /// Enqueues a message and wakes the receiver.
  void push(Message message);

  /// Blocks until a matching message arrives, then removes and returns it.
  [[nodiscard]] Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe-and-take; std::nullopt when nothing matches.
  [[nodiscard]] std::optional<Message> try_recv(int source = kAnySource,
                                                int tag = kAnyTag);

  /// Messages currently queued (racy by nature; for diagnostics).
  [[nodiscard]] std::size_t pending() const;

 private:
  [[nodiscard]] std::optional<Message> take_locked(int source, int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace mwr::parallel
