// Multi-producer single-consumer mailbox: the per-rank receive queue of the
// in-process communicator.
//
// Payloads are small sequences of doubles plus a small integer tag, which
// covers everything the MWU algorithms exchange (weights, results, adopted
// options).  Blocking receive supports tag filtering; source filtering is
// expressed by encoding the source rank in the message envelope so the
// congestion tracker can attribute load.
//
// Two properties matter at large populations:
//  - payloads up to kInlineDoubles live inside the envelope (small-buffer
//    optimization), so the dominant message shapes of the Distributed SPMD
//    driver — empty observe requests and one-double replies — never touch
//    the heap per message;
//  - a receiver running as a fiber on the superstep engine suspends
//    cooperatively (parallel/coop.hpp) instead of parking its OS thread,
//    so thousands of blocked ranks cost nothing but their registration.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parallel/coop.hpp"
#include "parallel/payload_arena.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel {

/// Any-source / any-tag wildcard for Mailbox::recv.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Message payload with a small-buffer optimization: up to kInlineDoubles
/// values are stored inline, longer payloads spill to a heap vector (whose
/// buffer is stolen when constructed from a vector rvalue) — or, on the
/// collective fan-out path, into a per-superstep PayloadArena whose bump
/// allocation replaces the per-destination vector copy.  Arena-backed
/// payloads pin the arena through a shared_ptr and release their doubles on
/// destruction, which is what lets the communicator rewind the arena at
/// cycle-close barriers.  Exposes the subset of the vector interface the
/// substrate and its callers use, plus implicit conversion back to
/// std::vector<double> at collective boundaries.
class PayloadVec {
 public:
  static constexpr std::size_t kInlineDoubles = 4;

  PayloadVec() noexcept = default;

  ~PayloadVec() {
    if (arena_ptr_ != nullptr) arena_->release(size_);
  }

  PayloadVec(PayloadVec&& other) noexcept
      : size_(other.size_),
        inline_(other.inline_),
        heap_(std::move(other.heap_)),
        arena_(std::move(other.arena_)),
        arena_ptr_(other.arena_ptr_) {
    other.arena_ptr_ = nullptr;
    other.size_ = 0;
  }

  PayloadVec& operator=(PayloadVec&& other) noexcept {
    if (this != &other) {
      if (arena_ptr_ != nullptr) arena_->release(size_);
      size_ = other.size_;
      inline_ = other.inline_;
      heap_ = std::move(other.heap_);
      arena_ = std::move(other.arena_);
      arena_ptr_ = other.arena_ptr_;
      other.arena_ptr_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  /// Copies are deep and arena-free: a copied payload owns its doubles on
  /// the heap, so copies never extend the arena's outstanding window.
  PayloadVec(const PayloadVec& other) : size_(other.size_) {
    if (size_ <= kInlineDoubles) {
      inline_ = other.inline_;
    } else {
      heap_.assign(other.data(), other.data() + size_);
    }
  }

  PayloadVec& operator=(const PayloadVec& other) {
    if (this != &other) {
      PayloadVec copy(other);
      *this = std::move(copy);
    }
    return *this;
  }

  /// Arena-backed copy of `values`: inline when it fits, otherwise the
  /// doubles land in `arena` and the payload keeps the arena alive.
  PayloadVec(std::span<const double> values,
             const std::shared_ptr<PayloadArena>& arena) {
    size_ = values.size();
    if (size_ <= kInlineDoubles) {
      for (std::size_t i = 0; i < size_; ++i) inline_[i] = values[i];
      return;
    }
    arena_ = arena;
    arena_ptr_ = arena_->allocate(size_);
    for (std::size_t i = 0; i < size_; ++i) arena_ptr_[i] = values[i];
  }

  PayloadVec(std::initializer_list<double> values) {
    if (values.size() <= kInlineDoubles) {
      size_ = values.size();
      std::size_t i = 0;
      for (const double v : values) inline_[i++] = v;
    } else {
      size_ = values.size();
      heap_.assign(values.begin(), values.end());
    }
  }

  // Implicit by design: send sites hand over std::vector payloads exactly
  // as they did before the small-buffer representation existed.
  PayloadVec(std::vector<double> values) {  // NOLINT(google-explicit-constructor)
    size_ = values.size();
    if (size_ <= kInlineDoubles) {
      for (std::size_t i = 0; i < size_; ++i) inline_[i] = values[i];
    } else {
      heap_ = std::move(values);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// True when the payload owns a per-message heap vector (neither inline
  /// nor arena-backed) — the allocation the arena exists to avoid.
  [[nodiscard]] bool spilled() const noexcept {
    return size_ > kInlineDoubles && arena_ptr_ == nullptr;
  }
  [[nodiscard]] bool arena_backed() const noexcept {
    return arena_ptr_ != nullptr;
  }

  [[nodiscard]] const double* data() const noexcept {
    if (arena_ptr_ != nullptr) return arena_ptr_;
    return size_ > kInlineDoubles ? heap_.data() : inline_.data();
  }
  [[nodiscard]] double* data() noexcept {
    if (arena_ptr_ != nullptr) return arena_ptr_;
    return size_ > kInlineDoubles ? heap_.data() : inline_.data();
  }

  [[nodiscard]] const double* begin() const noexcept { return data(); }
  [[nodiscard]] const double* end() const noexcept { return data() + size_; }

  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] double at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("PayloadVec::at");
    return data()[i];
  }

  [[nodiscard]] std::vector<double> to_vector() && {
    if (spilled()) return std::move(heap_);
    return std::vector<double>(begin(), end());
  }
  [[nodiscard]] std::vector<double> to_vector() const& {
    return std::vector<double>(begin(), end());
  }

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::vector<double>() && { return std::move(*this).to_vector(); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::vector<double>() const& { return to_vector(); }

 private:
  std::size_t size_ = 0;
  std::array<double, kInlineDoubles> inline_{};
  std::vector<double> heap_;  ///< engaged iff spilled().
  std::shared_ptr<PayloadArena> arena_;  ///< keeps arena storage alive.
  double* arena_ptr_ = nullptr;  ///< engaged iff arena_backed().
};

/// One message envelope: who sent it, what kind it is, and its payload.
struct Message {
  int source = 0;
  int tag = 0;
  PayloadVec payload;
};

/// Thread-safe FIFO mailbox.  Multiple senders may push concurrently; the
/// owning rank consumes.  recv() matches the *oldest* message satisfying the
/// (source, tag) filter, which mirrors MPI's non-overtaking guarantee per
/// (source, tag) channel.  When the receiver is a superstep-engine fiber,
/// recv() suspends the fiber instead of blocking the worker thread.
class Mailbox {
 public:
  /// Enqueues a message and wakes the receiver.
  void push(Message message) MWR_EXCLUDES(mutex_);

  /// Blocks until a matching message arrives, then removes and returns it.
  /// On the cooperative (fiber) path the mailbox lock is fully released
  /// before the fiber suspends across the coop-scheduler seam and
  /// re-acquired on resume — the waiter registration under mutex_ is what
  /// keeps the wake from being lost in between.
  [[nodiscard]] Message recv(int source = kAnySource, int tag = kAnyTag)
      MWR_EXCLUDES(mutex_);

  /// Non-blocking probe-and-take; std::nullopt when nothing matches.
  [[nodiscard]] std::optional<Message> try_recv(int source = kAnySource,
                                                int tag = kAnyTag)
      MWR_EXCLUDES(mutex_);

  /// Fails the mailbox: wakes any blocked receiver and makes recv() /
  /// try_recv() throw once no already-delivered message matches.  The
  /// multi-process world uses this to unblock ranks waiting on messages a
  /// dead peer will never send.
  void poison(std::string reason) MWR_EXCLUDES(mutex_);

  /// Messages currently queued (racy by nature; for diagnostics).
  [[nodiscard]] std::size_t pending() const MWR_EXCLUDES(mutex_);

  /// Declares that pushes can originate outside the fiber world (a
  /// transport drain thread).  A fiber blocking on such a mailbox brackets
  /// its suspension with CoopScheduler::note_external_wait so the engine's
  /// deadlock detector does not mistake a wait for remote traffic for an
  /// all-blocked world.  Set once by the multi-process CommWorld before any
  /// rank runs.
  void mark_external_feed() noexcept { external_feed_ = true; }

 private:
  [[nodiscard]] std::optional<Message> take_locked(int source, int tag)
      MWR_REQUIRES(mutex_);
  void throw_if_poisoned_locked() const MWR_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<Message> queue_ MWR_GUARDED_BY(mutex_);
  bool poisoned_ MWR_GUARDED_BY(mutex_) = false;
  std::string poison_reason_ MWR_GUARDED_BY(mutex_);
  // Single-consumer: at most one registered cooperative waiter (the owning
  // rank's fiber), armed under mutex_ by recv and disarmed by push.
  CoopToken waiter_ MWR_GUARDED_BY(mutex_){};
  bool has_waiter_ MWR_GUARDED_BY(mutex_) = false;
  // Written once before the world runs, read by the owning fiber only.
  bool external_feed_ = false;
};

}  // namespace mwr::parallel
