// Cooperative-blocking hook between the low-level synchronization
// primitives (Mailbox, CountingBarrier) and the superstep engine.
//
// When a logical rank executes as a fiber on the engine's worker pool, a
// blocking wait must suspend the *fiber*, not the OS thread — otherwise a
// handful of blocked ranks would starve the bounded worker pool and
// deadlock the world.  Rather than teaching Mailbox/CountingBarrier about
// the engine (an upward dependency), the engine publishes a thread-local
// CoopToken while a fiber runs; the primitives consult it and route their
// wait through suspend_current()/wake() when present, falling back to
// their historical condition-variable paths on plain OS threads
// (thread-per-rank mode, standalone use, tests).
#pragma once

namespace mwr::parallel {

/// The scheduler-facing half of the hook, implemented by SuperstepEngine.
class CoopScheduler {
 public:
  virtual ~CoopScheduler() = default;

  /// Suspends the calling fiber until wake() is delivered for its rank.
  /// May return spuriously (a stale wake from an earlier registration), so
  /// callers must re-check their predicate in a loop.  Must only be called
  /// from a fiber owned by this scheduler.  Throws SuperstepAbort when the
  /// engine is unwinding blocked ranks (deadlock / fatal error), which
  /// callers must let propagate.
  virtual void suspend_current() = 0;

  /// Marks `rank` runnable (or remembers the wake if it is currently
  /// running / already runnable).  Thread-safe; callable from any fiber or
  /// OS thread, including while the target is between registering a waiter
  /// and actually suspending.
  virtual void wake(int rank) = 0;

  /// Barrier completions report here so the engine can count superstep
  /// boundaries (obs metric spmd.engine.supersteps).
  virtual void note_superstep_boundary() noexcept = 0;

  /// Brackets a suspension whose wake can come from *outside* the fiber
  /// world (a transport drain thread delivering a remote message).  While
  /// any such wait is outstanding the engine must not treat an all-blocked
  /// rank set as a deadlock — progress can still arrive over the wire.
  /// delta is +1 entering the wait, -1 leaving it (normally or by unwind).
  virtual void note_external_wait(int delta) noexcept { (void)delta; }
};

/// Identity of the fiber currently executing on this OS thread.  A copy of
/// the token is what a primitive stores as a registered waiter: it stays
/// valid for the engine's whole run() (tokens live in engine-owned storage).
struct CoopToken {
  CoopScheduler* scheduler = nullptr;
  int rank = -1;

  void wake() const { scheduler->wake(rank); }
};

/// Token of the fiber running on the calling OS thread, or nullptr when the
/// caller is a plain thread (use the blocking condvar path then).
[[nodiscard]] const CoopToken* coop_current() noexcept;

/// Engine-internal: installs/clears the thread-local token around each
/// fiber slice.
void coop_set_current(const CoopToken* token) noexcept;

}  // namespace mwr::parallel
