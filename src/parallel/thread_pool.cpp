#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace mwr::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, size());
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

}  // namespace mwr::parallel
