#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/registry.hpp"

namespace mwr::parallel {

namespace {
// Pool telemetry, shared by every pool in the process: work executed,
// how long tasks sat queued (the stall the precompute phase amortizes
// away), and the deepest backlog seen.
struct PoolMetrics {
  obs::Counter& tasks_executed;
  obs::Histogram& queue_wait_seconds;
  obs::Gauge& queue_depth_hwm;

  PoolMetrics()
      : tasks_executed(obs::MetricsRegistry::global().counter(
            "thread_pool.tasks_executed")),
        queue_wait_seconds(obs::MetricsRegistry::global().histogram(
            "thread_pool.queue_wait_seconds")),
        queue_depth_hwm(obs::MetricsRegistry::global().gauge(
            "thread_pool.queue_depth_hwm")) {}
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

// The pool whose worker_loop the current thread is executing, if any.
// parallel_for_index consults it to detect nested use of the same pool.
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Shutdown ordering: a pool worker destroying its own pool would join
  // itself — the one ordering the inline nested-parallel_for_index path
  // cannot reach, and the destructor's MWR_EXCLUDES(mutex_) already rules
  // out a caller arriving with the queue lock held.
  assert(current_worker_pool != this &&
         "~ThreadPool called from one of its own workers (self-join)");
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  PoolMetrics& metrics = pool_metrics();
  std::size_t depth = 0;
  {
    util::MutexLock lock(mutex_);
    if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
    queue_.push(Task{std::move(fn), std::chrono::steady_clock::now()});
    depth = queue_.size();
  }
  metrics.queue_depth_hwm.record_max(static_cast<double>(depth));
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  PoolMetrics& metrics = pool_metrics();
  current_worker_pool = this;
  for (;;) {
    Task task;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    metrics.queue_wait_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task.enqueued)
            .count());
    task.fn();  // packaged_task captures exceptions into the future
    metrics.tasks_executed.add(1);
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (current_worker_pool == this) {
    // Nested call from one of our own tasks: run inline.  Submitting back
    // into the pool and blocking on the futures can deadlock — with all
    // workers inside such calls, the chunks sit queued behind the tasks
    // that are waiting for them.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(count, size());
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

}  // namespace mwr::parallel
