#include "parallel/mailbox.hpp"

namespace mwr::parallel {

void Mailbox::push(Message message) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::take_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const bool source_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (source_ok && tag_ok) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::recv(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto m = take_locked(source, tag)) return std::move(*m);
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_recv(int source, int tag) {
  std::scoped_lock lock(mutex_);
  return take_locked(source, tag);
}

std::size_t Mailbox::pending() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

}  // namespace mwr::parallel
