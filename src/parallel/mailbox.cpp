#include "parallel/mailbox.hpp"

#include "obs/registry.hpp"

namespace mwr::parallel {

namespace {
// Receive-side telemetry across every mailbox in the process: deliveries
// (successful matched takes) and the deepest backlog any single mailbox
// accumulated — the observable face of receiver congestion.
struct MailboxMetrics {
  obs::Counter& messages_delivered;
  obs::Gauge& queue_depth_hwm;

  MailboxMetrics()
      : messages_delivered(obs::MetricsRegistry::global().counter(
            "mailbox.messages_delivered")),
        queue_depth_hwm(obs::MetricsRegistry::global().gauge(
            "mailbox.queue_depth_hwm")) {}
};

MailboxMetrics& mailbox_metrics() {
  static MailboxMetrics metrics;
  return metrics;
}
}  // namespace

void Mailbox::push(Message message) {
  std::size_t depth = 0;
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(message));
    depth = queue_.size();
  }
  mailbox_metrics().queue_depth_hwm.record_max(static_cast<double>(depth));
  cv_.notify_all();
}

std::optional<Message> Mailbox::take_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const bool source_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (source_ok && tag_ok) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::recv(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto m = take_locked(source, tag)) {
      lock.unlock();
      mailbox_metrics().messages_delivered.add(1);
      return std::move(*m);
    }
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_recv(int source, int tag) {
  std::optional<Message> taken;
  {
    std::scoped_lock lock(mutex_);
    taken = take_locked(source, tag);
  }
  if (taken) mailbox_metrics().messages_delivered.add(1);
  return taken;
}

std::size_t Mailbox::pending() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

}  // namespace mwr::parallel
