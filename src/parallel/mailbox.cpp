#include "parallel/mailbox.hpp"

#include "obs/registry.hpp"

namespace mwr::parallel {

namespace {
// Receive-side telemetry across every mailbox in the process: deliveries
// (successful matched takes) and the deepest backlog any single mailbox
// accumulated — the observable face of receiver congestion.  The payload
// counters split enqueued messages by representation: inline payloads are
// exactly the messages that would have paid a heap allocation under the
// old vector-payload envelope (empty payloads never allocated and still
// don't), arena payloads were carved from the per-superstep bump arena
// instead, and spilled payloads still pay a per-message heap vector.
struct MailboxMetrics {
  obs::Counter& messages_delivered;
  obs::Gauge& queue_depth_hwm;
  obs::Counter& payload_inline_msgs;
  obs::Counter& payload_arena_msgs;
  obs::Counter& payload_spilled_msgs;

  MailboxMetrics()
      : messages_delivered(obs::MetricsRegistry::global().counter(
            "mailbox.messages_delivered")),
        queue_depth_hwm(obs::MetricsRegistry::global().gauge(
            "mailbox.queue_depth_hwm")),
        payload_inline_msgs(obs::MetricsRegistry::global().counter(
            "mailbox.payload_inline_msgs")),
        payload_arena_msgs(obs::MetricsRegistry::global().counter(
            "mailbox.payload_arena_msgs")),
        payload_spilled_msgs(obs::MetricsRegistry::global().counter(
            "mailbox.payload_spilled_msgs")) {}
};

MailboxMetrics& mailbox_metrics() {
  static MailboxMetrics metrics;
  return metrics;
}
}  // namespace

void Mailbox::push(Message message) {
  MailboxMetrics& metrics = mailbox_metrics();
  if (!message.payload.empty()) {
    if (message.payload.arena_backed()) {
      metrics.payload_arena_msgs.add(1);
    } else if (message.payload.spilled()) {
      metrics.payload_spilled_msgs.add(1);
    } else {
      metrics.payload_inline_msgs.add(1);
    }
  }
  std::size_t depth = 0;
  CoopToken waiter{};
  bool wake_fiber = false;
  {
    util::MutexLock lock(mutex_);
    queue_.push_back(std::move(message));
    depth = queue_.size();
    if (has_waiter_) {
      waiter = waiter_;
      has_waiter_ = false;
      wake_fiber = true;
    }
  }
  metrics.queue_depth_hwm.record_max(static_cast<double>(depth));
  if (wake_fiber) waiter.wake();
  cv_.notify_all();
}

void Mailbox::poison(std::string reason) {
  CoopToken waiter{};
  bool wake_fiber = false;
  {
    util::MutexLock lock(mutex_);
    if (poisoned_) return;
    poisoned_ = true;
    poison_reason_ = std::move(reason);
    if (has_waiter_) {
      waiter = waiter_;
      has_waiter_ = false;
      wake_fiber = true;
    }
  }
  if (wake_fiber) waiter.wake();
  cv_.notify_all();
}

void Mailbox::throw_if_poisoned_locked() const {
  if (poisoned_)
    throw std::runtime_error("mailbox poisoned: " + poison_reason_);
}

std::optional<Message> Mailbox::take_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const bool source_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (source_ok && tag_ok) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::recv(int source, int tag) {
  if (const CoopToken* coop = coop_current()) {
    // Cooperative path: the owning rank runs as a fiber.  Register as the
    // mailbox's waiter under the lock (so a concurrent push cannot miss
    // us), release the lock completely, then suspend the fiber across the
    // coop-scheduler seam; wakes may be spurious, so re-check.
    for (;;) {
      {
        util::MutexLock lock(mutex_);
        if (auto m = take_locked(source, tag)) {
          lock.unlock();
          mailbox_metrics().messages_delivered.add(1);
          return std::move(*m);
        }
        throw_if_poisoned_locked();
        waiter_ = *coop;
        has_waiter_ = true;
      }
      if (external_feed_) {
        // The wake may come from a transport drain thread: bracket the
        // suspension so the engine knows the world can still progress.
        // suspend_current can throw (SuperstepAbort unwind) — balance the
        // count on that path too.
        coop->scheduler->note_external_wait(+1);
        try {
          coop->scheduler->suspend_current();
        } catch (...) {
          coop->scheduler->note_external_wait(-1);
          throw;
        }
        coop->scheduler->note_external_wait(-1);
      } else {
        coop->scheduler->suspend_current();
      }
    }
  }
  std::optional<Message> taken;
  {
    util::MutexLock lock(mutex_);
    for (;;) {
      taken = take_locked(source, tag);
      if (taken) break;
      throw_if_poisoned_locked();
      cv_.wait(mutex_);
    }
  }
  mailbox_metrics().messages_delivered.add(1);
  return std::move(*taken);
}

std::optional<Message> Mailbox::try_recv(int source, int tag) {
  std::optional<Message> taken;
  {
    util::MutexLock lock(mutex_);
    taken = take_locked(source, tag);
    if (!taken) throw_if_poisoned_locked();
  }
  if (taken) mailbox_metrics().messages_delivered.add(1);
  return taken;
}

std::size_t Mailbox::pending() const {
  util::MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace mwr::parallel
