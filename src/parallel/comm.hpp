// In-process message-passing communicator, modeled on the MPI subset the
// paper's algorithms need.
//
// Substitution note (DESIGN.md §2): the paper's Distributed MWU targets
// distributed-memory clusters.  This container has no MPI runtime, so we
// provide an MPI-shaped substrate with two interchangeable execution
// modes: classic one-OS-thread-per-rank, and the bounded-thread superstep
// engine (parallel/superstep.hpp) that multiplexes logical ranks as
// cooperative fibers over a fixed worker pool.  Point-to-point send/recv
// (non-overtaking per channel), barrier, broadcast, gather, and
// allreduce(sum) behave identically in both modes — seeded SPMD
// trajectories are bit-identical, pinned by tests — but the engine scales
// to thousands of ranks on a handful of hardware threads.  Every delivered
// message is attributed to its destination in a CongestionTracker, which
// is the quantity the paper's communication analysis is actually about.
//
// Usage follows the SPMD pattern of the LLNL MPI tutorial: construct a
// CommWorld of `size` ranks, then run one function per rank, each receiving
// its Comm handle:
//
//   CommWorld world(8);
//   world.run([&](Comm& comm) { ... comm.rank() ... comm.barrier(); ... });
// Multi-process worlds (the pluggable transport seam, DESIGN.md §11):
// the same CommWorld can be one *process's share* of a larger world.  A
// WorldLayout names the global size and this process's contiguous rank
// block; a transport::Endpoint (shm ring or UDS, parallel/transport/)
// carries frames to the sibling processes.  Local ranks run as superstep
// fibers exactly as before; sends to remote ranks are encoded as
// WireFrames and batched across the seam, and one drain thread per peer
// feeds remote messages into the local mailboxes.  Barriers extend across
// processes via a marker exchange performed in the local barrier's
// completion slot, and barrier_close_cycle() additionally reduces the
// per-process congestion maxima so every process records the identical
// world-wide per-cycle maximum.  A world with no endpoint is the
// historical in-process substrate, bit-identical and untouched.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "parallel/barrier.hpp"
#include "parallel/congestion.hpp"
#include "parallel/fiber.hpp"
#include "parallel/mailbox.hpp"

namespace mwr::parallel {

namespace transport {
class Endpoint;
}  // namespace transport

class CommWorld;

/// How a global world is split across processes: `processes` contiguous
/// rank blocks, sized as evenly as possible (the first global_size %
/// processes blocks get one extra rank).  Every process derives the same
/// block map from the same (global_size, processes) pair.
struct WorldLayout {
  std::size_t global_size = 1;
  std::size_t processes = 1;
  std::size_t process_index = 0;

  [[nodiscard]] static std::size_t block_begin(std::size_t global_size,
                                               std::size_t processes,
                                               std::size_t process) noexcept;
  [[nodiscard]] static std::size_t block_count(std::size_t global_size,
                                               std::size_t processes,
                                               std::size_t process) noexcept;
  /// Which process hosts global rank `rank`.
  [[nodiscard]] static std::size_t owner_of(std::size_t global_size,
                                            std::size_t processes,
                                            std::size_t rank) noexcept;

  [[nodiscard]] std::size_t local_begin() const noexcept {
    return block_begin(global_size, processes, process_index);
  }
  [[nodiscard]] std::size_t local_count() const noexcept {
    return block_count(global_size, processes, process_index);
  }
};

/// How CommWorld::run maps logical ranks onto OS threads.
struct RunPolicy {
  enum class Mode {
    /// Superstep engine when the world outnumbers the worker pool,
    /// thread-per-rank otherwise (small worlds carry no oversubscription
    /// risk and skip the fiber machinery).
    kAuto,
    /// One OS thread per rank — the historical substrate.
    kThreadPerRank,
    /// Cooperative fibers on a bounded worker pool, always.
    kSuperstep,
  };

  Mode mode = Mode::kAuto;
  /// Superstep worker threads; 0 = hardware_concurrency.
  std::size_t workers = 0;
  /// Per-fiber stack reservation (committed lazily by the kernel).
  std::size_t stack_bytes = kDefaultFiberStackBytes;

  [[nodiscard]] static RunPolicy thread_per_rank() {
    return RunPolicy{Mode::kThreadPerRank, 0, kDefaultFiberStackBytes};
  }
  [[nodiscard]] static RunPolicy superstep(std::size_t workers = 0) {
    return RunPolicy{Mode::kSuperstep, workers, kDefaultFiberStackBytes};
  }
};

/// Per-rank handle: the API each SPMD agent programs against.
class Comm {
 public:
  Comm(CommWorld& world, int rank) noexcept : world_(&world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Point-to-point send (asynchronous: enqueues into the destination's
  /// mailbox and records congestion at the destination).  Payloads up to
  /// PayloadVec::kInlineDoubles ride inside the envelope — no per-message
  /// heap allocation for the empty/observe-sized messages that dominate at
  /// large populations.
  void send(int destination, int tag, PayloadVec payload);

  /// Like send(), but exempt from congestion accounting.  Experiments use
  /// this for harness bookkeeping (replies, convergence snapshots) so the
  /// tracker measures only the algorithm's own communication pattern.
  void send_untracked(int destination, int tag, PayloadVec payload);

  /// Fan-out send: copies `values` into the world's per-superstep payload
  /// arena (DESIGN.md §12) instead of a per-destination heap vector.
  /// Semantically identical to send() with a vector copy of `values` —
  /// same congestion accounting, same delivery order — but the collectives
  /// that send one payload to many destinations (broadcast, the allreduce
  /// reply wave, the tree broadcast phase) stop paying one allocation per
  /// destination.  Named distinctly (not an overload) because PayloadVec's
  /// implicit vector conversion would make a span overload ambiguous.
  void send_copy(int destination, int tag, std::span<const double> values);

  /// send_copy() without congestion accounting.
  void send_copy_untracked(int destination, int tag,
                           std::span<const double> values);

  /// Blocking receive with optional source/tag filters.
  [[nodiscard]] Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  [[nodiscard]] std::optional<Message> try_recv(int source = kAnySource,
                                                int tag = kAnyTag);

  /// Global synchronization (pure barrier; no congestion bookkeeping).
  void barrier();

  /// Closes the current congestion cycle: captures the heaviest-hit node's
  /// message count into the tracker statistics and resets the counters.
  /// Call from exactly one rank, bracketed by barriers so no send() races
  /// the capture:  barrier(); if (rank()==0) close_congestion_cycle();
  /// barrier();  — or use barrier_close_cycle(), which pays a single
  /// synchronization for the same effect.
  void close_congestion_cycle();

  /// Barrier whose completion closes the congestion cycle: the last
  /// arriving rank performs the close after every rank's sends of the
  /// cycle are recorded and before any rank can send for the next one.
  /// All ranks call this once per cycle; it replaces the
  /// barrier/close/barrier bracket at half the synchronization cost and
  /// with identical congestion statistics.
  void barrier_close_cycle();

  /// Root's payload is distributed to every rank; all ranks return it.
  [[nodiscard]] std::vector<double> broadcast(int root,
                                              std::vector<double> payload);

  /// Every rank contributes a payload; root returns all of them indexed by
  /// rank, non-roots return an empty vector.
  [[nodiscard]] std::vector<std::vector<double>> gather(
      int root, std::vector<double> payload);

  /// Elementwise sum across ranks; every rank returns the reduced vector.
  /// All contributions must have identical length.  Centralized (gather to
  /// rank 0 + broadcast): the root absorbs n-1 messages per call — the
  /// O(n) congestion Table I charges Standard MWU for.
  [[nodiscard]] std::vector<double> allreduce_sum(std::vector<double> payload);

  /// Same reduction over a binomial tree: reduce up, broadcast down.  Any
  /// node receives at most ceil(log2 n) messages per call, trading the
  /// root hotspot for 2*ceil(log2 n) sequential rounds — the classic
  /// latency/congestion trade-off, measurable against allreduce_sum via
  /// the congestion tracker.
  [[nodiscard]] std::vector<double> allreduce_sum_tree(
      std::vector<double> payload);

  /// allreduce_sum_tree with congestion-exempt messages, for harness
  /// bookkeeping (e.g. the SPMD convergence snapshot): the O(log n)
  /// per-node collective without charging the algorithm's congestion
  /// account — the tree-shaped analogue of send_untracked().
  [[nodiscard]] std::vector<double> allreduce_sum_tree_untracked(
      std::vector<double> payload);

 private:
  [[nodiscard]] std::vector<double> allreduce_tree_impl(
      std::vector<double> payload, bool tracked);

  CommWorld* world_;
  int rank_;
};

/// Owns the mailboxes, barrier, and congestion tracker shared by all local
/// ranks — the whole world in-process, or one process's block of a
/// multi-process world when constructed over a transport endpoint.
class CommWorld {
 public:
  explicit CommWorld(std::size_t size, RunPolicy policy = {});

  /// One process's share of a multi-process world.  `endpoint` (not owned;
  /// must outlive the world) connects to the sibling processes and must
  /// agree with `layout` on the process count.  Multi-process worlds
  /// always execute on the superstep engine: its blocked-world unwinding
  /// is what turns a peer death into clean exception propagation instead
  /// of a hang.  Passing nullptr with a single-process layout degenerates
  /// to the in-process substrate.
  CommWorld(const WorldLayout& layout, transport::Endpoint* endpoint,
            RunPolicy policy = {});

  ~CommWorld();
  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  /// Global world size (== local size for in-process worlds).
  [[nodiscard]] std::size_t size() const noexcept {
    return layout_.global_size;
  }
  [[nodiscard]] const WorldLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] bool multiprocess() const noexcept {
    return endpoint_ != nullptr;
  }
  [[nodiscard]] const RunPolicy& policy() const noexcept { return policy_; }

  /// Runs one logical rank per `body(comm)` — as real threads or as
  /// engine fibers per the policy — and returns when all local ranks
  /// finished (for multi-process worlds: and the peer streams closed).
  /// Exceptions from any rank propagate to the caller (first one wins).
  /// In superstep mode a world where every unfinished rank is blocked is
  /// detected, unwound, and reported instead of hanging.
  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] const CongestionTracker& congestion() const noexcept {
    return tracker_;
  }

  /// The per-superstep bump arena backing send_copy payloads.  Rewound at
  /// cycle-close barriers once no payload references it; shared_ptr so
  /// in-flight payloads keep the storage alive past world teardown.
  [[nodiscard]] const std::shared_ptr<PayloadArena>& payload_arena()
      const noexcept {
    return arena_;
  }

 private:
  friend class Comm;
  void run_thread_per_rank(const std::function<void(Comm&)>& body);
  void run_superstep(const std::function<void(Comm&)>& body);

  [[nodiscard]] std::size_t local_index(int global_rank) const noexcept {
    return static_cast<std::size_t>(global_rank) - layout_.local_begin();
  }

  // Multi-process machinery (all no-ops when endpoint_ == nullptr).
  void run_multiprocess(const std::function<void(Comm&)>& body);
  void drain_peer(std::size_t peer);
  void note_abort(const std::string& reason);
  void throw_if_aborted() const MWR_EXCLUDES(exchange_mutex_);
  /// Completion-slot body of a global barrier(): one marker round.
  /// Must not throw (it runs under the local barrier's lock) — failures
  /// become note_abort(), and released ranks throw via throw_if_aborted().
  void exchange_barrier_round() noexcept;
  /// Completion-slot body of barrier_close_cycle(): marker round (all
  /// cycle messages drained), maxima reduction, end_cycle with the global
  /// max, then a second marker round so no peer starts the next cycle
  /// before every process closed this one.
  void exchange_cycle_close() noexcept;
  /// One marker round: tell peers this process reached the next phase and
  /// wait until they all did.  Returns false when the world aborted.
  [[nodiscard]] bool marker_round();

  RunPolicy policy_;
  WorldLayout layout_;
  transport::Endpoint* endpoint_ = nullptr;
  std::vector<Mailbox> mailboxes_;
  CountingBarrier barrier_;
  CongestionTracker tracker_;
  std::shared_ptr<PayloadArena> arena_;

  // Cross-process barrier/close bookkeeping, fed by the drain threads.
  mutable util::Mutex exchange_mutex_;
  util::CondVar exchange_cv_;
  std::vector<std::uint64_t> markers_from_ MWR_GUARDED_BY(exchange_mutex_);
  std::vector<std::deque<std::uint64_t>> cycle_max_from_
      MWR_GUARDED_BY(exchange_mutex_);
  std::uint64_t marker_phase_ MWR_GUARDED_BY(exchange_mutex_) = 0;
  std::string abort_reason_ MWR_GUARDED_BY(exchange_mutex_);
  std::atomic<bool> aborted_{false};
  std::vector<std::thread> drains_;
};

// Tags reserved by the collectives; user tags should stay below 1 << 20.
inline constexpr int kTagBroadcast = 1 << 20;
inline constexpr int kTagGather = (1 << 20) + 1;
inline constexpr int kTagAllreduce = (1 << 20) + 2;
inline constexpr int kTagTreeReduce = (1 << 20) + 3;
inline constexpr int kTagTreeBcast = (1 << 20) + 4;

}  // namespace mwr::parallel
