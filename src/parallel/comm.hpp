// In-process message-passing communicator, modeled on the MPI subset the
// paper's algorithms need.
//
// Substitution note (DESIGN.md §2): the paper's Distributed MWU targets
// distributed-memory clusters.  This container has no MPI runtime, so we
// provide an MPI-shaped substrate with two interchangeable execution
// modes: classic one-OS-thread-per-rank, and the bounded-thread superstep
// engine (parallel/superstep.hpp) that multiplexes logical ranks as
// cooperative fibers over a fixed worker pool.  Point-to-point send/recv
// (non-overtaking per channel), barrier, broadcast, gather, and
// allreduce(sum) behave identically in both modes — seeded SPMD
// trajectories are bit-identical, pinned by tests — but the engine scales
// to thousands of ranks on a handful of hardware threads.  Every delivered
// message is attributed to its destination in a CongestionTracker, which
// is the quantity the paper's communication analysis is actually about.
//
// Usage follows the SPMD pattern of the LLNL MPI tutorial: construct a
// CommWorld of `size` ranks, then run one function per rank, each receiving
// its Comm handle:
//
//   CommWorld world(8);
//   world.run([&](Comm& comm) { ... comm.rank() ... comm.barrier(); ... });
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/barrier.hpp"
#include "parallel/congestion.hpp"
#include "parallel/fiber.hpp"
#include "parallel/mailbox.hpp"

namespace mwr::parallel {

class CommWorld;

/// How CommWorld::run maps logical ranks onto OS threads.
struct RunPolicy {
  enum class Mode {
    /// Superstep engine when the world outnumbers the worker pool,
    /// thread-per-rank otherwise (small worlds carry no oversubscription
    /// risk and skip the fiber machinery).
    kAuto,
    /// One OS thread per rank — the historical substrate.
    kThreadPerRank,
    /// Cooperative fibers on a bounded worker pool, always.
    kSuperstep,
  };

  Mode mode = Mode::kAuto;
  /// Superstep worker threads; 0 = hardware_concurrency.
  std::size_t workers = 0;
  /// Per-fiber stack reservation (committed lazily by the kernel).
  std::size_t stack_bytes = kDefaultFiberStackBytes;

  [[nodiscard]] static RunPolicy thread_per_rank() {
    return RunPolicy{Mode::kThreadPerRank, 0, kDefaultFiberStackBytes};
  }
  [[nodiscard]] static RunPolicy superstep(std::size_t workers = 0) {
    return RunPolicy{Mode::kSuperstep, workers, kDefaultFiberStackBytes};
  }
};

/// Per-rank handle: the API each SPMD agent programs against.
class Comm {
 public:
  Comm(CommWorld& world, int rank) noexcept : world_(&world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Point-to-point send (asynchronous: enqueues into the destination's
  /// mailbox and records congestion at the destination).  Payloads up to
  /// PayloadVec::kInlineDoubles ride inside the envelope — no per-message
  /// heap allocation for the empty/observe-sized messages that dominate at
  /// large populations.
  void send(int destination, int tag, PayloadVec payload);

  /// Like send(), but exempt from congestion accounting.  Experiments use
  /// this for harness bookkeeping (replies, convergence snapshots) so the
  /// tracker measures only the algorithm's own communication pattern.
  void send_untracked(int destination, int tag, PayloadVec payload);

  /// Blocking receive with optional source/tag filters.
  [[nodiscard]] Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  [[nodiscard]] std::optional<Message> try_recv(int source = kAnySource,
                                                int tag = kAnyTag);

  /// Global synchronization (pure barrier; no congestion bookkeeping).
  void barrier();

  /// Closes the current congestion cycle: captures the heaviest-hit node's
  /// message count into the tracker statistics and resets the counters.
  /// Call from exactly one rank, bracketed by barriers so no send() races
  /// the capture:  barrier(); if (rank()==0) close_congestion_cycle();
  /// barrier();  — or use barrier_close_cycle(), which pays a single
  /// synchronization for the same effect.
  void close_congestion_cycle();

  /// Barrier whose completion closes the congestion cycle: the last
  /// arriving rank performs the close after every rank's sends of the
  /// cycle are recorded and before any rank can send for the next one.
  /// All ranks call this once per cycle; it replaces the
  /// barrier/close/barrier bracket at half the synchronization cost and
  /// with identical congestion statistics.
  void barrier_close_cycle();

  /// Root's payload is distributed to every rank; all ranks return it.
  [[nodiscard]] std::vector<double> broadcast(int root,
                                              std::vector<double> payload);

  /// Every rank contributes a payload; root returns all of them indexed by
  /// rank, non-roots return an empty vector.
  [[nodiscard]] std::vector<std::vector<double>> gather(
      int root, std::vector<double> payload);

  /// Elementwise sum across ranks; every rank returns the reduced vector.
  /// All contributions must have identical length.  Centralized (gather to
  /// rank 0 + broadcast): the root absorbs n-1 messages per call — the
  /// O(n) congestion Table I charges Standard MWU for.
  [[nodiscard]] std::vector<double> allreduce_sum(std::vector<double> payload);

  /// Same reduction over a binomial tree: reduce up, broadcast down.  Any
  /// node receives at most ceil(log2 n) messages per call, trading the
  /// root hotspot for 2*ceil(log2 n) sequential rounds — the classic
  /// latency/congestion trade-off, measurable against allreduce_sum via
  /// the congestion tracker.
  [[nodiscard]] std::vector<double> allreduce_sum_tree(
      std::vector<double> payload);

  /// allreduce_sum_tree with congestion-exempt messages, for harness
  /// bookkeeping (e.g. the SPMD convergence snapshot): the O(log n)
  /// per-node collective without charging the algorithm's congestion
  /// account — the tree-shaped analogue of send_untracked().
  [[nodiscard]] std::vector<double> allreduce_sum_tree_untracked(
      std::vector<double> payload);

 private:
  [[nodiscard]] std::vector<double> allreduce_tree_impl(
      std::vector<double> payload, bool tracked);

  CommWorld* world_;
  int rank_;
};

/// Owns the mailboxes, barrier, and congestion tracker shared by all ranks.
class CommWorld {
 public:
  explicit CommWorld(std::size_t size, RunPolicy policy = {});

  [[nodiscard]] std::size_t size() const noexcept { return mailboxes_.size(); }
  [[nodiscard]] const RunPolicy& policy() const noexcept { return policy_; }

  /// Runs one logical rank per `body(comm)` — as real threads or as
  /// engine fibers per the policy — and returns when all ranks finished.
  /// Exceptions from any rank propagate to the caller (first one wins).
  /// In superstep mode a world where every unfinished rank is blocked is
  /// detected, unwound, and reported instead of hanging.
  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] const CongestionTracker& congestion() const noexcept {
    return tracker_;
  }

 private:
  friend class Comm;
  void run_thread_per_rank(const std::function<void(Comm&)>& body);
  void run_superstep(const std::function<void(Comm&)>& body);

  RunPolicy policy_;
  std::vector<Mailbox> mailboxes_;
  CountingBarrier barrier_;
  CongestionTracker tracker_;
};

// Tags reserved by the collectives; user tags should stay below 1 << 20.
inline constexpr int kTagBroadcast = 1 << 20;
inline constexpr int kTagGather = (1 << 20) + 1;
inline constexpr int kTagAllreduce = (1 << 20) + 2;
inline constexpr int kTagTreeReduce = (1 << 20) + 3;
inline constexpr int kTagTreeBcast = (1 << 20) + 4;

}  // namespace mwr::parallel
