#include "parallel/payload_arena.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace mwr::parallel {

namespace {
// Arena telemetry across every arena in the process: allocations served,
// successful cycle-close rewinds, and the deepest live footprint — the
// observable face of the allocator traffic the arena absorbs.
struct ArenaMetrics {
  obs::Counter& allocs;
  obs::Counter& resets;
  obs::Gauge& outstanding_hwm;

  ArenaMetrics()
      : allocs(obs::MetricsRegistry::global().counter(
            "comm.payload_arena_allocs")),
        resets(obs::MetricsRegistry::global().counter(
            "comm.payload_arena_resets")),
        outstanding_hwm(obs::MetricsRegistry::global().gauge(
            "comm.payload_arena_outstanding_hwm")) {}
};

ArenaMetrics& arena_metrics() {
  static ArenaMetrics metrics;
  return metrics;
}
}  // namespace

PayloadArena::PayloadArena(std::size_t chunk_doubles)
    : chunk_doubles_(chunk_doubles) {
  if (chunk_doubles_ == 0)
    throw std::invalid_argument("PayloadArena: chunk_doubles == 0");
}

double* PayloadArena::allocate(std::size_t n) {
  ArenaMetrics& metrics = arena_metrics();
  double* out = nullptr;
  std::size_t live = 0;
  {
    util::MutexLock lock(mutex_);
    // Advance to a chunk with room, reusing retained chunks before growing.
    while (chunk_index_ < chunks_.size() &&
           chunks_[chunk_index_].capacity - offset_ < n) {
      ++chunk_index_;
      offset_ = 0;
    }
    if (chunk_index_ == chunks_.size()) {
      const std::size_t capacity = n > chunk_doubles_ ? n : chunk_doubles_;
      chunks_.push_back(
          Chunk{std::make_unique<double[]>(capacity), capacity});
      offset_ = 0;
    }
    out = chunks_[chunk_index_].data.get() + offset_;
    offset_ += n;
    live = outstanding_.fetch_add(n, std::memory_order_acq_rel) + n;
  }
  metrics.allocs.add(1);
  metrics.outstanding_hwm.record_max(static_cast<double>(live));
  return out;
}

void PayloadArena::release(std::size_t n) noexcept {
  outstanding_.fetch_sub(n, std::memory_order_acq_rel);
}

bool PayloadArena::try_reset() {
  util::MutexLock lock(mutex_);
  // Releases only decrease the count and allocations are excluded by the
  // lock, so a zero observed here stays zero for the whole rewind.
  if (outstanding_.load(std::memory_order_acquire) != 0) return false;
  chunk_index_ = 0;
  offset_ = 0;
  arena_metrics().resets.add(1);
  return true;
}

std::size_t PayloadArena::chunk_count() const {
  util::MutexLock lock(mutex_);
  return chunks_.size();
}

}  // namespace mwr::parallel
