// Bounded-thread superstep execution engine.
//
// Runs P logical ranks as cooperative fibers multiplexed onto W worker
// threads (default: hardware_concurrency), so population scale is a
// parameter instead of an OS-thread wall.  The pool is persistent: workers
// are spawned on first use and parked between jobs, fiber stacks are
// recycled run-to-run, and the same pool serves both fiber scheduling
// (run) and fiberless sweeps (parallel_for) — an engine resident in a
// server costs no thread spawn/join per epoch.  Blocking points in the
// communication substrate (Mailbox::recv, CountingBarrier) suspend the
// *fiber* through the coop hook (parallel/coop.hpp); barriers thereby
// become superstep boundaries — between two barriers the engine simply
// drains the runnable set — instead of P parked OS threads.
//
// Determinism: the engine adds no randomness and imposes no ordering the
// thread-per-rank substrate did not already allow.  Every recv is filtered
// by (source, tag) over non-overtaking per-channel queues and every rank
// draws from its private RngStream, so any legal interleaving — including
// the engine's, at any worker count — produces bit-identical trajectories
// (pinned by tests/test_superstep.cpp and the driver bit-identity tests).
//
// Failure handling improves on thread-per-rank: when every unfinished rank
// is blocked (a rank threw while peers wait on it, or a genuine protocol
// deadlock), the engine unwinds the blocked fibers by making their
// suspension throw SuperstepAbort — stacks run their destructors — and
// run() rethrows the first body exception, or reports the deadlock.
#pragma once

#include <cstddef>
#include <functional>

#include "parallel/coop.hpp"
#include "parallel/fiber.hpp"

namespace mwr::parallel {

/// Thrown through a blocked rank's stack when the engine unwinds it; only
/// the engine itself catches this.  Deliberately not derived from
/// std::exception so rank bodies' catch(const std::exception&) handlers
/// cannot swallow the unwind.
struct SuperstepAbort {};

class SuperstepEngine final : public CoopScheduler {
 public:
  struct Config {
    std::size_t workers = 0;  ///< 0 = hardware_concurrency.
    std::size_t stack_bytes = kDefaultFiberStackBytes;
  };

  SuperstepEngine(std::size_t ranks, Config config);
  /// Parks, then joins, the persistent worker pool.  Workers only park
  /// between jobs — run()/parallel_for() return with every worker back at
  /// the idle wait — so by the time the destructor can legally run no
  /// thread holds the engine lock and no fiber stack is live; there is no
  /// shutdown lock ordering to get wrong (the engine lock itself is
  /// innermost by construction; see the Impl::mutex note in the .cpp).
  ~SuperstepEngine() override;

  SuperstepEngine(const SuperstepEngine&) = delete;
  SuperstepEngine& operator=(const SuperstepEngine&) = delete;

  /// Runs body(rank) for every rank in [0, ranks) to completion on the
  /// worker pool.  Rethrows the first exception any body threw; throws
  /// std::runtime_error when unfinished ranks deadlocked (after unwinding
  /// them).  Reusable: the engine may be run any number of times — worker
  /// threads are spawned once on first use and parked between jobs, and
  /// each rank's fiber stack is allocated once and recycled across runs
  /// (the epoch-pipeline contract, DESIGN.md §14).  Calls must not overlap
  /// or nest; a body must not call run()/parallel_for() on its own engine.
  void run(const std::function<void(int)>& body);

  /// Fiberless data-parallel sweep: runs fn(i) for every i in [0, count)
  /// on the persistent pool, with the caller participating.  The index
  /// space is split into contiguous chunks by a pure function of
  /// (count, workers) *before* fan-out, so the work decomposition is
  /// deterministic; fn must be safe to call concurrently for distinct i
  /// and order-free (the probe-wave contract — each call's result must
  /// not depend on its schedule).  With workers() <= 1 the sweep runs
  /// inline on the caller with no wakeups.  Rethrows the first exception
  /// any fn call threw, after the sweep drains.  Same no-overlap rule as
  /// run().
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t ranks() const noexcept;
  [[nodiscard]] std::size_t workers() const noexcept;

  // CoopScheduler interface (called from primitives via coop_current()).
  void suspend_current() override;
  void wake(int rank) override;
  void note_superstep_boundary() noexcept override;
  void note_external_wait(int delta) noexcept override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mwr::parallel
