// Reusable synchronization barrier with cycle accounting.
//
// The Standard and Slate MWU algorithms end every iteration with a global
// synchronization before the weight update (paper §II-A/B); the cost model
// charges one "update cycle" per barrier generation.  std::barrier covers
// the synchronization itself, but the experiments also need to *count*
// generations and measure how long agents wait — CountingBarrier wraps a
// central (mutex + condvar) barrier with those counters.
//
// Parties may be OS threads (thread-per-rank CommWorld) or superstep-engine
// fibers: a fiber party suspends cooperatively through parallel/coop.hpp,
// making each completed generation a superstep boundary instead of P
// parked threads.  The completion-callback overload runs a callable
// exactly once per generation — by the last arriver, after everyone has
// arrived and before anyone is released — which lets callers fold
// per-cycle bookkeeping (congestion-cycle close) into the barrier instead
// of paying a second synchronization for it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "parallel/coop.hpp"

namespace mwr::parallel {

/// A reusable N-party barrier that records the number of completed
/// generations and the cumulative wait time across all parties.
class CountingBarrier {
 public:
  explicit CountingBarrier(std::size_t parties);

  /// Blocks until all parties arrive.  The last arriver flips the
  /// generation and wakes the rest.
  void arrive_and_wait();

  /// Same, but the last arriver invokes `on_completion` after all parties
  /// have arrived and before any is released — the single-synchronization
  /// slot for per-cycle bookkeeping.  Every party of a generation must use
  /// the same completion (or none plus one caller with it); the barrier
  /// runs whichever completion the last arriver carried.
  void arrive_and_wait(const std::function<void()>& on_completion);

  /// Number of fully-completed generations (synchronization rounds).
  [[nodiscard]] std::uint64_t generations() const;

  /// Sum over all arrive_and_wait calls of the time spent blocked, in
  /// seconds.  This is the "threads wait for the slowest one" cost that
  /// motivates safe-mutation precomputation (paper §III-C).
  [[nodiscard]] double total_wait_seconds() const;

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  void arrive_impl(const std::function<void()>* on_completion);

  const std::size_t parties_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  double total_wait_seconds_ = 0.0;
  std::vector<CoopToken> fiber_waiters_;
};

}  // namespace mwr::parallel
