// Reusable synchronization barrier with cycle accounting.
//
// The Standard and Slate MWU algorithms end every iteration with a global
// synchronization before the weight update (paper §II-A/B); the cost model
// charges one "update cycle" per barrier generation.  std::barrier covers
// the synchronization itself, but the experiments also need to *count*
// generations and measure how long agents wait — CountingBarrier wraps a
// central (mutex + condvar) barrier with those counters.
//
// Parties may be OS threads (thread-per-rank CommWorld) or superstep-engine
// fibers: a fiber party suspends cooperatively through parallel/coop.hpp,
// making each completed generation a superstep boundary instead of P
// parked threads.  The completion-callback overload runs a callable
// exactly once per generation — by the last arriver, after everyone has
// arrived and before anyone is released — which lets callers fold
// per-cycle bookkeeping (congestion-cycle close) into the barrier instead
// of paying a second synchronization for it.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/coop.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel {

/// A reusable N-party barrier that records the number of completed
/// generations and the cumulative wait time across all parties.
class CountingBarrier {
 public:
  explicit CountingBarrier(std::size_t parties);

  /// Blocks until all parties arrive.  The last arriver flips the
  /// generation and wakes the rest.
  void arrive_and_wait() MWR_EXCLUDES(mutex_);

  /// Same, but the last arriver invokes `on_completion` after all parties
  /// have arrived and before any is released — the single-synchronization
  /// slot for per-cycle bookkeeping.  Every party of a generation must use
  /// the same completion (or none plus one caller with it); the barrier
  /// runs whichever completion the last arriver carried.
  void arrive_and_wait(const std::function<void()>& on_completion)
      MWR_EXCLUDES(mutex_);

  /// Number of fully-completed generations (synchronization rounds).
  [[nodiscard]] std::uint64_t generations() const MWR_EXCLUDES(mutex_);

  /// Sum over all arrive_and_wait calls of the time spent blocked, in
  /// seconds.  This is the "threads wait for the slowest one" cost that
  /// motivates safe-mutation precomputation (paper §III-C).
  [[nodiscard]] double total_wait_seconds() const MWR_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  /// A fiber party drops mutex_ around each coop suspension (the engine
  /// must be free to run peers that need the barrier) and re-takes it to
  /// re-check the generation — the release/acquire pair lives on the
  /// relockable MutexLock so the analysis tracks it.
  void arrive_impl(const std::function<void()>* on_completion)
      MWR_EXCLUDES(mutex_);

  const std::size_t parties_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::size_t arrived_ MWR_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ MWR_GUARDED_BY(mutex_) = 0;
  double total_wait_seconds_ MWR_GUARDED_BY(mutex_) = 0.0;
  std::vector<CoopToken> fiber_waiters_ MWR_GUARDED_BY(mutex_);
};

}  // namespace mwr::parallel
