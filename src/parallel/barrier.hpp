// Reusable synchronization barrier with cycle accounting.
//
// The Standard and Slate MWU algorithms end every iteration with a global
// synchronization before the weight update (paper §II-A/B); the cost model
// charges one "update cycle" per barrier generation.  std::barrier covers
// the synchronization itself, but the experiments also need to *count*
// generations and measure how long agents wait — CountingBarrier wraps a
// central (mutex + condvar) barrier with those counters.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace mwr::parallel {

/// A reusable N-party barrier that records the number of completed
/// generations and the cumulative wait time across all parties.
class CountingBarrier {
 public:
  explicit CountingBarrier(std::size_t parties);

  /// Blocks until all parties arrive.  The last arriver flips the
  /// generation and wakes the rest.
  void arrive_and_wait();

  /// Number of fully-completed generations (synchronization rounds).
  [[nodiscard]] std::uint64_t generations() const;

  /// Sum over all arrive_and_wait calls of the time spent blocked, in
  /// seconds.  This is the "threads wait for the slowest one" cost that
  /// motivates safe-mutation precomputation (paper §III-C).
  [[nodiscard]] double total_wait_seconds() const;

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  double total_wait_seconds_ = 0.0;
};

}  // namespace mwr::parallel
