// Stackful fiber: one suspendable user-level execution context, the unit
// the superstep engine multiplexes onto its bounded worker pool.
//
// Two switch substrates share this interface:
//
//  - A hand-rolled x86-64 register switch (callee-saved GPRs + mxcsr/x87
//    control word, ~25 ns round trip) used by plain Linux builds.  glibc's
//    swapcontext makes a rt_sigprocmask syscall on every switch (~225 ns
//    here), which dominated the engine's per-slice cost.
//  - POSIX ucontext (getcontext/makecontext/swapcontext) for every other
//    configuration, and always under TSan/ASan so the sanitizer fiber
//    annotations run against the path they were validated on.
//
// Stacks are reserved up-front but the kernel commits pages lazily, so
// thousands of fibers cost resident memory only for the few KiB each one
// actually touches.
//
// Sanitizer support: under ThreadSanitizer each fiber registers with
// __tsan_create_fiber and every switch is announced via
// __tsan_switch_to_fiber, so TSan tracks happens-before across fiber
// migrations between worker threads.  Under AddressSanitizer the switches
// are bracketed with __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber so fake-stack bookkeeping follows the
// active stack.
//
// A fiber may be resumed from different OS threads over its lifetime (the
// engine migrates runnable ranks to whichever worker is free), but never
// from two threads at once, and yield() must only be called from inside
// the running fiber.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace mwr::parallel {

/// Default fiber stack reservation.  Driver bodies keep bulk data on the
/// heap (vectors, MWU state), so 128 KiB leaves an order of magnitude of
/// headroom over observed use while staying cheap to reserve by the
/// thousand.
inline constexpr std::size_t kDefaultFiberStackBytes = 128 * 1024;

class Fiber {
 public:
  /// Prepares (but does not start) a fiber executing `entry`, allocating
  /// a private stack.
  Fiber(std::function<void()> entry, std::size_t stack_bytes);
  /// Same, but on a caller-owned stack (recycled across runs by the
  /// persistent superstep engine).  The stack must stay valid for the
  /// fiber's lifetime and must not be shared with a live fiber.
  Fiber(std::function<void()> entry, char* stack, std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber on the calling thread until it yields or finishes.
  /// Must not be called on a finished fiber.
  void resume();

  /// Suspends the fiber, returning control to the resume() that started
  /// this slice.  Must be called from inside this fiber.
  void yield();

  /// True once entry() has returned; resume() is no longer allowed.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// The fiber currently executing on this OS thread, or nullptr.
  [[nodiscard]] static Fiber* current() noexcept;

 private:
  static void trampoline(unsigned hi, unsigned lo);  // ucontext substrate
  static void fast_entry();                          // fast-switch substrate
  void run();

  std::function<void()> entry_;
  std::size_t stack_bytes_;
  std::unique_ptr<char[]> stack_;   // owned storage; null for external stacks.
  char* stack_base_ = nullptr;      // the stack in use, owned or external.
  ucontext_t context_{};
  ucontext_t* return_context_ = nullptr;
  // Fast-switch substrate: the fiber's saved stack pointer and the worker
  // stack pointer to switch back to (unused on the ucontext path).
  void* fast_sp_ = nullptr;
  void* fast_return_sp_ = nullptr;
  bool started_ = false;
  bool finished_ = false;

  // Sanitizer bookkeeping (unused members are harmless in plain builds).
  void* tsan_fiber_ = nullptr;
  void* tsan_return_ = nullptr;
  void* asan_fake_stack_ = nullptr;
  const void* asan_return_bottom_ = nullptr;
  std::size_t asan_return_size_ = 0;
};

}  // namespace mwr::parallel
