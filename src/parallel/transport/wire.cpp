#include "parallel/transport/wire.hpp"

#include <cstring>

namespace mwr::parallel::transport {

namespace {
// Frames above this are protocol errors, not big payloads: the largest
// legitimate payload is one collective contribution (num_options doubles),
// orders of magnitude below this.
constexpr std::size_t kMaxFrameBytes = 64u << 20;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T get(const std::uint8_t*& p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
  return value;
}
}  // namespace

std::size_t encoded_size(const WireFrame& frame) noexcept {
  return 4 + kFrameHeaderBytes + 8 * frame.payload.size();
}

void encode_frame(const WireFrame& frame, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + encoded_size(frame));
  const auto body =
      static_cast<std::uint32_t>(kFrameHeaderBytes + 8 * frame.payload.size());
  put(out, body);
  put(out, kWireMagic);
  put(out, kWireVersion);
  put(out, static_cast<std::uint8_t>(frame.kind));
  put(out, static_cast<std::uint8_t>(frame.tracked ? 1 : 0));
  put(out, frame.source);
  put(out, frame.dest);
  put(out, frame.tag);
  put(out, frame.value);
  put(out, static_cast<std::uint32_t>(frame.payload.size()));
  for (const double v : frame.payload) put(out, v);
}

std::size_t decode_frame(const std::uint8_t* data, std::size_t size,
                         WireFrame& out) {
  if (size < 4) return 0;
  const std::uint8_t* p = data;
  const auto body = get<std::uint32_t>(p);
  if (body < kFrameHeaderBytes || body > kMaxFrameBytes)
    throw WireFormatError("implausible frame length " + std::to_string(body));
  if (size < 4 + static_cast<std::size_t>(body)) return 0;
  const auto magic = get<std::uint32_t>(p);
  if (magic != kWireMagic)
    throw WireFormatError("bad magic " + std::to_string(magic));
  const auto version = get<std::uint16_t>(p);
  if (version != kWireVersion)
    throw WireFormatError("version " + std::to_string(version) +
                          " (expected " + std::to_string(kWireVersion) + ")");
  const auto kind = get<std::uint8_t>(p);
  if (kind > kMaxFrameKind)
    throw WireFormatError("unknown frame kind " + std::to_string(kind));
  out.kind = static_cast<FrameKind>(kind);
  out.tracked = get<std::uint8_t>(p) != 0;
  out.source = get<std::int32_t>(p);
  out.dest = get<std::int32_t>(p);
  out.tag = get<std::int32_t>(p);
  out.value = get<std::uint64_t>(p);
  const auto count = get<std::uint32_t>(p);
  if (kFrameHeaderBytes + 8ull * count != body)
    throw WireFormatError("payload count disagrees with frame length");
  out.payload.resize(count);
  if (count != 0) std::memcpy(out.payload.data(), p, 8ull * count);
  return 4 + static_cast<std::size_t>(body);
}

std::uint64_t geometry_fingerprint(std::size_t global_ranks,
                                   std::size_t processes) noexcept {
  // FNV-1a over the two geometry words plus the wire version, so a HELLO
  // from a world with different shape (or a future incompatible format)
  // is rejected before any payload is trusted.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(global_ranks);
  mix(processes);
  mix(kWireVersion);
  return h;
}

}  // namespace mwr::parallel::transport
