// Fork-based launcher for multi-process worlds.
//
// run_process_world() builds the requested fabric (shm ring or UDS) and a
// small MAP_SHARED result arena *before* forking, forks one worker process
// per layout block, and supervises them: each child constructs its
// endpoint and CommWorld, runs the caller's body over its rank block, and
// reports through its result slot; the parent reaps with a deadline,
// propagates the first failure to the surviving workers (shm abort flag /
// closed sockets), and SIGKILLs stragglers rather than hang.  The parent
// itself hosts no ranks — it is pure supervision, which keeps test
// harnesses and the mwr_worldd launcher out of the world's communication.
//
// The arena also carries one u32 slot per *global rank* (per-rank weight
// state such as the rank's adopted option), memory-mapped so the parent
// reads every rank's final state without any extra message traffic — the
// scaling path toward 10^5-rank worlds where gathering state through rank
// 0 would itself be a congestion hotspot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "parallel/comm.hpp"
#include "parallel/transport/shm_ring.hpp"
#include "parallel/transport/transport.hpp"

namespace mwr::parallel::transport {

struct ProcessWorldConfig {
  std::size_t global_ranks = 2;
  std::size_t processes = 2;
  TransportKind kind = TransportKind::kShmRing;
  RunPolicy policy{};
  std::size_t ring_bytes = ShmFabric::kDefaultRingBytes;
  /// Wall-clock budget for the whole world; on expiry the parent aborts
  /// the fabric and kills the workers.
  double timeout_seconds = 120.0;
};

/// What one child body returns through its result slot (capped at
/// kMaxResultDoubles values; more is a child-side error).
inline constexpr std::size_t kMaxResultDoubles = 256;

struct ProcessWorldOutcome {
  bool ok = false;
  /// First failure seen (child error, abnormal exit, or parent timeout).
  std::string error;
  /// Per-process values returned by the child bodies.
  std::vector<std::vector<double>> values;
  /// Final contents of the per-global-rank shared u32 array.
  std::vector<std::uint32_t> rank_state;
};

/// The function each worker process runs.  `rank_state` points at the
/// shared per-global-rank u32 array (global_ranks entries); ranks may
/// write their own slot at any time.  The returned doubles land in the
/// process's result slot.
using ProcessBody = std::function<std::vector<double>(
    CommWorld& world, const WorldLayout& layout, std::uint32_t* rank_state)>;

/// Forks config.processes workers, runs `body` in each, and supervises to
/// completion.  Never throws for worker failures (they land in the
/// outcome); throws TransportError only when the fabric itself cannot be
/// set up.  kInProcess is rejected — an in-process world needs no launcher.
ProcessWorldOutcome run_process_world(const ProcessWorldConfig& config,
                                      const ProcessBody& body);

}  // namespace mwr::parallel::transport
