// The transport seam under CommWorld: how one process of a multi-process
// world exchanges WireFrames with its peers.
//
// Three backends implement it (DESIGN.md §11):
//   in-process  — no Endpoint at all: CommWorld without a transport is the
//                 historical single-address-space substrate, kept
//                 bit-identical as the reference;
//   shm ring    — SPSC byte rings in a MAP_SHARED segment with futex
//                 wake-up, one per ordered process pair (shm_ring.hpp);
//   UDS         — AF_UNIX stream sockets, one per unordered process pair
//                 (uds.hpp), for worlds whose processes share nothing but
//                 the kernel.
//
// Sends are *batched across the seam*: frames accumulate in a per-peer
// buffer and reach the fabric on flush() — callers flush before every
// blocking point (Comm::recv, barrier marker exchange), so a burst of
// probe/observe traffic between two barriers crosses the process boundary
// in a handful of writes instead of one syscall per message.  Per-peer
// delivery order is FIFO; that is what the mailbox's non-overtaking
// guarantee rests on.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/transport/wire.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel::transport {

/// Which fabric a multi-process world runs on.
enum class TransportKind { kInProcess, kShmRing, kUds };

[[nodiscard]] std::string to_string(TransportKind kind);
/// Parses "inproc" / "shm" / "uds"; throws std::invalid_argument otherwise.
[[nodiscard]] TransportKind parse_transport_kind(const std::string& name);

/// Raised when the fabric fails or a peer process dies: blocked barrier
/// exchanges and sends throw it so the world unwinds instead of hanging.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error("transport: " + what) {}
};

/// One process's handle onto the fabric.  send()/flush() may be called
/// concurrently from any rank; recv() for a given peer has a single caller
/// (that peer's drain thread).
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  [[nodiscard]] virtual std::size_t process_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t process_index() const noexcept = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Queues `frame` for `peer` (FIFO per peer).  Visible to the peer only
  /// after flush(), except that a full batch buffer flushes itself.
  virtual void send(std::size_t peer, const WireFrame& frame) = 0;

  /// Pushes every buffered frame into the fabric.  Must be called before
  /// the sender blocks on anything a peer's progress depends on.
  virtual void flush() = 0;

  /// Blocking receive of the next frame from `peer`.  Returns false only
  /// on orderly end-of-stream (the peer sent kShutdown); throws
  /// TransportError when the world aborted or the peer died mid-stream —
  /// the drain thread turns that throw into a world abort.
  [[nodiscard]] virtual bool recv(std::size_t peer, WireFrame& out) = 0;

  /// Marks the whole world failed: wakes blocked senders/receivers, which
  /// then throw TransportError / return false.  Idempotent; the first
  /// reason wins.  Backends propagate it to peer processes where the
  /// fabric allows (shm abort flag; UDS socket shutdown).
  virtual void abort(const std::string& reason) = 0;

  [[nodiscard]] virtual bool aborted() const = 0;
  [[nodiscard]] virtual std::string abort_reason() const = 0;
};

/// Shared send-side batching: encodes frames into a per-peer buffer and
/// hands contiguous byte runs to the backend's write_bytes().  The per-peer
/// lock also serializes write_bytes, so frames never interleave mid-record
/// on the fabric.
class BufferedEndpoint : public Endpoint {
 public:
  /// Buffered bytes beyond which send() flushes that peer inline.
  static constexpr std::size_t kFlushThresholdBytes = 32 * 1024;

  BufferedEndpoint(std::size_t processes, std::size_t index);

  [[nodiscard]] std::size_t process_count() const noexcept override {
    return processes_;
  }
  [[nodiscard]] std::size_t process_index() const noexcept override {
    return index_;
  }

  void send(std::size_t peer, const WireFrame& frame) override;
  void flush() override;

  void abort(const std::string& reason) override;
  [[nodiscard]] bool aborted() const override;
  [[nodiscard]] std::string abort_reason() const override;

 protected:
  /// Writes `size` bytes (whole frames) to the fabric channel self->peer.
  /// Called with the peer's batch lock held; must deliver everything or
  /// throw TransportError.
  virtual void write_bytes(std::size_t peer, const std::uint8_t* data,
                           std::size_t size) = 0;

  /// Backend hook run by abort() exactly once (socket shutdown, shared
  /// abort flag, ...).  Called without batch locks held.
  virtual void abort_fabric(const std::string& reason) = 0;

  /// True once abort() ran — backends poll this in their wait loops.
  [[nodiscard]] bool abort_requested() const noexcept {
    return abort_requested_.load(std::memory_order_acquire);
  }

 private:
  struct PeerBuffer {
    util::Mutex mutex;
    std::vector<std::uint8_t> bytes MWR_GUARDED_BY(mutex);
  };

  void flush_peer(PeerBuffer& buffer, std::size_t peer);

  std::size_t processes_;
  std::size_t index_;
  std::vector<std::unique_ptr<PeerBuffer>> buffers_;
  std::atomic<bool> abort_requested_{false};
  mutable util::Mutex abort_mutex_;
  std::string abort_reason_ MWR_GUARDED_BY(abort_mutex_);
};

namespace detail {
/// Backends report delivered frames here (obs transport.frames_received).
void note_frames_received(std::size_t n) noexcept;
}  // namespace detail

}  // namespace mwr::parallel::transport
