#include "parallel/transport/shm_ring.hpp"

#include <cstring>
#include <string>

#include <sys/mman.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <ctime>
#else
#include <thread>
#endif

namespace mwr::parallel::transport {

namespace {

// Every blocking wait re-checks the abort flag at least this often, so a
// SIGKILLed sibling (which leaves no EOF in shared memory) stalls the
// world for at most one slice before the launcher-set flag is seen.
constexpr int kWaitSliceMs = 100;

#if defined(__linux__)
void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected) {
  timespec ts{};
  ts.tv_sec = kWaitSliceMs / 1000;
  ts.tv_nsec = static_cast<long>(kWaitSliceMs % 1000) * 1'000'000L;
  // Spurious/expired/EAGAIN returns are all fine: callers loop on the
  // ring state and the abort flag.
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT,
          expected, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* word) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
          INT32_MAX, nullptr, nullptr, 0);
}
#else
void futex_wait(std::atomic<std::uint32_t>*, std::uint32_t) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
void futex_wake_all(std::atomic<std::uint32_t>*) {}
#endif

struct alignas(64) WorldHdr {
  std::atomic<std::uint32_t> abort_flag;
  char abort_reason[116];
};

// SPSC byte ring: `tail` counts bytes ever produced, `head` bytes ever
// consumed; both only grow, so fill = tail - head without wrap ambiguity.
// The 32-bit *_seq mirrors exist because futexes wait on 32-bit words.
struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> tail;
  std::atomic<std::uint32_t> tail_seq;
  char pad0[48];
  std::atomic<std::uint64_t> head;
  std::atomic<std::uint32_t> head_seq;
  char pad1[48];
};

struct Ring {
  RingHdr* hdr;
  std::uint8_t* data;
  std::size_t capacity;
};

std::size_t ring_stride(std::size_t ring_bytes) {
  return sizeof(RingHdr) + ring_bytes;
}

Ring ring_at(void* base, std::size_t ring_bytes, std::size_t processes,
             std::size_t src, std::size_t dst) {
  auto* bytes = static_cast<std::uint8_t*>(base);
  bytes += sizeof(WorldHdr);
  bytes += ring_stride(ring_bytes) * (src * processes + dst);
  return Ring{reinterpret_cast<RingHdr*>(bytes), bytes + sizeof(RingHdr),
              ring_bytes};
}

WorldHdr* world_hdr(void* base) { return static_cast<WorldHdr*>(base); }

void copy_into_ring(const Ring& ring, std::uint64_t tail,
                    const std::uint8_t* data, std::size_t n) {
  const std::size_t at = tail % ring.capacity;
  const std::size_t first = std::min(n, ring.capacity - at);
  std::memcpy(ring.data + at, data, first);
  if (first < n) std::memcpy(ring.data, data + first, n - first);
}

void copy_from_ring(const Ring& ring, std::uint64_t head, std::uint8_t* out,
                    std::size_t n) {
  const std::size_t at = head % ring.capacity;
  const std::size_t first = std::min(n, ring.capacity - at);
  std::memcpy(out, ring.data + at, first);
  if (first < n) std::memcpy(out + first, ring.data, n - first);
}

}  // namespace

std::shared_ptr<ShmFabric> ShmFabric::create(std::size_t processes,
                                             std::size_t global_ranks,
                                             std::size_t ring_bytes) {
  if (processes < 1) throw TransportError("shm fabric needs >= 1 process");
  if (ring_bytes < 4096) ring_bytes = 4096;
  auto fabric = std::shared_ptr<ShmFabric>(new ShmFabric());
  fabric->processes_ = processes;
  fabric->global_ranks_ = global_ranks;
  fabric->ring_bytes_ = ring_bytes;
  fabric->mapped_bytes_ =
      sizeof(WorldHdr) + ring_stride(ring_bytes) * processes * processes;
  void* base = ::mmap(nullptr, fabric->mapped_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED)
    throw TransportError("mmap of " + std::to_string(fabric->mapped_bytes_) +
                         "-byte fabric segment failed");
  fabric->base_ = base;
  // The anonymous mapping is zero-filled; placement-new makes the atomic
  // lifetimes explicit (zero is the correct initial value for all of them).
  new (base) WorldHdr{};
  for (std::size_t s = 0; s < processes; ++s) {
    for (std::size_t d = 0; d < processes; ++d) {
      new (ring_at(base, ring_bytes, processes, s, d).hdr) RingHdr{};
    }
  }
  return fabric;
}

ShmFabric::~ShmFabric() {
  if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
}

void ShmFabric::abort_world(const char* reason) noexcept {
  WorldHdr* hdr = world_hdr(base_);
  std::uint32_t expected = 0;
  if (hdr->abort_flag.compare_exchange_strong(expected, 1,
                                              std::memory_order_acq_rel)) {
    // Best-effort diagnostic: the flag is the synchronization, the text is
    // advisory (readers tolerate a torn partial copy).
    std::strncpy(hdr->abort_reason, reason, sizeof(hdr->abort_reason) - 1);
    hdr->abort_reason[sizeof(hdr->abort_reason) - 1] = '\0';
  }
  for (std::size_t s = 0; s < processes_; ++s) {
    for (std::size_t d = 0; d < processes_; ++d) {
      const Ring ring = ring_at(base_, ring_bytes_, processes_, s, d);
      futex_wake_all(&ring.hdr->tail_seq);
      futex_wake_all(&ring.hdr->head_seq);
    }
  }
}

bool ShmFabric::world_aborted() const noexcept {
  return world_hdr(base_)->abort_flag.load(std::memory_order_acquire) != 0;
}

std::string ShmFabric::world_abort_reason() const {
  const WorldHdr* hdr = world_hdr(base_);
  char buffer[sizeof(hdr->abort_reason)];
  std::memcpy(buffer, hdr->abort_reason, sizeof(buffer));
  buffer[sizeof(buffer) - 1] = '\0';
  return buffer[0] != '\0' ? std::string(buffer)
                           : std::string("peer process died");
}

struct ShmEndpoint::PeerDecode {
  std::vector<std::uint8_t> staged;
  std::size_t consumed = 0;
  bool hello_seen = false;
};

ShmEndpoint::~ShmEndpoint() = default;

ShmEndpoint::ShmEndpoint(std::shared_ptr<ShmFabric> fabric, std::size_t index)
    : BufferedEndpoint(fabric->processes(), index), fabric_(std::move(fabric)) {
  decode_.reserve(process_count());
  for (std::size_t p = 0; p < process_count(); ++p) {
    decode_.push_back(std::make_unique<PeerDecode>());
  }
  for (std::size_t p = 0; p < process_count(); ++p) {
    if (p == index) continue;
    send(p, WireFrame::control(
                FrameKind::kHello,
                geometry_fingerprint(fabric_->global_ranks_, process_count())));
  }
  flush();
}

void ShmEndpoint::write_bytes(std::size_t peer, const std::uint8_t* data,
                              std::size_t size) {
  const Ring ring = ring_at(fabric_->base_, fabric_->ring_bytes_,
                            process_count(), process_index(), peer);
  std::size_t written = 0;
  while (written < size) {
    if (fabric_->world_aborted() || abort_requested())
      throw TransportError(fabric_->world_aborted()
                               ? fabric_->world_abort_reason()
                               : abort_reason());
    const std::uint64_t tail = ring.hdr->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ring.hdr->head.load(std::memory_order_acquire);
    const std::size_t space = ring.capacity - static_cast<std::size_t>(
                                                  tail - head);
    if (space == 0) {
      futex_wait(&ring.hdr->head_seq,
                 ring.hdr->head_seq.load(std::memory_order_acquire));
      continue;
    }
    const std::size_t n = std::min(space, size - written);
    copy_into_ring(ring, tail, data + written, n);
    ring.hdr->tail.store(tail + n, std::memory_order_release);
    ring.hdr->tail_seq.store(static_cast<std::uint32_t>(tail + n),
                             std::memory_order_release);
    futex_wake_all(&ring.hdr->tail_seq);
    written += n;
  }
}

bool ShmEndpoint::recv(std::size_t peer, WireFrame& out) {
  const Ring ring = ring_at(fabric_->base_, fabric_->ring_bytes_,
                            process_count(), peer, process_index());
  PeerDecode& dec = *decode_[peer];
  for (;;) {
    // Try to decode a complete frame from the staged bytes first.
    const std::size_t used = decode_frame(dec.staged.data() + dec.consumed,
                                          dec.staged.size() - dec.consumed,
                                          out);
    if (used != 0) {
      dec.consumed += used;
      if (dec.consumed == dec.staged.size()) {
        dec.staged.clear();
        dec.consumed = 0;
      }
      if (!dec.hello_seen) {
        if (out.kind != FrameKind::kHello ||
            out.value != geometry_fingerprint(fabric_->global_ranks_,
                                              process_count()))
          throw TransportError("shm handshake mismatch with peer " +
                               std::to_string(peer));
        dec.hello_seen = true;
        continue;  // handshake consumed; fetch the first real frame
      }
      if (out.kind == FrameKind::kShutdown) return false;
      detail::note_frames_received(1);
      return true;
    }
    // Need more bytes from the ring.
    const std::uint64_t head = ring.hdr->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ring.hdr->tail.load(std::memory_order_acquire);
    const auto avail = static_cast<std::size_t>(tail - head);
    if (avail == 0) {
      if (fabric_->world_aborted())
        throw TransportError(fabric_->world_abort_reason());
      if (abort_requested()) throw TransportError(abort_reason());
      futex_wait(&ring.hdr->tail_seq,
                 ring.hdr->tail_seq.load(std::memory_order_acquire));
      continue;
    }
    const std::size_t old = dec.staged.size();
    dec.staged.resize(old + avail);
    copy_from_ring(ring, head, dec.staged.data() + old, avail);
    ring.hdr->head.store(head + avail, std::memory_order_release);
    ring.hdr->head_seq.store(static_cast<std::uint32_t>(head + avail),
                             std::memory_order_release);
    futex_wake_all(&ring.hdr->head_seq);
  }
}

void ShmEndpoint::abort_fabric(const std::string& reason) {
  fabric_->abort_world(reason.c_str());
}

}  // namespace mwr::parallel::transport
