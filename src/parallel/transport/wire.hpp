// Versioned wire format for the multi-process transport fabric.
//
// Every byte that crosses a process boundary — substrate Messages, barrier
// markers, congestion-cycle maxima, shutdown notices — is one WireFrame,
// encoded as a little-endian, length-prefixed record:
//
//   u32 length      bytes that follow (header + payload)
//   u32 magic       'MWRW'
//   u16 version     kWireVersion; receivers reject mismatches
//   u8  kind        FrameKind
//   u8  flags       bit 0: congestion-tracked delivery (kMessage only)
//   i32 source      global source rank (kMessage; else 0)
//   i32 dest        global destination rank (kMessage; else 0)
//   i32 tag         message tag (kMessage; else 0)
//   u64 value       phase (markers), local cycle max (kCycleMax),
//                   world geometry check (kHello)
//   u32 count       payload doubles that follow
//   f64 * count     payload
//
// Encoding is a pure function of the frame — no clocks, no addresses, no
// ambient state — so two processes that serialize the same Message produce
// identical byte streams (pinned by the round-trip property tests).  The
// format is same-host by design (shm ring / UDS): both ends share
// endianness and IEEE-754 layout, which the HELLO handshake re-checks via
// kWireMagic.  core/serialization re-exports the Message codec as the
// checkpoint-facing seam.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mwr::parallel::transport {

inline constexpr std::uint32_t kWireMagic = 0x4d575257u;  // "MWRW"
inline constexpr std::uint16_t kWireVersion = 1;

/// Fixed bytes per frame before the payload, excluding the length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 2 + 1 + 1 + 12 + 8 + 4;

/// Thrown on corrupt, truncated-beyond-repair, or version-mismatched bytes.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what)
      : std::runtime_error("wire format: " + what) {}
};

enum class FrameKind : std::uint8_t {
  kHello = 0,          ///< channel handshake: value = geometry fingerprint.
  kMessage = 1,        ///< a substrate Message for a remote rank's mailbox.
  kBarrierMarker = 2,  ///< "my ranks reached global phase `value`".
  kCycleMax = 3,       ///< my local per-cycle congestion max for `value`.
  kShutdown = 4,       ///< orderly end of this sender's stream.
  // Campaign-server control plane (src/serve): additive kinds under the
  // same version — old receivers never see them (the daemon speaks them
  // only on its control socket), new receivers accept both generations.
  kSubmit = 5,         ///< submit a campaign; payload = encoded request.
  kStatus = 6,         ///< status query/report; value = campaign id.
  kCheckpoint = 7,     ///< checkpoint section; value = section tag.
  kResult = 8,         ///< campaign result; value = campaign id.
};

/// The highest FrameKind a decoder accepts (bump when adding kinds).
inline constexpr std::uint8_t kMaxFrameKind =
    static_cast<std::uint8_t>(FrameKind::kResult);

struct WireFrame {
  FrameKind kind = FrameKind::kMessage;
  bool tracked = false;
  std::int32_t source = 0;
  std::int32_t dest = 0;
  std::int32_t tag = 0;
  std::uint64_t value = 0;
  std::vector<double> payload;

  bool operator==(const WireFrame&) const = default;

  [[nodiscard]] static WireFrame message(std::int32_t source,
                                         std::int32_t dest, std::int32_t tag,
                                         std::vector<double> payload,
                                         bool tracked) {
    WireFrame f;
    f.kind = FrameKind::kMessage;
    f.tracked = tracked;
    f.source = source;
    f.dest = dest;
    f.tag = tag;
    f.payload = std::move(payload);
    return f;
  }

  [[nodiscard]] static WireFrame control(FrameKind kind, std::uint64_t value) {
    WireFrame f;
    f.kind = kind;
    f.value = value;
    return f;
  }
};

/// Appends the length-prefixed encoding of `frame` to `out`.
void encode_frame(const WireFrame& frame, std::vector<std::uint8_t>& out);

/// Encoded size of `frame` including the length prefix.
[[nodiscard]] std::size_t encoded_size(const WireFrame& frame) noexcept;

/// Decodes one frame from the front of [data, data+size).  Returns the
/// bytes consumed, or 0 when the buffer does not yet hold a complete frame.
/// Throws WireFormatError on bad magic/version or an absurd length.
std::size_t decode_frame(const std::uint8_t* data, std::size_t size,
                         WireFrame& out);

/// The geometry fingerprint HELLO frames carry: both ends must agree on
/// world size and process count before any payload flows.
[[nodiscard]] std::uint64_t geometry_fingerprint(
    std::size_t global_ranks, std::size_t processes) noexcept;

}  // namespace mwr::parallel::transport
