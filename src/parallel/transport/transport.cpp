#include "parallel/transport/transport.hpp"

#include "obs/registry.hpp"

namespace mwr::parallel::transport {

namespace {
// Fabric telemetry across every endpoint in the process: how many frames
// and bytes crossed the seam, and how many writes the batching collapsed
// them into (frames_sent / flush_writes is the batching factor the CI
// transport artifact reports).
struct TransportMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_sent;
  obs::Counter& flush_writes;

  TransportMetrics()
      : frames_sent(obs::MetricsRegistry::global().counter(
            "transport.frames_sent")),
        frames_received(obs::MetricsRegistry::global().counter(
            "transport.frames_received")),
        bytes_sent(
            obs::MetricsRegistry::global().counter("transport.bytes_sent")),
        flush_writes(obs::MetricsRegistry::global().counter(
            "transport.flush_writes")) {}
};

TransportMetrics& transport_metrics() {
  static TransportMetrics metrics;
  return metrics;
}
}  // namespace

std::string to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "inproc";
    case TransportKind::kShmRing:
      return "shm";
    case TransportKind::kUds:
      return "uds";
  }
  return "?";
}

TransportKind parse_transport_kind(const std::string& name) {
  if (name == "inproc" || name == "in-process") {
    return TransportKind::kInProcess;
  }
  if (name == "shm" || name == "shm-ring") return TransportKind::kShmRing;
  if (name == "uds" || name == "socket") return TransportKind::kUds;
  throw std::invalid_argument("unknown transport kind: " + name +
                              " (expected inproc, shm, or uds)");
}

BufferedEndpoint::BufferedEndpoint(std::size_t processes, std::size_t index)
    : processes_(processes), index_(index) {
  buffers_.reserve(processes_);
  for (std::size_t p = 0; p < processes_; ++p) {
    buffers_.push_back(std::make_unique<PeerBuffer>());
  }
}

void BufferedEndpoint::send(std::size_t peer, const WireFrame& frame) {
  if (peer >= processes_ || peer == index_)
    throw TransportError("send to invalid peer " + std::to_string(peer));
  if (abort_requested()) throw TransportError(abort_reason());
  PeerBuffer& buffer = *buffers_[peer];
  util::MutexLock lock(buffer.mutex);
  encode_frame(frame, buffer.bytes);
  transport_metrics().frames_sent.add(1);
  if (buffer.bytes.size() >= kFlushThresholdBytes) {
    flush_peer(buffer, peer);
  }
}

void BufferedEndpoint::flush() {
  for (std::size_t peer = 0; peer < processes_; ++peer) {
    if (peer == index_) continue;
    PeerBuffer& buffer = *buffers_[peer];
    util::MutexLock lock(buffer.mutex);
    flush_peer(buffer, peer);
  }
}

void BufferedEndpoint::flush_peer(PeerBuffer& buffer, std::size_t peer) {
  if (buffer.bytes.empty()) return;
  // The batch lock stays held across write_bytes: backend writes for one
  // peer are serialized here, never interleaved mid-frame.
  write_bytes(peer, buffer.bytes.data(), buffer.bytes.size());
  transport_metrics().bytes_sent.add(buffer.bytes.size());
  transport_metrics().flush_writes.add(1);
  buffer.bytes.clear();
}

void BufferedEndpoint::abort(const std::string& reason) {
  {
    util::MutexLock lock(abort_mutex_);
    if (abort_requested_.load(std::memory_order_relaxed)) return;
    abort_reason_ = reason;
    abort_requested_.store(true, std::memory_order_release);
  }
  abort_fabric(reason);
}

bool BufferedEndpoint::aborted() const { return abort_requested(); }

std::string BufferedEndpoint::abort_reason() const {
  util::MutexLock lock(abort_mutex_);
  return abort_reason_.empty() ? std::string("world aborted") : abort_reason_;
}

namespace detail {
void note_frames_received(std::size_t n) noexcept {
  transport_metrics().frames_received.add(n);
}
}  // namespace detail

}  // namespace mwr::parallel::transport
