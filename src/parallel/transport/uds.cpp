#include "parallel/transport/uds.hpp"

#include <cerrno>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

namespace mwr::parallel::transport {

namespace {
// Drain reads pull whatever the kernel has buffered, up to this much per
// syscall, into the per-peer decode buffer.
constexpr std::size_t kReadChunkBytes = 64 * 1024;
}  // namespace

std::shared_ptr<UdsFabric> UdsFabric::create(std::size_t processes,
                                             std::size_t global_ranks) {
  if (processes < 1) throw TransportError("uds fabric needs >= 1 process");
  auto fabric = std::shared_ptr<UdsFabric>(new UdsFabric());
  fabric->processes_ = processes;
  fabric->global_ranks_ = global_ranks;
  fabric->fds_.assign(processes * processes, -1);
  for (std::size_t i = 0; i < processes; ++i) {
    for (std::size_t j = i + 1; j < processes; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        throw TransportError(std::string("socketpair: ") +
                             std::strerror(errno));
      fabric->fds_[i * processes + j] = sv[0];
      fabric->fds_[j * processes + i] = sv[1];
    }
  }
  return fabric;
}

UdsFabric::~UdsFabric() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void UdsFabric::close_all() noexcept {
  for (int& fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void UdsFabric::claim(std::size_t index) noexcept {
  for (std::size_t self = 0; self < processes_; ++self) {
    if (self == index) continue;
    for (std::size_t peer = 0; peer < processes_; ++peer) {
      int& fd = fds_[self * processes_ + peer];
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
}

struct UdsEndpoint::PeerDecode {
  std::vector<std::uint8_t> staged;
  std::size_t consumed = 0;
  bool hello_seen = false;
};

UdsEndpoint::~UdsEndpoint() = default;

UdsEndpoint::UdsEndpoint(std::shared_ptr<UdsFabric> fabric, std::size_t index)
    : BufferedEndpoint(fabric->processes(), index), fabric_(std::move(fabric)) {
  fabric_->claim(index);
  decode_.reserve(process_count());
  for (std::size_t p = 0; p < process_count(); ++p) {
    decode_.push_back(std::make_unique<PeerDecode>());
  }
  for (std::size_t p = 0; p < process_count(); ++p) {
    if (p == index) continue;
    send(p, WireFrame::control(
                FrameKind::kHello,
                geometry_fingerprint(fabric_->global_ranks_, process_count())));
  }
  flush();
}

void UdsEndpoint::write_bytes(std::size_t peer, const std::uint8_t* data,
                              std::size_t size) {
  const int fd = fabric_->fd(process_index(), peer);
  if (fd < 0) throw TransportError("peer " + std::to_string(peer) + " closed");
  std::size_t written = 0;
  while (written < size) {
    if (abort_requested()) throw TransportError(abort_reason());
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the
    // process with SIGPIPE.
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError("send to peer " + std::to_string(peer) + ": " +
                           std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

bool UdsEndpoint::recv(std::size_t peer, WireFrame& out) {
  const int fd = fabric_->fd(process_index(), peer);
  PeerDecode& dec = *decode_[peer];
  for (;;) {
    const std::size_t used = decode_frame(dec.staged.data() + dec.consumed,
                                          dec.staged.size() - dec.consumed,
                                          out);
    if (used != 0) {
      dec.consumed += used;
      if (dec.consumed == dec.staged.size()) {
        dec.staged.clear();
        dec.consumed = 0;
      }
      if (!dec.hello_seen) {
        if (out.kind != FrameKind::kHello ||
            out.value != geometry_fingerprint(fabric_->global_ranks_,
                                              process_count()))
          throw TransportError("uds handshake mismatch with peer " +
                               std::to_string(peer));
        dec.hello_seen = true;
        continue;  // handshake consumed; fetch the first real frame
      }
      if (out.kind == FrameKind::kShutdown) return false;
      detail::note_frames_received(1);
      return true;
    }
    if (abort_requested()) throw TransportError(abort_reason());
    if (fd < 0)
      throw TransportError("peer " + std::to_string(peer) + " closed");
    const std::size_t old = dec.staged.size();
    dec.staged.resize(old + kReadChunkBytes);
    const ssize_t n = ::recv(fd, dec.staged.data() + old, kReadChunkBytes, 0);
    if (n <= 0) {
      dec.staged.resize(old);
      if (n < 0 && errno == EINTR) continue;
      // 0 = EOF without a kShutdown frame: the peer died (or a local
      // abort shut the pair down) — either way, the abort path.
      if (abort_requested()) throw TransportError(abort_reason());
      throw TransportError("peer " + std::to_string(peer) +
                           " died mid-stream (EOF before shutdown)");
    }
    dec.staged.resize(old + static_cast<std::size_t>(n));
  }
}

void UdsEndpoint::abort_fabric(const std::string& /*reason*/) {
  // SHUT_RDWR both wakes this process's blocked reads (they see EOF) and
  // shows every peer the same EOF, which their drain threads turn into a
  // world abort.  The reason string cannot cross a closed socket; peers
  // report the generic dead-peer message.
  for (std::size_t peer = 0; peer < process_count(); ++peer) {
    if (peer == process_index()) continue;
    const int fd = fabric_->fd(process_index(), peer);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

}  // namespace mwr::parallel::transport
