#include "parallel/transport/process_world.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include <csignal>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "parallel/transport/uds.hpp"

namespace mwr::parallel::transport {

namespace {

// One per worker process in the MAP_SHARED result arena.  `status` is the
// publication point: the child stores it (release) last, the parent loads
// it (acquire) before trusting the rest of the slot.
struct ResultSlot {
  std::atomic<std::uint32_t> status;  // 0 pending, 1 ok, 2 failed
  std::uint32_t value_count;
  char error[240];
  double values[kMaxResultDoubles];
};

constexpr std::uint32_t kPending = 0;
constexpr std::uint32_t kOk = 1;
constexpr std::uint32_t kFailed = 2;

struct Arena {
  void* base = nullptr;
  std::size_t bytes = 0;
  ResultSlot* slots = nullptr;
  std::uint32_t* rank_state = nullptr;

  ~Arena() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

void map_arena(Arena& arena, std::size_t processes, std::size_t ranks) {
  arena.bytes = sizeof(ResultSlot) * processes + sizeof(std::uint32_t) * ranks;
  arena.base = ::mmap(nullptr, arena.bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (arena.base == MAP_FAILED) {
    arena.base = nullptr;
    throw TransportError("mmap of result arena failed");
  }
  arena.slots = static_cast<ResultSlot*>(arena.base);
  for (std::size_t p = 0; p < processes; ++p) new (&arena.slots[p]) ResultSlot{};
  arena.rank_state = reinterpret_cast<std::uint32_t*>(
      static_cast<std::uint8_t*>(arena.base) + sizeof(ResultSlot) * processes);
}

void write_slot_failed(ResultSlot& slot, const char* what) noexcept {
  std::strncpy(slot.error, what, sizeof(slot.error) - 1);
  slot.error[sizeof(slot.error) - 1] = '\0';
  slot.status.store(kFailed, std::memory_order_release);
}

/// Runs in the forked worker; must not return into the caller's stack
/// frames beyond this function (the caller _exits with the result).
int child_main(const ProcessWorldConfig& config, std::size_t index,
               const std::shared_ptr<ShmFabric>& shm,
               const std::shared_ptr<UdsFabric>& uds, Arena& arena,
               const ProcessBody& body) noexcept {
  ResultSlot& slot = arena.slots[index];
  try {
    std::unique_ptr<Endpoint> endpoint;
    if (config.kind == TransportKind::kShmRing) {
      endpoint = std::make_unique<ShmEndpoint>(shm, index);
    } else {
      endpoint = std::make_unique<UdsEndpoint>(uds, index);
    }
    const WorldLayout layout{config.global_ranks, config.processes, index};
    CommWorld world(layout, endpoint.get(), config.policy);
    std::vector<double> values = body(world, layout, arena.rank_state);
    if (values.size() > kMaxResultDoubles)
      throw TransportError("process body returned more than " +
                           std::to_string(kMaxResultDoubles) + " values");
    slot.value_count = static_cast<std::uint32_t>(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) slot.values[i] = values[i];
    slot.status.store(kOk, std::memory_order_release);
    return 0;
  } catch (const std::exception& e) {
    write_slot_failed(slot, e.what());
    return 1;
  } catch (...) {
    write_slot_failed(slot, "unknown error in worker");
    return 1;
  }
}

}  // namespace

ProcessWorldOutcome run_process_world(const ProcessWorldConfig& config,
                                      const ProcessBody& body) {
  if (config.kind == TransportKind::kInProcess)
    throw TransportError(
        "run_process_world: in-process worlds need no launcher (construct "
        "CommWorld directly)");
  if (config.processes < 2)
    throw TransportError("run_process_world needs >= 2 processes");
  if (config.global_ranks < config.processes)
    throw TransportError("run_process_world: fewer ranks than processes");

  // Everything shared is created before the first fork so children inherit
  // it: the fabric, the result slots, and the per-rank state array.
  std::shared_ptr<ShmFabric> shm;
  std::shared_ptr<UdsFabric> uds;
  if (config.kind == TransportKind::kShmRing) {
    shm = ShmFabric::create(config.processes, config.global_ranks,
                            config.ring_bytes);
  } else {
    uds = UdsFabric::create(config.processes, config.global_ranks);
  }
  Arena arena;
  map_arena(arena, config.processes, config.global_ranks);

  ProcessWorldOutcome outcome;
  const auto fail = [&outcome](const std::string& why) {
    if (outcome.error.empty()) outcome.error = why;
  };

  std::vector<pid_t> pids(config.processes, -1);
  for (std::size_t p = 0; p < config.processes; ++p) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      fail(std::string("fork: ") + std::strerror(errno));
      break;
    }
    if (pid == 0) {
      // Worker process.  _exit (not exit): do not run the parent's atexit
      // chain or flush its stdio buffers twice.
      ::_exit(child_main(config, p, shm, uds, arena, body));
    }
    pids[p] = pid;
  }

  // The launcher must not keep socket ends open: a dead worker's peers
  // learn of its death through EOF, which the parent's copies would mask.
  if (uds) uds->close_all();

  const auto abort_world = [&](const std::string& why) {
    if (shm) shm->abort_world(why.c_str());
    // UDS needs nothing: a failed worker's sockets are already closed.
  };
  if (!outcome.error.empty()) abort_world(outcome.error);

  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config.timeout_seconds));
  // After the deadline the world gets a short grace window to unwind off
  // the abort flag before the launcher resorts to SIGKILL.
  const auto kill_deadline = deadline + std::chrono::seconds(5);
  bool abort_sent = !outcome.error.empty();
  bool killed = false;

  std::size_t live = 0;
  for (const pid_t pid : pids) {
    if (pid > 0) ++live;
  }
  while (live > 0) {
    for (std::size_t p = 0; p < config.processes; ++p) {
      if (pids[p] <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(pids[p], &status, WNOHANG);
      if (r == 0) continue;
      pids[p] = -1;
      --live;
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
      if (WIFSIGNALED(status)) {
        fail("worker " + std::to_string(p) + " killed by signal " +
             std::to_string(WTERMSIG(status)));
      } else if (arena.slots[p].status.load(std::memory_order_acquire) ==
                 kFailed) {
        char buffer[sizeof(ResultSlot::error)];
        std::memcpy(buffer, arena.slots[p].error, sizeof(buffer));
        buffer[sizeof(buffer) - 1] = '\0';
        fail("worker " + std::to_string(p) + ": " + buffer);
      } else {
        fail("worker " + std::to_string(p) + " failed");
      }
      if (!abort_sent) {
        abort_world(outcome.error);
        abort_sent = true;
      }
    }
    if (live == 0) break;
    const auto now = Clock::now();
    if (now > deadline && !abort_sent) {
      fail("process world timed out after " +
           std::to_string(config.timeout_seconds) + "s");
      abort_world(outcome.error);
      abort_sent = true;
    }
    if (now > kill_deadline && !killed) {
      fail("process world timed out; killing stragglers");
      for (const pid_t pid : pids) {
        if (pid > 0) ::kill(pid, SIGKILL);
      }
      killed = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  outcome.values.resize(config.processes);
  for (std::size_t p = 0; p < config.processes; ++p) {
    ResultSlot& slot = arena.slots[p];
    const std::uint32_t status = slot.status.load(std::memory_order_acquire);
    if (status == kOk) {
      outcome.values[p].assign(slot.values, slot.values + slot.value_count);
    } else if (status == kFailed) {
      char buffer[sizeof(slot.error)];
      std::memcpy(buffer, slot.error, sizeof(buffer));
      buffer[sizeof(buffer) - 1] = '\0';
      fail("worker " + std::to_string(p) + ": " + buffer);
    } else if (status == kPending) {
      fail("worker " + std::to_string(p) + " never reported");
    }
  }
  outcome.rank_state.assign(arena.rank_state,
                            arena.rank_state + config.global_ranks);
  outcome.ok = outcome.error.empty();
  return outcome;
}

}  // namespace mwr::parallel::transport
